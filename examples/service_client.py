#!/usr/bin/env python3
"""Drive a running ``repro serve`` instance through a mixed batch.

The reference client for the fill service (and the script CI's
service-smoke job runs): connects to the serve socket, opens a session,
submits one batch of eight mixed requests — full fill, scores, DRC
audits, and two incremental ECO patches — and writes every GDSII the
service returns, so the results can be byte-compared against serial
``repro fill`` / ``repro eco`` invocations of the same inputs.

Run:  python -m repro serve --socket repro.sock &
      python examples/service_client.py repro.sock demo.gds out/
      python examples/service_client.py repro.sock demo.gds out/ --shutdown
"""

import argparse
import json
import sys
from pathlib import Path

from repro.service import SocketClient

#: the two ECO patches, also written as JSON specs for `repro eco`
ECO_1 = {"1": [[100, 100, 400, 140]]}
ECO_2 = {"1": [[700, 700, 800, 760]], "2": [[100, 700, 200, 760]]}

#: engine knobs matching the CLI defaults (`repro fill` uses eta 0.2)
CONFIG = {"eta": 0.2}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("socket", help="path of the repro serve socket")
    parser.add_argument("input", type=Path, help="unfilled GDSII")
    parser.add_argument("outdir", type=Path, help="directory for result GDSII")
    parser.add_argument("--windows", type=int, default=4)
    parser.add_argument(
        "--shutdown", action="store_true", help="stop the server afterwards"
    )
    args = parser.parse_args(argv)
    args.outdir.mkdir(parents=True, exist_ok=True)

    with SocketClient(socket_path=args.socket) as client:
        pong = client.request("ping")
        print(f"connected: {pong['workers']} workers, {pong['sessions']} sessions")

        session = client.request(
            "open_session",
            gds=args.input.read_bytes(),
            windows=args.windows,
            config=CONFIG,
        )
        sid = session["session"]
        print(f"opened {sid}: {session['wires']} wires on {session['layers']} layers")

        responses = client.batch(
            [
                {"op": "fill", "session": sid},
                {"op": "score", "session": sid},
                {"op": "drc_audit", "session": sid},
                {"op": "eco_delta", "session": sid, "wires": ECO_1},
                {"op": "score", "session": sid},
                {"op": "drc_audit", "session": sid},
                {"op": "eco_delta", "session": sid, "wires": ECO_2},
                {"op": "drc_audit", "session": sid},
            ]
        )
        failures = [r for r in responses if not r.get("ok")]
        if failures:
            for failure in failures:
                print(f"request failed: {failure['error']}", file=sys.stderr)
            return 1

        results = [r["result"] for r in responses]
        (args.outdir / "fill.gds").write_bytes(results[0]["gds"])
        (args.outdir / "eco1.gds").write_bytes(results[3]["gds"])
        (args.outdir / "eco2.gds").write_bytes(results[6]["gds"])
        (args.outdir / "eco1.json").write_text(json.dumps(ECO_1))
        (args.outdir / "eco2.json").write_text(json.dumps(ECO_2))

        print(results[0]["summary"])
        print(results[3]["summary"])
        print(results[6]["summary"])
        print(f"score after fill: {results[1]['scores']['score']:.3f}")
        print(f"score after eco:  {results[4]['scores']['score']:.3f}")
        audits = [results[2]["count"], results[5]["count"], results[7]["count"]]
        print(f"drc audits: {audits}")
        if any(audits):
            print("DRC violations in service output", file=sys.stderr)
            return 2

        if args.shutdown:
            client.shutdown()
            print("server shutdown requested")
    return 0


if __name__ == "__main__":
    sys.exit(main())
