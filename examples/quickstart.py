#!/usr/bin/env python3
"""Quickstart: fill a small layout and inspect every pipeline product.

Builds a 3-layer layout with a density gradient, dissects it into 4x4
windows (Fig. 2(b)), runs the full dummy-fill engine (Fig. 3 flow), and
prints the density maps before and after, the DRC status, and the
GDSII size of the solution.

Run:  python examples/quickstart.py
"""

import io
import random

from repro import (
    DrcRules,
    FillConfig,
    Layout,
    Rect,
    WindowGrid,
    insert_fills,
)
from repro.density import (
    compute_metrics,
    metal_density_map,
    wire_density_map,
)
from repro.gdsii import write_gdsii


def ascii_density(density, title):
    """Render a window density map as a terminal heat map."""
    shades = " .:-=+*#%@"
    print(f"  {title}")
    cols, rows = density.shape
    for j in reversed(range(rows)):  # row 0 at the bottom
        cells = []
        for i in range(cols):
            level = min(len(shades) - 1, int(density[i, j] * len(shades)))
            cells.append(shades[level] * 2)
        print("    |" + "".join(cells) + "|")


def build_layout():
    """A toy design: dense standard-cell rows on the left, sparse right."""
    rules = DrcRules(
        min_spacing=10,
        min_width=10,
        min_area=400,
        max_fill_width=150,
        max_fill_height=150,
    )
    layout = Layout(Rect(0, 0, 2000, 2000), num_layers=3, rules=rules, name="demo")
    rng = random.Random(42)
    for number in layout.layer_numbers:
        for _ in range(160):
            x = rng.randrange(0, 1900)
            if x > 1000 and rng.random() < 0.65:
                continue  # sparse right half
            y = rng.randrange(0, 1950)
            w, h = rng.randrange(40, 200), rng.randrange(16, 50)
            layout.layer(number).add_wire(
                Rect(x, y, min(2000, x + w), min(2000, y + h))
            )
    return layout


def main():
    layout = build_layout()
    grid = WindowGrid(layout.die, 4, 4)

    print("== before fill ==")
    for layer in layout.layers:
        d = wire_density_map(layer, grid)
        print(f"layer {layer.number}: {compute_metrics(d)}")
        if layer.number == 1:
            ascii_density(d, "layer 1 wire density")

    report = insert_fills(layout, grid, FillConfig(eta=0.2))
    print(f"\n== engine report ==\n{report.summary()}")
    print(
        "target densities:",
        {n: round(p.td, 3) for n, p in report.final_plan.layers.items()},
    )

    print("\n== after fill ==")
    for layer in layout.layers:
        d = metal_density_map(layer, grid)
        print(f"layer {layer.number}: {compute_metrics(d)}")
        if layer.number == 1:
            ascii_density(d, "layer 1 metal density")

    violations = layout.check_drc()
    print(f"\nDRC violations: {len(violations)}")

    buf = io.BytesIO()
    size = write_gdsii(layout, buf)
    print(f"solution GDSII: {size} bytes ({layout.num_fills} fills)")


if __name__ == "__main__":
    main()
