#!/usr/bin/env python3
"""Coupling-aware fill around a timing-critical bus (paper §2.1, Figs. 4/5).

The scenario the paper's overlay objective protects: a bus of long
parallel wires on metal-2 whose delay is sensitive to fill-induced
coupling capacitance.  Dummy fill inserted directly above/below the bus
couples to it; an overlay-aware engine steers fill into the region free
on both layers instead.

The script fills the same layout twice — overlay-blind (η = 0, no
staggering) and overlay-aware (paper settings) — and reports the
overlay area touching the bus and the resulting density uniformity.

Run:  python examples/coupling_aware_fill.py
"""

from repro import DrcRules, FillConfig, Layout, Rect, WindowGrid, insert_fills
from repro.density import compute_metrics, metal_density_map
from repro.geometry import intersection_area


def build_bus_layout():
    """Metal-1/2/3 with a 16-bit horizontal bus crossing metal 2."""
    rules = DrcRules(
        min_spacing=10,
        min_width=10,
        min_area=400,
        max_fill_width=120,
        max_fill_height=120,
    )
    layout = Layout(Rect(0, 0, 2400, 2400), num_layers=3, rules=rules, name="bus")
    # The critical bus: 16 wires, width 20, pitch 60, spanning the die.
    bus = []
    for k in range(16):
        y = 1000 + k * 60
        wire = Rect(100, y, 2300, y + 20)
        layout.layer(2).add_wire(wire)
        bus.append(wire)
    # Background logic on metals 1 and 3 away from the bus shadow.
    import random

    rng = random.Random(7)
    for number in (1, 3):
        for _ in range(140):
            x, y = rng.randrange(0, 2300), rng.randrange(0, 2350)
            layout.layer(number).add_wire(
                Rect(x, y, min(2400, x + rng.randrange(40, 160)), min(2400, y + 40))
            )
    return layout, bus


def bus_coupling(layout, bus):
    """Fill overlay over the bus wires from the layers above and below."""
    fills = layout.layer(1).fills + layout.layer(3).fills
    return intersection_area(fills, bus)


def run(config, label):
    layout, bus = build_bus_layout()
    grid = WindowGrid(layout.die, 6, 6)
    report = insert_fills(layout, grid, config)
    coupling = bus_coupling(layout, bus)
    sigma = sum(
        compute_metrics(metal_density_map(layer, grid)).sigma
        for layer in layout.layers
    )
    bus_area = sum(w.area for w in bus)
    print(
        f"{label:<18} fills={report.num_fills:<6} "
        f"bus overlay={coupling:>8} dbu^2 ({100 * coupling / bus_area:5.1f}% "
        f"of bus area)  sigma_sum={sigma:.4f}"
    )
    return coupling


def main():
    print("fill strategies around a 16-bit metal-2 bus:\n")
    blind = run(
        FillConfig(eta=0.0, gamma=0.0, stagger_even_layers=False,
                   case1_steering=False),
        "overlay-blind",
    )
    aware = run(FillConfig(eta=1.0), "overlay-aware")
    if aware < blind:
        saved = 100 * (1 - aware / max(blind, 1))
        print(
            f"\noverlay-aware fill couples {saved:.0f}% less metal to the "
            "bus (quality score Eqn. (8) + sizing objective Eqn. (9))"
        )


if __name__ == "__main__":
    main()
