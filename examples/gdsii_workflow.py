#!/usr/bin/env python3
"""File-based fill workflow: GDSII in, filled GDSII out.

Mirrors how the contest tools were actually invoked: read a design from
GDSII, insert fill, write the solution back as GDSII (fills carry
datatype 1 so downstream tools can separate them), and verify the
round-trip.

Run:  python examples/gdsii_workflow.py [input.gds [output.gds]]

Without arguments a demonstration input is generated first.
"""

import sys
from pathlib import Path

from repro import FillConfig, WindowGrid
from repro.bench import LayoutSpec, generate_layout
from repro.core import DummyFillEngine
from repro.gdsii import gdsii_bytes, layout_from_gdsii
from repro.layout import DrcRules


def make_demo_input(path: Path) -> None:
    """Generate a small synthetic design and store it as GDSII."""
    spec = LayoutSpec(
        name="demo",
        die_size=2000,
        seed=123,
        num_cell_rects=200,
        num_bus_bundles=2,
        num_macros=1,
        rules=DrcRules(
            min_spacing=10,
            min_width=10,
            min_area=400,
            max_fill_width=120,
            max_fill_height=120,
        ),
    )
    layout = generate_layout(spec)
    path.write_bytes(gdsii_bytes(layout))
    print(f"generated demo input: {path} ({path.stat().st_size} bytes)")


def main():
    in_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("demo_in.gds")
    out_path = Path(sys.argv[2]) if len(sys.argv) > 2 else Path("demo_out.gds")
    if not in_path.exists():
        make_demo_input(in_path)

    layout = layout_from_gdsii(in_path.read_bytes())
    print(
        f"read {in_path}: die {layout.die}, {layout.num_layers} layers, "
        f"{layout.num_wires} wires"
    )

    grid = WindowGrid(layout.die, 5, 5)
    report = DummyFillEngine(FillConfig(eta=0.2)).run(layout, grid)
    print(f"fill: {report.summary()}")

    violations = layout.check_drc()
    print(f"DRC: {len(violations)} violations")

    out_path.write_bytes(gdsii_bytes(layout))
    growth = out_path.stat().st_size - in_path.stat().st_size
    print(
        f"wrote {out_path}: {out_path.stat().st_size} bytes "
        f"(+{growth} for {report.num_fills} fills)"
    )

    # Round-trip sanity: the solution file reloads identically.
    back = layout_from_gdsii(out_path.read_bytes())
    assert back.num_fills == layout.num_fills
    print("round-trip verified: fill counts match")


if __name__ == "__main__":
    main()
