#!/usr/bin/env python3
"""ECO workflow: patch a routed change without re-filling the die.

A net is re-routed after fill signoff.  Instead of rerunning the whole
fill (churning every window's GDSII), the ECO flow rips up only the
fills the change invalidated and re-fills the touched windows to the
same density discipline.

Run:  python examples/eco_refill.py
"""

from repro import DrcRules, FillConfig, Rect, WindowGrid
from repro.bench import LayoutSpec, generate_layout
from repro.core import DummyFillEngine
from repro.density import metal_density_map, compute_metrics
from repro.eco import apply_eco
from repro.gdsii import measure_file_size


def main():
    rules = DrcRules(
        min_spacing=10,
        min_width=10,
        min_area=400,
        max_fill_width=120,
        max_fill_height=120,
    )
    layout = generate_layout(
        LayoutSpec(
            name="eco-demo",
            die_size=3000,
            seed=44,
            num_cell_rects=300,
            num_bus_bundles=2,
            num_macros=1,
            rules=rules,
        )
    )
    grid = WindowGrid(layout.die, 6, 6)

    report = DummyFillEngine(FillConfig(eta=0.2)).run(layout, grid)
    print(f"initial fill: {report.summary()}")
    sigma_before = sum(
        compute_metrics(metal_density_map(layer, grid)).sigma
        for layer in layout.layers
    )
    print(f"sigma_sum after initial fill: {sigma_before:.4f}")
    print(f"solution size: {measure_file_size(layout)} bytes\n")

    # The change: a repair net routed across two windows on metal 2.
    change = {2: [Rect(400, 1480, 1600, 1520)]}
    eco = apply_eco(layout, grid, change, FillConfig(eta=0.2))
    print(eco.summary())
    print(f"affected windows: {eco.affected_windows}")

    sigma_after = sum(
        compute_metrics(metal_density_map(layer, grid)).sigma
        for layer in layout.layers
    )
    violations = layout.check_drc()
    print(
        f"\nafter ECO: sigma_sum {sigma_after:.4f} "
        f"(was {sigma_before:.4f}), DRC violations: {len(violations)}"
    )
    total_windows = grid.num_windows
    print(
        f"churn: {len(eco.affected_windows)}/{total_windows} windows "
        f"touched — the rest of the GDSII is byte-stable"
    )


if __name__ == "__main__":
    main()
