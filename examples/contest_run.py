#!/usr/bin/env python3
"""Run the ICCAD-2014-style contest on a scaled benchmark (Table 3).

Loads a suite benchmark, runs our engine and all three baseline
stand-ins under wall-clock and peak-memory measurement, and prints the
paper's Table 3 for it — including the headline quality/score margin.

Run:  python examples/contest_run.py [s|b|m]   (default: s)
"""

import sys

from repro.bench import format_table, headline, load_benchmark, run_contest


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "s"
    print(f"loading benchmark {name!r} (deterministic synthetic suite)...")
    bench = load_benchmark(name)
    print(
        f"  {bench.num_wires} wires on {bench.layout.num_layers} layers, "
        f"{bench.grid.cols}x{bench.grid.rows} windows, "
        f"input {bench.input_size_mb:.2f} MB\n"
    )
    results = {name: run_contest(bench)}
    print(format_table(results))
    q_gain, s_gain = headline(results)
    print(
        f"\nours vs best baseline: quality {q_gain * 100:+.1f}%, "
        f"score {s_gain * 100:+.1f}% (paper: +13%, +10% across the suite)"
    )


if __name__ == "__main__":
    main()
