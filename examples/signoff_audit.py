#!/usr/bin/env python3
"""Post-fill signoff audit: sliding-window density + litho checks.

After fill insertion, production flows audit the solution with checks
stricter than the optimizer's own objective:

* **multi-window analysis** (Kahng et al. [3], cited in the paper §1) —
  density evaluated on phase-shifted window grids, catching hotspots
  that straddle the fixed dissection's boundaries,
* **lithography friendliness** (the paper's stated future work §5) —
  forbidden-pitch and minimum-edge checks on the fill pattern, with
  automatic shrink-based repair.

Run:  python examples/signoff_audit.py
"""

from repro import DrcRules, FillConfig, WindowGrid, insert_fills
from repro.bench import LayoutSpec, generate_layout
from repro.density import MultiWindowGrid, multiwindow_metrics
from repro.litho import LithoRules, check_litho, repair_litho


def main():
    rules = DrcRules(
        min_spacing=10,
        min_width=10,
        min_area=400,
        max_fill_width=120,
        max_fill_height=120,
    )
    layout = generate_layout(
        LayoutSpec(
            name="signoff",
            die_size=3200,
            seed=31,
            num_cell_rects=360,
            num_bus_bundles=2,
            num_macros=1,
            rules=rules,
        )
    )
    grid = WindowGrid(layout.die, 8, 8)

    report = insert_fills(layout, grid, FillConfig(eta=0.2))
    print(f"fill: {report.summary()}\n")

    print("== multi-window density audit (r = 2 phases per axis) ==")
    mw = MultiWindowGrid(grid, r=2)
    for layer in layout.layers:
        m = multiwindow_metrics(layer, mw)
        print(
            f"  layer {layer.number}: base sigma {m.base.sigma:.4f}, "
            f"worst-phase sigma {m.worst_sigma:.4f} "
            f"(single-phase underestimates by {m.sigma_underestimate * 100:.0f}%), "
            f"density range [{m.min_density:.3f}, {m.max_density:.3f}]"
        )

    print("\n== lithography audit ==")
    litho = LithoRules(forbidden_pitches=((10, 14),), min_edge=12)
    violations = check_litho(layout, litho)
    print(f"  {len(violations)} litho violations before repair")
    for v in violations[:5]:
        print(f"    {v}")
    touched = repair_litho(layout, litho)
    remaining = check_litho(layout, litho)
    drc = layout.check_drc()
    print(
        f"  repair touched {touched} fills -> {len(remaining)} litho "
        f"violations, {len(drc)} DRC violations remain"
    )


if __name__ == "__main__":
    main()
