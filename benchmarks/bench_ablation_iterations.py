"""Ablation A10: alternating-pass count (§3.3.2 "ILP will be run
iteratively").

The paper alternates horizontal and vertical LP passes but never says
how many rounds are enough.  This sweep measures density and overlay
against the iteration count on benchmark ``s``: round 1 does almost all
the work (the shrink budget lands each window near its target), round
2-3 mop up the orthogonal direction, and further rounds are a pure
runtime tax — which is why the engine defaults to 3.
"""

import pytest
from conftest import emit

from repro.bench import Column, TableArtifact
from repro.core import DummyFillEngine, FillConfig
from repro.density import measure_raw_components

_ITERS = [0, 1, 2, 3, 5]
_rows = {}


def _run(bench, iters):
    layout = bench.fresh_layout()
    report = DummyFillEngine(
        FillConfig(eta=0.2, sizing_iterations=iters), weights=bench.weights
    ).run(layout, bench.grid)
    raw = measure_raw_components(layout, bench.grid)
    _rows[iters] = (raw, report.stage_seconds["sizing"], layout.num_fills)
    return raw


@pytest.mark.parametrize("iters", _ITERS)
def test_iterations_sweep(benchmark, benchmarks_cache, iters):
    bench = benchmarks_cache("s")
    raw = benchmark.pedantic(_run, args=(bench, iters), rounds=1, iterations=1)
    assert raw.variation >= 0


def test_iterations_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact(
        "ablation_iterations",
        [
            Column("rounds", ">7d"),
            Column("sigma_sum", ">12.4f"),
            Column("overlay", ">12.0f"),
            Column("sizing_s", ">10.2f", "sizing s"),
            Column("num_fills", ">8d", "#fills"),
        ],
    )
    for iters in _ITERS:
        raw, secs, fills = _rows[iters]
        table.add_row(
            rounds=iters,
            sigma_sum=raw.variation,
            overlay=raw.overlay,
            sizing_s=secs,
            num_fills=fills,
        )
    table.note(
        "(0 rounds = raw candidates: over-target density, no DRC repair "
        "pressure applied through the LP)"
    )
    emit(results_dir, table)
    # Convergence: density gap must not get worse after round 1.
    assert _rows[3][0].variation <= _rows[0][0].variation + 1e-9