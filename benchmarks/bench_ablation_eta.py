"""Ablation A3: the overlay weight η (Eqn. (9a)).

η prices one dbu² of cross-layer overlay against one dbu² of density
gap during sizing.  The paper uses η = 1 under its own normalisation;
under this suite's calibrated β the contest harness uses 0.2
(``repro.bench.contest.CONTEST_ETA``).  The sweep exposes the whole
trade-off curve: density metrics degrade and overlay improves
monotonically as η grows.
"""

import pytest
from conftest import emit

from repro.bench import Column, TableArtifact
from repro.core import DummyFillEngine, FillConfig
from repro.density import measure_raw_components

_ETAS = [0.0, 0.2, 0.5, 1.0]
_rows = {}


def _run(bench, eta):
    layout = bench.fresh_layout()
    DummyFillEngine(
        FillConfig(eta=eta), weights=bench.weights
    ).run(layout, bench.grid)
    raw = measure_raw_components(layout, bench.grid)
    _rows[eta] = raw
    return raw


@pytest.mark.parametrize("eta", _ETAS)
def test_eta_sweep(benchmark, benchmarks_cache, eta):
    bench = benchmarks_cache("s")
    raw = benchmark.pedantic(_run, args=(bench, eta), rounds=1, iterations=1)
    assert raw.overlay >= 0


def test_eta_report(benchmark, benchmarks_cache, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    bench = benchmarks_cache("s")
    table = TableArtifact(
        "ablation_eta",
        [
            Column("eta", ">6.2f"),
            Column("sigma_sum", ">12.4f"),
            Column("line_sum", ">12.3f"),
            Column("overlay", ">14.0f"),
        ],
    )
    for eta in _ETAS:
        raw = _rows[eta]
        table.add_row(
            eta=eta,
            sigma_sum=raw.variation,
            line_sum=raw.line,
            overlay=raw.overlay,
        )
    table.note(
        f"(overlay beta = {bench.weights.beta_overlay:.0f}; the sweep "
        "shows the density/overlay trade-off the sizing objective prices)"
    )
    emit(results_dir, table)
    # Trade-off direction: more eta -> less overlay, more variation.
    assert _rows[1.0].overlay <= _rows[0.0].overlay
    assert _rows[1.0].variation >= _rows[0.0].variation - 1e-9
