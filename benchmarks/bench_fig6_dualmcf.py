"""Fig. 6 reproduction: the dual min-cost-flow worked example.

The paper walks one instance through the Eqn. (15)/(16) transformation:

    min x1 + 2 x2 + 3 x3 + 4 x4
    s.t. x1 - x2 >= 5,  x4 - x3 >= 6,  0 <= x <= 10, x in Z

with solution graph Fig. 6(b) yielding x = (5, 0, 0, 6).  This bench
reproduces the instance exactly on every solver backend and times them,
plus scaled-up random instances of the same shape.
"""

import random

import pytest
from conftest import emit

from repro.bench import Column, TableArtifact
from repro.netflow import (
    DifferentialLP,
    solve_dual_mcf,
    solve_linprog,
)


def fig6_lp():
    lp = DifferentialLP()
    for c in (1, 2, 3, 4):
        lp.add_variable(c, 0, 10)
    lp.add_constraint(0, 1, 5)
    lp.add_constraint(3, 2, 6)
    return lp


def chain_lp(n, seed=0):
    """A sizing-shaped instance: n variables chained by constraints.

    Bounds are wide enough that any prefix of the chained offsets fits,
    so the instance is feasible by construction for every seed.
    """
    rng = random.Random(seed)
    lp = DifferentialLP()
    for _ in range(n):
        lp.add_variable(rng.randint(-200, 200), 0, 40 * n)
    for i in range(n - 1):
        lp.add_constraint(i + 1, i, rng.randint(-40, 8))
    return lp


@pytest.mark.parametrize("solver", ["ssp", "simplex"])
def test_fig6_exact(benchmark, solver):
    sol = benchmark(lambda: solve_dual_mcf(fig6_lp(), solver))
    assert sol.x == [5, 0, 0, 6]
    assert sol.objective == 29


def test_fig6_scipy_reference(benchmark):
    sol = benchmark(lambda: solve_linprog(fig6_lp()))
    assert sol.x == [5, 0, 0, 6]


@pytest.mark.parametrize("n", [50, 200])
def test_chain_ssp(benchmark, n):
    lp = chain_lp(n)
    try:
        reference = solve_linprog(lp).objective
    except Exception:
        pytest.skip("random chain infeasible")
    sol = benchmark(lambda: solve_dual_mcf(lp, "ssp", decompose=False))
    assert sol.objective == reference


def test_fig6_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    sol = solve_dual_mcf(fig6_lp(), "ssp")
    net = fig6_lp().to_flow_network()
    table = TableArtifact(
        "fig6",
        [
            Column("nodes", ">6d"),
            Column("arcs", ">6d"),
            Column("x", ">14"),
            Column("objective", ">10d"),
            Column("flow_cost", ">10d"),
        ],
    )
    table.add_row(
        nodes=net.num_nodes,
        arcs=net.num_arcs,
        x=str(sol.x),
        objective=sol.objective,
        flow_cost=sol.flow_cost,
    )
    table.note(
        "Fig. 6 instance: min x1+2x2+3x3+4x4, x1-x2>=5, x4-x3>=6, x in [0,10]"
    )
    table.note(f"flow network supplies: {net.supplies}")
    table.note("paper: x = [5, 0, 0, 6], objective 29")
    emit(results_dir, table)
    assert sol.x == [5, 0, 0, 6]
