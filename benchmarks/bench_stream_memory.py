"""Bounded-memory claim of the out-of-core streaming path (PR 10).

The in-memory engine holds the whole layout, every candidate and the
full fill set resident, so its peak RSS grows with the die.  The
streaming path (``repro fill --stream`` / :func:`repro.core.stream_fill`)
sweeps the die one window-column band at a time, sizing the band count
from a byte budget — its working set is one band, not one die.

This bench fills a family of dies growing 4x in area (width grows,
height fixed, wire density constant — so the band the budget carves
out stays the same size while the die does not) in fresh subprocesses
and reads peak RSS off the run records:

* streamed peak RSS must stay flat — within 1.2x across the family;
* in-memory peak RSS must climb monotonically with die area;
* the two outputs must stay byte-identical at every size.
"""

import json
import os
import random
import subprocess
import sys
from pathlib import Path

import pytest
from conftest import QUICK, emit

import repro
from repro import obs
from repro.bench import Column, TableArtifact
from repro.gdsii import GdsiiStreamWriter
from repro.geometry import Rect

_HEIGHT = 3000
_WIDTHS = [4000, 8000] if QUICK else [4000, 8000, 16000]
_LAYERS = 3
_WINDOW = 500  # dbu per window in both axes
_BUDGET = 64 * 1024  # small on purpose: forces real banding at every size
_CHILD = Path(__file__).parent / "_stream_memory_child.py"

_rows = {}


def _write_input(path, width):
    """A ``width`` x ``_HEIGHT`` die of constant-density jittered-grid wires."""
    rng = random.Random(width)
    step = 100
    count = 0
    with open(path, "wb") as fh:
        writer = GdsiiStreamWriter(fh)
        writer.boundary(0, 0, Rect(0, 0, width, _HEIGHT))
        for layer in range(1, _LAYERS + 1):
            for x in range(0, width, step):
                for y in range(0, _HEIGHT, step):
                    if rng.random() < 0.5:
                        w = rng.randrange(20, 60)
                        h = rng.randrange(20, 60)
                        dx = rng.randrange(0, step - w - 10)
                        dy = rng.randrange(0, step - h - 10)
                        writer.boundary(
                            layer, 0, Rect(x + dx, y + dy, x + dx + w, y + dy + h)
                        )
                        count += 1
        writer.close()
    return count


def _measure(mode, gds_path, out_dir, width):
    cols = width // _WINDOW
    rows = _HEIGHT // _WINDOW
    record_path = out_dir / f"{mode}-{width}.jsonl"
    out_path = out_dir / f"{mode}-{width}.gds"
    cmd = [
        sys.executable,
        str(_CHILD),
        str(gds_path),
        str(out_path),
        "--mode",
        mode,
        "--cols",
        str(cols),
        "--rows",
        str(rows),
        "--trace-out",
        str(record_path),
    ]
    if mode == "stream":
        cmd += ["--budget", str(_BUDGET)]
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        cmd, check=True, env=env, capture_output=True, text=True
    )
    child = json.loads(proc.stdout.strip().splitlines()[-1])
    peak = float(obs.read_record(record_path).summary["peak_rss_mb"])
    return peak, child["bands"], out_path


@pytest.fixture(scope="module")
def measurements(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("stream_memory")
    rows = {}
    for width in _WIDTHS:
        gds = out_dir / f"in-{width}.gds"
        wires = _write_input(gds, width)
        mem_peak, _, mem_out = _measure("inmem", gds, out_dir, width)
        str_peak, bands, str_out = _measure("stream", gds, out_dir, width)
        assert mem_out.read_bytes() == str_out.read_bytes()
        rows[width] = {
            "wires": wires,
            "inmem_mb": mem_peak,
            "stream_mb": str_peak,
            "bands": bands,
        }
    return rows


@pytest.mark.parametrize("width", _WIDTHS)
def test_outputs_identical_and_banded(benchmark, measurements, width):
    row = benchmark.pedantic(
        lambda: measurements[width], rounds=1, iterations=1
    )
    _rows[width] = row
    assert row["bands"] > 1


def test_stream_memory_report(benchmark, measurements, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact(
        "stream_memory",
        [
            Column("die", ">14"),
            Column("wires", ">7d"),
            Column("bands", ">6d"),
            Column("inmem_mb", ">10.1f", "in-mem MB"),
            Column("stream_mb", ">10.1f", "stream MB"),
        ],
    )
    for width in _WIDTHS:
        row = measurements[width]
        table.add_row(
            die=f"{width}x{_HEIGHT}",
            wires=row["wires"],
            bands=row["bands"],
            inmem_mb=row["inmem_mb"],
            stream_mb=row["stream_mb"],
        )
    stream_peaks = [measurements[w]["stream_mb"] for w in _WIDTHS]
    inmem_peaks = [measurements[w]["inmem_mb"] for w in _WIDTHS]
    spread = max(stream_peaks) / max(min(stream_peaks), 1e-9)
    table.note(
        f"die area grows {_WIDTHS[-1] // _WIDTHS[0]}x; streamed peak RSS "
        f"spread {spread:.2f}x (budget {_BUDGET // 1024}K -> "
        f"{measurements[_WIDTHS[-1]]['bands']} bands at the largest die) "
        f"vs in-memory {inmem_peaks[0]:.1f} -> {inmem_peaks[-1]:.1f} MB"
    )
    table.note(
        "each cell runs in a fresh interpreter (benchmarks/"
        "_stream_memory_child.py) so allocator high-water marks cannot "
        "leak between modes; outputs are cmp-identical at every size"
    )
    emit(results_dir, table)
    # The bounded-memory claim: streamed flat within 1.2x while the
    # in-memory peak climbs monotonically with die area.
    assert spread <= 1.2, f"streamed peak RSS not flat: {stream_peaks}"
    for smaller, larger in zip(inmem_peaks, inmem_peaks[1:]):
        assert larger > smaller, f"in-memory peak not monotonic: {inmem_peaks}"
