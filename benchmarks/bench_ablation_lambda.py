"""Ablation A1: the λ candidate over-generation factor (Alg. 1).

Alg. 1 requires λ >= 1: candidates are an upper bound the sizing stage
shrinks, so they must over-shoot the target.  This bench sweeps λ on
benchmark ``s`` and reports the density metrics, fill count, and
overlay — showing the knee: λ slightly above 1 buys density headroom,
large λ only adds fills (file size) without density benefit.
"""

import pytest
from conftest import emit

from repro.bench import Column, TableArtifact
from repro.core import DummyFillEngine, FillConfig
from repro.density import measure_raw_components

_LAMBDAS = [1.0, 1.1, 1.3, 1.6]
_rows = {}


def _run(bench, lam):
    layout = bench.fresh_layout()
    report = DummyFillEngine(
        FillConfig(eta=0.2, lambda_factor=lam), weights=bench.weights
    ).run(layout, bench.grid)
    raw = measure_raw_components(layout, bench.grid)
    _rows[lam] = (raw, report.num_candidates, report.num_fills)
    return raw


@pytest.mark.parametrize("lam", _LAMBDAS)
def test_lambda_sweep(benchmark, benchmarks_cache, lam):
    bench = benchmarks_cache("s")
    raw = benchmark.pedantic(_run, args=(bench, lam), rounds=1, iterations=1)
    assert raw.variation >= 0


def test_lambda_report(benchmark, benchmarks_cache, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    bench = benchmarks_cache("s")
    beta = bench.weights.beta_variation
    table = TableArtifact(
        "ablation_lambda",
        [
            Column("lam", ">8.2f", "lambda"),
            Column("sigma_sum", ">12.4f"),
            Column("line_sum", ">12.3f"),
            Column("overlay", ">12.0f"),
            Column("num_cands", ">8d", "#cand"),
            Column("num_fills", ">8d", "#fills"),
        ],
    )
    for lam in _LAMBDAS:
        raw, n_cand, n_fills = _rows[lam]
        table.add_row(
            lam=lam,
            sigma_sum=raw.variation,
            line_sum=raw.line,
            overlay=raw.overlay,
            num_cands=n_cand,
            num_fills=n_fills,
        )
    table.note(f"(unfilled sigma_sum = {beta:.4f})")
    emit(results_dir, table)
    # λ over-generation must not hurt density vs exactly-at-target.
    assert _rows[1.1][0].variation <= _rows[1.0][0].variation * 1.5
