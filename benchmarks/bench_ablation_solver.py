"""Ablation A2: dual-MCF backends vs the general LP solver (§3.3.3).

The paper's core performance claim: the relaxed sizing problem "is able
to achieve further speedup with dual min-cost flow" over solving the
ILP directly.  This bench times identical differential-constraint
instances (chains shaped like a window's sizing pass) on:

* ``ssp``      — dual MCF via successive shortest paths (ours, default),
* ``simplex``  — dual MCF via primal network simplex (ours),
* ``cost-scaling`` — dual MCF via Goldberg-Tarjan cost scaling (ours),
* ``scipy``    — ``scipy.optimize.linprog`` (HiGHS), the §3.3.2
  reference standing in for the ILP solver,

and the end-to-end engine on benchmark ``s`` with each backend.
All backends are asserted to return the same optimum.
"""

import random

import pytest
from conftest import emit

from repro.bench import Column, TableArtifact
from repro.core import DummyFillEngine, FillConfig
from repro.netflow import DifferentialLP, solve_dual_mcf, solve_linprog

from bench_fig6_dualmcf import chain_lp


def windows_lp(num_fills, seed=1):
    """An instance shaped exactly like one horizontal sizing pass:
    (xl, xh) pairs with width constraints plus sparse spacing chains."""
    rng = random.Random(seed)
    lp = DifferentialLP()
    pairs = []
    for _ in range(num_fills):
        x = rng.randint(0, 5000)
        w = rng.randint(30, 150)
        xl = lp.add_variable(rng.randint(-150, 150), x, x + 25)
        xh = lp.add_variable(rng.randint(-150, 150), x + w - 25, x + w)
        lp.add_constraint(xh, xl, 20)
        pairs.append((xl, xh))
    for k in range(0, num_fills - 1, 3):
        # Occasional spacing coupling between consecutive fills.
        lp.add_constraint(pairs[k + 1][0], pairs[k][1], -5000)
    return lp


_SOLVE = {
    "ssp": lambda lp: solve_dual_mcf(lp, "ssp"),
    "simplex": lambda lp: solve_dual_mcf(lp, "simplex"),
    "cost-scaling": lambda lp: solve_dual_mcf(lp, "cost-scaling"),
    "scipy": solve_linprog,
}

@pytest.mark.parametrize("backend", list(_SOLVE))
@pytest.mark.parametrize("size", [100, 400])
def test_sizing_lp_backend(benchmark, backend, size):
    lp = windows_lp(size)
    reference = solve_linprog(lp).objective
    solve = _SOLVE[backend]
    sol = benchmark(lambda: solve(lp))
    assert sol.objective == reference


@pytest.mark.parametrize("backend", ["ssp", "scipy"])
def test_chain_lp_backend(benchmark, backend):
    lp = chain_lp(300, seed=3)
    reference = solve_linprog(lp).objective
    if backend == "ssp":
        sol = benchmark(lambda: solve_dual_mcf(lp, "ssp", decompose=False))
    else:
        sol = benchmark(lambda: solve_linprog(lp))
    assert sol.objective == reference


_engine_secs = {}


@pytest.mark.parametrize(
    "solver", ["mcf-ssp", "mcf-simplex", "mcf-costscaling", "lp"]
)
def test_engine_backend(benchmark, benchmarks_cache, solver):
    bench = benchmarks_cache("s")

    def run():
        layout = bench.fresh_layout()
        report = DummyFillEngine(
            FillConfig(eta=0.2, solver=solver), weights=bench.weights
        ).run(layout, bench.grid)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    _engine_secs[solver] = report.stage_seconds["sizing"]
    assert report.num_fills > 0


def test_solver_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact(
        "ablation_solver",
        [Column("solver", "<14"), Column("sizing_s", ">10.2f", "sizing s")],
    )
    for solver, secs in _engine_secs.items():
        table.add_row(solver=solver, sizing_s=secs)
    table.note("engine sizing-stage seconds on benchmark s, by LP backend")
    if "mcf-ssp" in _engine_secs and "lp" in _engine_secs:
        ratio = _engine_secs["lp"] / max(_engine_secs["mcf-ssp"], 1e-9)
        table.note(
            f"dual-MCF (ssp) speedup over general LP: {ratio:.2f}x "
            "(paper §3.3.3 claims dual MCF is the faster path)"
        )
    emit(results_dir, table)
