"""Subprocess worker for ``bench_stream_memory.py``.

Each measurement must run in a fresh interpreter: CPython's allocator
keeps its high-water mark, so running the in-memory and streamed fill
in the same process would let the first run's peak mask the second's.
The parent invokes this script once per (mode, die) cell; the peak RSS
lands in the ``--trace-out`` run record and the streaming band count is
printed as a JSON line on stdout.
"""

import argparse
import json
from pathlib import Path

from repro import obs
from repro.layout import DrcRules, WindowGrid

RULES = DrcRules(
    min_spacing=10,
    min_width=10,
    min_area=400,
    max_fill_width=150,
    max_fill_height=150,
)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("input")
    parser.add_argument("output")
    parser.add_argument("--mode", choices=("inmem", "stream"), required=True)
    parser.add_argument("--cols", type=int, required=True)
    parser.add_argument("--rows", type=int, required=True)
    parser.add_argument("--budget", type=int, default=None)
    parser.add_argument("--trace-out", required=True)
    args = parser.parse_args()

    bands = 0
    with obs.record_run(args.trace_out, label=f"stream-memory {args.mode}"):
        if args.mode == "stream":
            from repro.core import stream_fill

            report = stream_fill(
                args.input,
                args.output,
                RULES,
                cols=args.cols,
                rows=args.rows,
                memory_budget=args.budget,
            )
            bands = report.bands
        else:
            from repro.core import DummyFillEngine, FillConfig
            from repro.gdsii import gdsii_bytes, layout_from_gdsii

            layout = layout_from_gdsii(Path(args.input).read_bytes(), RULES)
            grid = WindowGrid(layout.die, args.cols, args.rows)
            DummyFillEngine(FillConfig()).run(layout, grid)
            with obs.span("io.write"):
                Path(args.output).write_bytes(gdsii_bytes(layout))
    print(json.dumps({"mode": args.mode, "bands": bands}))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
