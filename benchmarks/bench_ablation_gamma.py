"""Ablation A4: the quality-score area weight γ (Eqn. (8)).

The candidate quality score q = -overlay/area + γ·area/aw trades
overlay avoidance against preferring large fills.  γ = 0 ranks purely
by overlay; large γ ranks purely by size.  The sweep measures the
candidate-stage overlay and the mean candidate size on benchmark ``s``.
"""

import pytest
from conftest import emit

from repro.bench import Column, TableArtifact
from repro.core import FillConfig
from repro.core.candidates import generate_candidates
from repro.core.planner import plan_targets, PlannerObjective
from repro.density import analyze_layout
from repro.geometry import intersection_area

_GAMMAS = [0.0, 0.5, 1.0, 4.0]
_rows = {}


def _candidate_stats(bench, gamma):
    layout = bench.fresh_layout()
    config = FillConfig(gamma=gamma)
    margin = config.effective_margin(layout.rules.min_spacing)
    analysis = analyze_layout(layout, bench.grid, window_margin=margin)
    plan = plan_targets(
        analysis,
        PlannerObjective.from_score_weights(bench.weights),
        td_step=config.td_step,
    )
    cands = generate_candidates(layout, bench.grid, plan, analysis, config)
    overlay = 0
    count = 0
    area = 0
    for key, per_layer in cands.items():
        numbers = sorted(per_layer)
        for lo, hi in zip(numbers, numbers[1:]):
            overlay += intersection_area(per_layer[lo], per_layer[hi])
        for rects in per_layer.values():
            count += len(rects)
            area += sum(r.area for r in rects)
    stats = (overlay, count, area // max(count, 1))
    _rows[gamma] = stats
    return stats


@pytest.mark.parametrize("gamma", _GAMMAS)
def test_gamma_sweep(benchmark, benchmarks_cache, gamma):
    bench = benchmarks_cache("s")
    overlay, count, mean_area = benchmark.pedantic(
        _candidate_stats, args=(bench, gamma), rounds=1, iterations=1
    )
    assert count > 0


def test_gamma_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact(
        "ablation_gamma",
        [
            Column("gamma", ">7.1f"),
            Column("cand_overlay", ">14d", "cand overlay"),
            Column("num_cands", ">8d", "#cands"),
            Column("mean_area", ">11d", "mean area"),
        ],
    )
    for gamma in _GAMMAS:
        overlay, count, mean_area = _rows[gamma]
        table.add_row(
            gamma=gamma, cand_overlay=overlay, num_cands=count, mean_area=mean_area
        )
    table.note(
        "(gamma=1 is the paper's setting: 'we set it to 1 in the experiment')"
    )
    emit(results_dir, table)
