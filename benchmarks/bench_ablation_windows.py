"""Ablation A5: window-count (N x M) sensitivity.

Density metrics are defined on the fixed dissection (Fig. 2(b)), so the
window count is part of the problem statement.  The sweep runs the
engine on benchmark ``s`` dissected at three granularities and reports
metrics (measured on each grid) and runtime — finer dissections expose
more variation and cost more sizing LPs.
"""

import pytest
from conftest import emit

from repro.bench import Column, TableArtifact
from repro.core import DummyFillEngine, FillConfig
from repro.density import measure_raw_components
from repro.layout import WindowGrid

_GRIDS = [4, 8, 16]
_rows = {}


def _run(bench, n):
    layout = bench.fresh_layout()
    grid = WindowGrid(layout.die, n, n)
    report = DummyFillEngine(
        FillConfig(eta=0.2), weights=bench.weights
    ).run(layout, grid)
    raw = measure_raw_components(layout, grid)
    _rows[n] = (raw, report.num_fills, report.total_seconds)
    return raw


@pytest.mark.parametrize("n", _GRIDS)
def test_window_sweep(benchmark, benchmarks_cache, n):
    bench = benchmarks_cache("s")
    raw = benchmark.pedantic(_run, args=(bench, n), rounds=1, iterations=1)
    assert raw.variation >= 0


def test_window_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact(
        "ablation_windows",
        [
            Column("grid", ">8"),
            Column("sigma_sum", ">12.4f"),
            Column("line_sum", ">12.3f"),
            Column("overlay", ">12.0f"),
            Column("num_fills", ">8d", "#fills"),
            Column("seconds", ">9.2f"),
        ],
    )
    for n in _GRIDS:
        raw, fills, secs = _rows[n]
        table.add_row(
            grid=f"{n}x{n}",
            sigma_sum=raw.variation,
            line_sum=raw.line,
            overlay=raw.overlay,
            num_fills=fills,
            seconds=secs,
        )
    emit(results_dir, table)
