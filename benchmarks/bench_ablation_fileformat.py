"""Ablation A9: GDSII vs OASIS solution volume (paper §1).

"Although current layout file standard like GDSII and OASIS can achieve
good reduction in data volume, the problem is not solved due to the
increasing complexity of circuits" (§1).  This bench quantifies both
halves of that sentence on a filled benchmark: OASIS's modal variables
and row repetitions cut the per-fill cost by an order of magnitude, yet
the volume still scales with the fill count — which is why the paper
attacks the *number* of fills rather than the encoding.
"""

import pytest
from conftest import emit

from repro.baselines import tile_lp_fill
from repro.bench import Column, TableArtifact
from repro.core import DummyFillEngine, FillConfig
from repro.gdsii import gdsii_bytes
from repro.oasis import layout_from_oasis, oasis_bytes

_rows = {}


def _fill_ours(bench):
    layout = bench.fresh_layout()
    DummyFillEngine(FillConfig(eta=0.2), weights=bench.weights).run(
        layout, bench.grid
    )
    return layout


def _fill_tile(bench):
    layout = bench.fresh_layout()
    tile_lp_fill(layout, bench.grid, r=4)
    return layout


@pytest.mark.parametrize("filler", ["ours", "tile-lp"])
def test_fileformat(benchmark, benchmarks_cache, filler):
    bench = benchmarks_cache("s")
    fill = _fill_ours if filler == "ours" else _fill_tile
    layout = benchmark.pedantic(fill, args=(bench,), rounds=1, iterations=1)
    gds = gdsii_bytes(layout)
    oas = oasis_bytes(layout)
    # The compact stream must still reproduce the layout exactly.
    back = layout_from_oasis(oas)
    assert back.num_fills == layout.num_fills
    _rows[filler] = (layout.num_fills, len(gds), len(oas))
    assert len(oas) < len(gds)


def test_fileformat_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact(
        "ablation_fileformat",
        [
            Column("filler", "<10"),
            Column("num_fills", ">8d", "#fills"),
            Column("gds_bytes", ">10d", "GDSII"),
            Column("oas_bytes", ">10d", "OASIS"),
            Column("ratio", ">8.1f"),
        ],
    )
    for filler, (fills, gds, oas) in _rows.items():
        table.add_row(
            filler=filler,
            num_fills=fills,
            gds_bytes=gds,
            oas_bytes=oas,
            ratio=gds / oas,
        )
    table.note(
        "OASIS shrinks the same solution several-fold (modal variables +"
        "\nrow repetitions), but volume still scales with fill count —"
        "\nthe paper's case for fewer, larger fills stands in either format."
    )
    emit(results_dir, table)
