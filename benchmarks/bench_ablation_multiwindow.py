"""Ablation A7: single-phase vs sliding-window density (extension).

The fixed dissection the contest scores on (Fig. 2(b)) can hide
hotspots straddling window boundaries; the multi-window analysis of
Kahng et al. [3] slides the window in steps of w/r and takes the worst
phase.  This bench quantifies how much the single-phase σ
underestimates the worst phase, before and after fill.
"""

import pytest
from conftest import emit

from repro.bench import Column, TableArtifact
from repro.core import DummyFillEngine, FillConfig
from repro.density import MultiWindowGrid, multiwindow_metrics

_rows = {}


def _audit(bench, filled):
    layout = bench.fresh_layout()
    if filled:
        DummyFillEngine(FillConfig(eta=0.2), weights=bench.weights).run(
            layout, bench.grid
        )
    mw = MultiWindowGrid(bench.grid, r=2)
    base = worst = 0.0
    for layer in layout.layers:
        m = multiwindow_metrics(layer, mw, include_fills=filled)
        base += m.base.sigma
        worst += m.worst_sigma
    _rows[filled] = (base, worst)
    return base, worst


@pytest.mark.parametrize("filled", [False, True])
def test_multiwindow_audit(benchmark, benchmarks_cache, filled):
    bench = benchmarks_cache("s")
    base, worst = benchmark.pedantic(
        _audit, args=(bench, filled), rounds=1, iterations=1
    )
    assert worst >= base - 1e-12


def test_multiwindow_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact(
        "ablation_multiwindow",
        [
            Column("state", "<10"),
            Column("base_sigma", ">12.4f", "base sigma"),
            Column("worst_sigma", ">13.4f", "worst-phase"),
            Column("underestimate_pct", ">11.1f", "underest.%"),
        ],
    )
    for filled, label in ((False, "unfilled"), (True, "filled")):
        base, worst = _rows[filled]
        under = 0.0 if worst == 0 else (1 - base / worst) * 100
        table.add_row(
            state=label,
            base_sigma=base,
            worst_sigma=worst,
            underestimate_pct=under,
        )
    table.note(
        "(sliding-window analysis per Kahng et al. [3]; r=2 phases per axis)"
    )
    emit(results_dir, table)
