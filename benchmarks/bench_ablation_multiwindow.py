"""Ablation A7: single-phase vs sliding-window density (extension).

The fixed dissection the contest scores on (Fig. 2(b)) can hide
hotspots straddling window boundaries; the multi-window analysis of
Kahng et al. [3] slides the window in steps of w/r and takes the worst
phase.  This bench quantifies how much the single-phase σ
underestimates the worst phase, before and after fill.
"""

import pytest
from conftest import emit

from repro.core import DummyFillEngine, FillConfig
from repro.density import MultiWindowGrid, multiwindow_metrics

_rows = {}


def _audit(bench, filled):
    layout = bench.fresh_layout()
    if filled:
        DummyFillEngine(FillConfig(eta=0.2), weights=bench.weights).run(
            layout, bench.grid
        )
    mw = MultiWindowGrid(bench.grid, r=2)
    base = worst = 0.0
    for layer in layout.layers:
        m = multiwindow_metrics(layer, mw, include_fills=filled)
        base += m.base.sigma
        worst += m.worst_sigma
    _rows[filled] = (base, worst)
    return base, worst


@pytest.mark.parametrize("filled", [False, True])
def test_multiwindow_audit(benchmark, benchmarks_cache, filled):
    bench = benchmarks_cache("s")
    base, worst = benchmark.pedantic(
        _audit, args=(bench, filled), rounds=1, iterations=1
    )
    assert worst >= base - 1e-12


def test_multiwindow_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{'state':<10}{'base sigma':>12}{'worst-phase':>13}{'underest.':>11}"]
    for filled, label in ((False, "unfilled"), (True, "filled")):
        base, worst = _rows[filled]
        under = 0.0 if worst == 0 else (1 - base / worst) * 100
        lines.append(f"{label:<10}{base:>12.4f}{worst:>13.4f}{under:>10.1f}%")
    lines.append(
        "(sliding-window analysis per Kahng et al. [3]; r=2 phases per axis)"
    )
    emit(results_dir, "ablation_multiwindow", "\n".join(lines))
