"""Ablation A8: runtime scaling — the "high performance" claim.

The paper's title claim is about *scale*: tile-based LP formulations
blow up ("over 160K variables" for one layout, §1) while the geometric
engine's work grows with the geometry.  This bench runs our engine,
the tile-LP baseline, and the Monte-Carlo baseline on a family of
growing synthetic layouts and records wall time; the expected shape —
our engine overtakes both baselines as the layout grows — mirrors the
runtime relationships measured on the full suite (EXPERIMENTS.md).
"""

import pytest
from conftest import QUICK, emit

from repro import obs
from repro.baselines import monte_carlo_fill, tile_lp_fill
from repro.bench import Column, TableArtifact
from repro.bench.generator import LayoutSpec, generate_layout
from repro.core import DummyFillEngine, FillConfig
from repro.layout import DrcRules, WindowGrid

_RULES = DrcRules(
    min_spacing=10,
    min_width=10,
    min_area=400,
    max_fill_width=150,
    max_fill_height=150,
)

_SIZES = [2000, 4000] if QUICK else [2000, 4000, 8000]
_rows = {}


def _layout_for(size):
    spec = LayoutSpec(
        name=f"scale{size}",
        die_size=size,
        seed=size,
        num_cell_rects=size // 9,
        num_bus_bundles=max(1, size // 2000),
        num_macros=max(1, size // 4000),
        rules=_RULES,
    )
    layout = generate_layout(spec)
    return layout, WindowGrid(layout.die, size // 500, size // 500)


def _run(filler, size):
    layout, grid = _layout_for(size)
    with obs.measure(sample_rss=False) as measured:
        if filler == "ours":
            DummyFillEngine(FillConfig(eta=0.2)).run(layout, grid)
        elif filler == "ours-raster":
            DummyFillEngine(FillConfig(eta=0.2, kernel="raster")).run(layout, grid)
        elif filler == "ours-w4":
            DummyFillEngine(FillConfig(eta=0.2, workers=4)).run(layout, grid)
        elif filler == "tile-lp":
            tile_lp_fill(layout, grid, r=4)
        else:
            monte_carlo_fill(layout, grid)
    secs = measured.seconds
    _rows[(filler, size)] = (secs, layout.num_fills)
    return secs


@pytest.mark.parametrize("size", _SIZES)
@pytest.mark.parametrize("filler", ["ours", "ours-raster", "ours-w4", "tile-lp", "mc"])
def test_scaling(benchmark, filler, size):
    secs = benchmark.pedantic(_run, args=(filler, size), rounds=1, iterations=1)
    assert secs > 0
    if filler == "ours-w4" and ("ours", size) in _rows:
        # Window sharding must not change the output, only the clock.
        assert _rows[("ours-w4", size)][1] == _rows[("ours", size)][1]
    if filler == "ours-raster" and ("ours", size) in _rows:
        # The raster kernel must not change the output either (the CI
        # kernel-parity job cmp's the actual GDSII bytes).
        assert _rows[("ours-raster", size)][1] == _rows[("ours", size)][1]


def test_scaling_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact(
        "scaling",
        [
            Column("die", ">7d"),
            Column("windows", ">9"),
            Column("ours_s", ">12.1f", "ours"),
            Column("ours_raster_s", ">12.1f", "ours-raster"),
            Column("ours_w4_s", ">12.1f", "ours-w4"),
            Column("tile_lp_s", ">12.1f", "tile-lp"),
            Column("mc_s", ">12.1f", "mc"),
        ],
    )
    for size in _SIZES:
        n = size // 500
        table.add_row(
            die=size,
            windows=f"{n}x{n}",
            ours_s=_rows[("ours", size)][0],
            ours_raster_s=_rows[("ours-raster", size)][0],
            ours_w4_s=_rows[("ours-w4", size)][0],
            tile_lp_s=_rows[("tile-lp", size)][0],
            mc_s=_rows[("mc", size)][0],
        )
    largest = _SIZES[-1]
    ours = _rows[("ours", largest)][0]
    table.note(
        f"at die {largest}: ours {ours:.1f}s "
        f"(raster kernel: {_rows[('ours-raster', largest)][0]:.1f}s, "
        f"workers=4: {_rows[('ours-w4', largest)][0]:.1f}s) vs "
        f"tile-LP {_rows[('tile-lp', largest)][0]:.1f}s, "
        f"MC {_rows[('mc', largest)][0]:.1f}s"
    )
    table.note(
        "ours-raster runs the numpy occupancy-grid kernel "
        "(--kernel raster); fills are identical to the rect path "
        "(asserted above, byte-gated in CI) and serial fill beats the "
        "Monte Carlo baseline at every die size."
    )
    table.note(
        "ours-w4 shards the windows over a 4-worker process pool; "
        "fills are bit-identical to the serial run (asserted above). "
        "On a single-core runner the column measures sharding overhead, "
        "not speedup — see docs/PERFORMANCE.md."
    )
    emit(results_dir, table)
    # The headline shape: the geometric engine is not the slowest at scale.
    assert ours <= max(
        _rows[("tile-lp", largest)][0], _rows[("mc", largest)][0]
    )
    # The raster-kernel claim (PR 9): serial fill under the MC
    # baseline at every die size.
    for size in _SIZES:
        assert _rows[("ours-raster", size)][0] <= _rows[("mc", size)][0]
