"""Table 2 reproduction: benchmark statistics and score coefficients.

The paper's Table 2 lists, per contest benchmark, the design size
(#polygons, #layers, file size) and the α/β coefficients of every score
component.  This bench regenerates the scaled suite and prints the same
table for it; generation + calibration of each benchmark is the timed
quantity.
"""

from conftest import QUICK, emit

from repro.bench import SUITE_SPECS, Column, TableArtifact, load_benchmark

_COLUMNS = [
    Column("design", "<8", "Design"),
    Column("num_wires", ">8d", "#Wires"),
    Column("num_layers", ">4d", "#L"),
    Column("file_size_mb", ">12.3f", "File MB"),
    Column("beta_overlay", ">14.3e", "ov beta"),
    Column("beta_variation", ">10.4f", "var beta"),
    Column("beta_line", ">10.3f", "line beta"),
    Column("beta_outlier", ">10.4f", "outl beta"),
    Column("beta_size", ">10.4f", "size beta"),
    Column("beta_runtime", ">9.0f", "rt beta"),
    Column("beta_memory", ">9.0f", "mem beta"),
]

_rows = {}


def _load_and_row(name):
    bench = load_benchmark(name)
    w = bench.weights
    _rows[name] = {
        "design": name,
        "num_wires": bench.num_wires,
        "num_layers": bench.layout.num_layers,
        "file_size_mb": bench.input_size_mb,
        "beta_overlay": w.beta_overlay,
        "beta_variation": w.beta_variation,
        "beta_line": w.beta_line,
        "beta_outlier": w.beta_outlier,
        "beta_size": w.beta_size,
        "beta_runtime": w.beta_runtime,
        "beta_memory": w.beta_memory,
    }
    return bench


def test_table2_generate_s(benchmark):
    bench = benchmark.pedantic(_load_and_row, args=("s",), rounds=1, iterations=1)
    assert bench.num_wires > 0


def test_table2_generate_b(benchmark):
    bench = benchmark.pedantic(_load_and_row, args=("b",), rounds=1, iterations=1)
    assert bench.num_wires > 0


def test_table2_generate_m(benchmark, results_dir):
    if not QUICK:
        bench = benchmark.pedantic(
            _load_and_row, args=("m",), rounds=1, iterations=1
        )
        assert bench.num_wires > 0
    else:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact("table2", _COLUMNS)
    for k in SUITE_SPECS:
        if k in _rows:
            table.add_row(**_rows[k])
    table.note(
        "alpha weights (all benchmarks, as in the contest): "
        "overlay 0.2, variation 0.2, line 0.2, outlier 0.15, "
        "size 0.05, runtime 0.15, memory 0.05"
    )
    emit(results_dir, table)
