"""Table 2 reproduction: benchmark statistics and score coefficients.

The paper's Table 2 lists, per contest benchmark, the design size
(#polygons, #layers, file size) and the α/β coefficients of every score
component.  This bench regenerates the scaled suite and prints the same
table for it; generation + calibration of each benchmark is the timed
quantity.
"""

from conftest import QUICK, emit

from repro.bench import SUITE_SPECS, load_benchmark

_HEADER = (
    f"{'Design':<8}{'#Wires':>8}{'#L':>4}{'File size':>12}"
    f"{'ov beta':>14}{'var beta':>10}{'line beta':>10}{'outl beta':>10}"
    f"{'size beta':>10}{'rt beta':>9}{'mem beta':>9}"
)

_rows = {}


def _load_and_row(name):
    bench = load_benchmark(name)
    w = bench.weights
    row = (
        f"{name:<8}{bench.num_wires:>8}{bench.layout.num_layers:>4}"
        f"{bench.input_size_mb:>10.3f}MB"
        f"{w.beta_overlay:>14.3e}{w.beta_variation:>10.4f}"
        f"{w.beta_line:>10.3f}{w.beta_outlier:>10.4f}"
        f"{w.beta_size:>10.4f}{w.beta_runtime:>9.0f}{w.beta_memory:>9.0f}"
    )
    _rows[name] = row
    return bench


def test_table2_generate_s(benchmark):
    bench = benchmark.pedantic(_load_and_row, args=("s",), rounds=1, iterations=1)
    assert bench.num_wires > 0


def test_table2_generate_b(benchmark):
    bench = benchmark.pedantic(_load_and_row, args=("b",), rounds=1, iterations=1)
    assert bench.num_wires > 0


def test_table2_generate_m(benchmark, results_dir):
    if not QUICK:
        bench = benchmark.pedantic(
            _load_and_row, args=("m",), rounds=1, iterations=1
        )
        assert bench.num_wires > 0
    else:
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [_HEADER, "-" * len(_HEADER)]
    lines += [_rows[k] for k in SUITE_SPECS if k in _rows]
    lines.append(
        "\nalpha weights (all benchmarks, as in the contest): "
        "overlay 0.2, variation 0.2, line 0.2, outlier 0.15, "
        "size 0.05, runtime 0.15, memory 0.05"
    )
    emit(results_dir, "table2", "\n".join(lines))
