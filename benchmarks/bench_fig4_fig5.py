"""Figs. 4/5 reproduction: candidate generation in the two overlay cases.

* **Fig. 4 (Case I, zero overlay)** — the region free on both layers
  (Region 3) is large enough for both layers' density gaps; Alg. 1
  steers fills there and the resulting fill-vs-fill overlay is zero.
* **Fig. 5 (Case II, non-zero overlay)** — Region 3 is too small;
  fills must extend into the singly-free Regions 1/2 and a small
  overlay is accepted for density's sake (quality score Eqn. (8)).

The benchmarked quantity is Alg. 1 itself on each scenario; the report
records the achieved overlay for both cases.
"""

import pytest
from conftest import emit

from repro.bench import Column, TableArtifact
from repro.core import FillConfig
from repro.core.candidates import generate_candidates
from repro.core.planner import plan_targets
from repro.density import analyze_layout
from repro.geometry import Rect, intersection_area
from repro.layout import DrcRules, Layout, WindowGrid

RULES = DrcRules(
    min_spacing=10, min_width=10, min_area=400, max_fill_width=100, max_fill_height=100
)


def _scenario(case):
    """A driver window plus a 600x600 test window, two layers (Figs. 4/5).

    In the test window, layer-1 wires block the left band and layer-2
    wires block the right band; the middle is Region 3 (free on both).
    ``fig4`` leaves a wide middle (Case I: both density gaps fit);
    ``fig5`` narrows it so the gap spills into the singly-free bands.
    The driver window carries dense wires on both layers, pulling the
    Case I target density up so the test window actually needs fill.
    """
    layout = Layout(Rect(0, 0, 1200, 600), num_layers=2, rules=RULES)
    # Driver window x in [0, 600): ~35% dense stripes on both layers —
    # high enough to demand fill in the test window, low enough that the
    # fig4 geometry's Region 3 can still host both density gaps (Case I).
    y = 0
    while y < 600:
        layout.layer(1).add_wire(Rect(0, y, 590, y + 14))
        layout.layer(2).add_wire(Rect(0, y, 590, y + 14))
        y += 40
    # Test window x in [600, 1200).
    if case == "fig4":
        left_band = Rect(600, 0, 700, 600)
        right_band = Rect(1100, 0, 1200, 600)
    else:
        left_band = Rect(600, 0, 860, 600)
        right_band = Rect(940, 0, 1200, 600)
    y = 0
    while y < 600:
        layout.layer(1).add_wire(Rect(left_band.xl, y, left_band.xh, y + 20))
        layout.layer(2).add_wire(Rect(right_band.xl, y, right_band.xh, y + 20))
        y += 40
    grid = WindowGrid(layout.die, 2, 1)
    return layout, grid


def _run_case(case, config=None):
    layout, grid = _scenario(case)
    config = config or FillConfig()
    margin = config.effective_margin(RULES.min_spacing)
    analysis = analyze_layout(layout, grid, window_margin=margin)
    plan = plan_targets(analysis, td_step=config.td_step)
    cands = generate_candidates(layout, grid, plan, analysis, config)
    per_layer = cands[(1, 0)]  # the test window (window 0 is the driver)
    fill_fill = intersection_area(per_layer.get(1, []), per_layer.get(2, []))
    fill_wire = intersection_area(
        per_layer.get(1, []), layout.layer(2).wires
    ) + intersection_area(per_layer.get(2, []), layout.layer(1).wires)
    areas = {n: sum(r.area for r in rects) for n, rects in per_layer.items()}
    return fill_fill, fill_wire, areas


def test_fig4_zero_overlay(benchmark):
    fill_fill, fill_wire, areas = benchmark(lambda: _run_case("fig4"))
    assert areas[1] > 0 and areas[2] > 0
    # Case I: the doubly-free region hosts everything without overlap.
    assert fill_fill == 0


def test_fig5_bounded_overlay(benchmark):
    fill_fill, fill_wire, areas = benchmark(lambda: _run_case("fig5"))
    assert areas[1] > 0 and areas[2] > 0
    total = areas[1] + areas[2]
    # Case II: some overlay is inevitable but stays a small fraction.
    assert fill_fill + fill_wire < 0.5 * total


def test_fig45_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact(
        "fig4_fig5",
        [
            Column("case", "<6"),
            Column("area_l1", ">10d", "L1 area"),
            Column("area_l2", ">10d", "L2 area"),
            Column("fill_fill", ">11d", "fill-fill"),
            Column("fill_wire", ">11d", "fill-wire"),
        ],
    )
    for case in ("fig4", "fig5"):
        fill_fill, fill_wire, areas = _run_case(case)
        table.add_row(
            case=case,
            area_l1=areas[1],
            area_l2=areas[2],
            fill_fill=fill_fill,
            fill_wire=fill_wire,
        )
    table.note("paper: Fig. 4 case admits a zero-overlay arrangement;")
    table.note("       Fig. 5 case accepts small overlay for density.")
    emit(results_dir, table)
