"""Table 3 reproduction: all teams scored on every benchmark.

The paper's headline result: its engine produces the best Testcase
Quality and Testcase Score on all three contest benchmarks, averaging
+13% quality and +10% score over the best contest team.  This bench
runs our engine plus the three baseline stand-ins (DESIGN.md §3) on the
scaled suite, prints the full Table 3, and asserts the *shape*: ours
wins quality and score per benchmark, and the headline gains are
positive.

Each (benchmark, team) run is an individual pytest-benchmark entry, so
``--benchmark-only`` output also reproduces the runtime relationships
(our geometric engine scales better than the tile-LP and Monte-Carlo
baselines on ``m``).
"""

import pytest
from conftest import QUICK, emit

from repro.bench import TEAMS, format_table, headline, run_team

_BENCHES = ["s", "b"] if QUICK else ["s", "b", "m"]
_results = {}


def _run(bench_loader, bench_name, team):
    bench = bench_loader(bench_name)
    entry = run_team(bench, team, trace_memory=True)
    _results.setdefault(bench_name, {})[team] = entry
    return entry


@pytest.mark.parametrize("bench_name", _BENCHES)
@pytest.mark.parametrize("team", list(TEAMS))
def test_table3_run(benchmark, benchmarks_cache, bench_name, team):
    entry = benchmark.pedantic(
        _run, args=(benchmarks_cache, bench_name, team), rounds=1, iterations=1
    )
    assert entry.num_fills > 0
    assert 0.0 <= entry.card.total <= 1.0


def test_table3_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _results, "run the table3 matrix first"
    table = format_table(_results)
    q_gain, s_gain = headline(_results)
    summary = (
        f"\nheadline: ours vs best baseline: quality {q_gain * 100:+.1f}%, "
        f"score {s_gain * 100:+.1f}%   (paper Table 3: +13%, +10%)"
    )
    emit(results_dir, "table3", table + summary)
    # Shape assertions (the paper's claims, not its absolute numbers):
    for bench_name, teams in _results.items():
        ours = teams["ours"]
        for name, entry in teams.items():
            if name == "ours":
                continue
            assert ours.card.quality >= entry.card.quality, (
                f"ours loses quality to {name} on {bench_name}"
            )
            assert ours.card.total >= entry.card.total, (
                f"ours loses score to {name} on {bench_name}"
            )
    assert q_gain > 0.0
    assert s_gain > 0.0
