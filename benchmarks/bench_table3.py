"""Table 3 reproduction: all teams scored on every benchmark.

The paper's headline result: its engine produces the best Testcase
Quality and Testcase Score on all three contest benchmarks, averaging
+13% quality and +10% score over the best contest team.  This bench
runs our engine plus the three baseline stand-ins (DESIGN.md §3) on the
scaled suite, prints the full Table 3, and asserts the *shape*: ours
wins quality and score per benchmark, and the headline gains are
positive.

Each (benchmark, team) run is an individual pytest-benchmark entry, so
``--benchmark-only`` output also reproduces the runtime relationships
(our geometric engine scales better than the tile-LP and Monte-Carlo
baselines on ``m``).
"""

import pytest
from conftest import QUICK, emit

from repro.bench import TEAMS, Column, TableArtifact, headline, run_team

_BENCHES = ["s", "b"] if QUICK else ["s", "b", "m"]
_results = {}

_COLUMNS = [Column("design", "<8", "Design"), Column("team", "<12", "Team")] + [
    Column(c, ">11.3f", c.capitalize() + "*")
    for c in ("overlay", "variation", "line", "outlier", "size", "runtime", "memory")
] + [
    Column("quality", ">11.3f", "Quality"),
    Column("score", ">11.3f", "Score"),
    Column("num_fills", ">9d", "#Fills"),
]


def _run(bench_loader, bench_name, team):
    bench = bench_loader(bench_name)
    entry = run_team(bench, team, trace_memory=True)
    _results.setdefault(bench_name, {})[team] = entry
    return entry


@pytest.mark.parametrize("bench_name", _BENCHES)
@pytest.mark.parametrize("team", list(TEAMS))
def test_table3_run(benchmark, benchmarks_cache, bench_name, team):
    entry = benchmark.pedantic(
        _run, args=(benchmarks_cache, bench_name, team), rounds=1, iterations=1
    )
    assert entry.num_fills > 0
    assert 0.0 <= entry.card.total <= 1.0


def test_table3_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert _results, "run the table3 matrix first"
    table = TableArtifact("table3", _COLUMNS)
    for bench_name, teams in _results.items():
        for team, entry in teams.items():
            table.add_row(
                design=bench_name,
                team=team,
                num_fills=entry.num_fills,
                **{k: round(v, 6) for k, v in entry.row().items()},
            )
    q_gain, s_gain = headline(_results)
    table.note(
        f"headline: ours vs best baseline: quality {q_gain * 100:+.1f}%, "
        f"score {s_gain * 100:+.1f}%   (paper Table 3: +13%, +10%)"
    )
    emit(results_dir, table)
    # Shape assertions (the paper's claims, not its absolute numbers):
    for bench_name, teams in _results.items():
        ours = teams["ours"]
        for name, entry in teams.items():
            if name == "ours":
                continue
            assert ours.card.quality >= entry.card.quality, (
                f"ours loses quality to {name} on {bench_name}"
            )
            assert ours.card.total >= entry.card.total, (
                f"ours loses score to {name} on {bench_name}"
            )
    assert q_gain > 0.0
    assert s_gain > 0.0
