"""Shared fixtures for the benchmark harness.

Every table and figure of the paper's evaluation (see DESIGN.md §4) has
one ``bench_*.py`` module here; run them with::

    pytest benchmarks/ --benchmark-only

Reproduced tables are printed to stdout *and* written under
``benchmarks/results/`` so a full run leaves a reviewable record.

Set ``REPRO_BENCH_QUICK=1`` to skip the large ``m`` benchmark (the full
Table 3 run takes several minutes on it).
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

RESULTS_DIR = Path(__file__).parent / "results"

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def benchmarks_cache():
    """Loaded suite benchmarks, generated once per session."""
    from repro.bench import load_benchmark

    cache = {}

    def load(name):
        if name not in cache:
            cache[name] = load_benchmark(name)
        return cache[name]

    return load


def emit(results_dir: Path, table) -> None:
    """Print and persist a reproduced table (a bench TableArtifact).

    Writes two renderings of the *same* record: ``<name>.txt`` is
    ``table.render()`` and ``BENCH_<name>.json`` is ``table.to_dict()``
    with the git sha stamped in — the machine-readable trajectory entry
    the tracker and CI consume.
    """
    text = table.render()
    print(f"\n===== {table.name} =====\n" + text)
    (results_dir / f"{table.name}.txt").write_text(text + "\n")
    table.write(results_dir)
