"""Ablation A6: geometric fill vs tile-based fill — fill count and bytes.

The paper's motivating observation (§1): "traditional tile-based method
for fill insertion usually results in very large number of fills, which
increases the cost of layout storage."  This bench quantifies it on the
scaled suite: number of fills and solution GDSII bytes for the
geometric engine vs the tile-LP and greedy baselines.
"""

import pytest
from conftest import emit

from repro.baselines import greedy_fill, tile_lp_fill
from repro.bench import Column, TableArtifact
from repro.core import DummyFillEngine, FillConfig
from repro.gdsii import measure_file_size

_rows = {}


def _ours(bench):
    layout = bench.fresh_layout()
    DummyFillEngine(FillConfig(eta=0.2), weights=bench.weights).run(
        layout, bench.grid
    )
    return layout


def _tile(bench):
    layout = bench.fresh_layout()
    tile_lp_fill(layout, bench.grid, r=4)
    return layout


def _greedy(bench):
    layout = bench.fresh_layout()
    greedy_fill(layout, bench.grid)
    return layout


_FILLERS = {"ours": _ours, "tile-lp": _tile, "greedy": _greedy}


@pytest.mark.parametrize("filler", list(_FILLERS))
def test_filecount(benchmark, benchmarks_cache, filler):
    bench = benchmarks_cache("s")
    layout = benchmark.pedantic(
        _FILLERS[filler], args=(bench,), rounds=1, iterations=1
    )
    _rows[filler] = (layout.num_fills, measure_file_size(layout))
    assert layout.num_fills > 0


def test_filecount_report(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    table = TableArtifact(
        "ablation_filecount",
        [
            Column("filler", "<10"),
            Column("num_fills", ">9d", "#fills"),
            Column("gds_bytes", ">13d", "GDSII bytes"),
        ],
    )
    for filler in _FILLERS:
        fills, size = _rows[filler]
        table.add_row(filler=filler, num_fills=fills, gds_bytes=size)
    ours_fills = _rows["ours"][0]
    tile_fills = _rows["tile-lp"][0]
    table.note(
        f"tile-LP emits {tile_fills / ours_fills:.1f}x more fills than the "
        "geometric engine (the paper's storage argument, §1)"
    )
    emit(results_dir, table)
    assert tile_fills > 2 * ours_fills
