"""Design-rule deck and checker for dummy fills.

The sizing problem (paper Eqn. (9)) is constrained by three DRC rules,
named as in Table 1:

* ``sm`` — minimum spacing between any two shapes on a layer,
* ``wm`` — minimum width (both dimensions) of a fill,
* ``am`` — minimum area of a fill.

The checker here validates a fill solution against those rules — both
fill-to-fill and fill-to-wire spacing — and is used by the integration
tests to certify that the engine's output is DRC-clean, the property the
paper's "fix spacing rule violations" step (§3.3.1) guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..geometry import GridIndex, Rect

__all__ = ["DrcRules", "DrcViolation", "check_fills"]


@dataclass(frozen=True)
class DrcRules:
    """Fill design rules (Table 1: ``sm``, ``wm``, ``am``).

    ``max_fill_width``/``max_fill_height`` bound candidate fill sizes;
    foundry decks cap fill dimensions to limit the metal-slotting and
    stress impact of very large dummies, and the cap also controls the
    granularity of the candidate grid (§3.2).
    """

    min_spacing: int = 10
    min_width: int = 10
    min_area: int = 100
    max_fill_width: int = 500
    max_fill_height: int = 500

    def __post_init__(self) -> None:
        if self.min_spacing <= 0 or self.min_width <= 0 or self.min_area <= 0:
            raise ValueError("DRC rules must be positive")
        if self.min_width * self.min_width > self.min_area * 4:
            # A deck where min_area is unreachable at min_width x min_width
            # times a small aspect factor is almost certainly a typo.
            raise ValueError(
                "min_area is implausibly small relative to min_width"
            )
        if (
            self.max_fill_width < self.min_width
            or self.max_fill_height < self.min_width
        ):
            raise ValueError("max fill dimensions must admit min_width")

    def min_width_for_height(self, height: int) -> int:
        """Smallest legal width at a fixed height — Eqn. (12).

        ``w >= max(wm, am / h)`` merged from the min-width (9e) and
        min-area (9f) constraints once the orthogonal direction is
        frozen, rounded up to the integer grid.
        """
        if height <= 0:
            raise ValueError("height must be positive")
        return max(self.min_width, -(-self.min_area // height))

    def is_legal_fill(self, rect: Rect) -> bool:
        """Width/area legality of a single fill (spacing checked pairwise)."""
        return (
            rect.width >= self.min_width
            and rect.height >= self.min_width
            and rect.area >= self.min_area
            and rect.width <= self.max_fill_width
            and rect.height <= self.max_fill_height
        )


@dataclass(frozen=True)
class DrcViolation:
    """One rule violation: which rule, the offending shape(s), a measure."""

    rule: str  # "min_width" | "min_area" | "min_spacing" | "max_size"
    shape: Rect
    other: Optional[Rect] = None  # spacing violations only
    measured: float = 0.0
    required: float = 0.0

    def __str__(self) -> str:
        if self.other is not None:
            return (
                f"{self.rule}: {self.shape} vs {self.other} "
                f"(measured {self.measured}, required {self.required})"
            )
        return (
            f"{self.rule}: {self.shape} "
            f"(measured {self.measured}, required {self.required})"
        )


def check_fills(
    fills: Sequence[Rect],
    wires: Sequence[Rect],
    rules: DrcRules,
    *,
    check_spacing_to_wires: bool = True,
) -> List[DrcViolation]:
    """Check a fill solution against the rule deck.

    Returns the (possibly empty) list of violations.  Spacing is the
    Euclidean gap between closed boxes, matching ``e(i, j)`` of Table 1;
    overlapping same-layer shapes violate spacing with measure 0.
    """
    violations: List[DrcViolation] = []
    for f in fills:
        if f.width < rules.min_width:
            violations.append(
                DrcViolation("min_width", f, measured=f.width, required=rules.min_width)
            )
        if f.height < rules.min_width:
            violations.append(
                DrcViolation("min_width", f, measured=f.height, required=rules.min_width)
            )
        if f.area < rules.min_area:
            violations.append(
                DrcViolation("min_area", f, measured=f.area, required=rules.min_area)
            )
        if f.width > rules.max_fill_width or f.height > rules.max_fill_height:
            violations.append(
                DrcViolation(
                    "max_size",
                    f,
                    measured=max(f.width, f.height),
                    required=max(rules.max_fill_width, rules.max_fill_height),
                )
            )

    cell = max(rules.min_spacing * 4, rules.max_fill_width, 64)
    index: GridIndex[int] = GridIndex(cell)
    for i, f in enumerate(fills):
        index.insert(f, i)
    reported = set()
    for i, f in enumerate(fills):
        for rect, j in index.query_within(f, rules.min_spacing):
            if j <= i:
                continue
            gap = f.euclidean_gap(rect)
            if gap < rules.min_spacing:
                key = (i, j)
                if key not in reported:
                    reported.add(key)
                    violations.append(
                        DrcViolation(
                            "min_spacing",
                            f,
                            other=rect,
                            measured=gap,
                            required=rules.min_spacing,
                        )
                    )
    if check_spacing_to_wires and wires:
        wire_index: GridIndex[int] = GridIndex(cell)
        for j, w in enumerate(wires):
            wire_index.insert(w, j)
        for i, f in enumerate(fills):
            for rect, j in wire_index.query_within(f, rules.min_spacing):
                gap = f.euclidean_gap(rect)
                if gap < rules.min_spacing:
                    violations.append(
                        DrcViolation(
                            "min_spacing",
                            f,
                            other=rect,
                            measured=gap,
                            required=rules.min_spacing,
                        )
                    )
    return violations
