"""Spill-to-disk spatial bucketing for the out-of-core fill pipeline.

The streaming reader (:mod:`repro.gdsii.stream`) hands shapes over one
at a time; the engine wants them grouped by locality so each
window-band can be processed with only its own geometry resident.
This module is the disk-backed middle: shapes are routed into
per-band chunk files keyed by the :class:`~repro.layout.WindowGrid`'s
column dissection, written through small append buffers, and read back
band by band as fixed-size binary records.

* :class:`BandPlan` — contiguous window-column bands, partitioned by
  the same rule as :func:`repro.parallel.shard_bounds` so band
  boundaries line up with the shard executor's work split.
* :class:`ShapeSpill` — halo-aware routing: a shape lands in every
  band whose x-range it touches within the query halo, so band-local
  spatial indexes answer every in-band query exactly as a global
  index would.
* :class:`LayerSpool` — order-preserving per-(layer, datatype) spools
  for pass-through geometry (input wires and kept fills) that must
  re-emit in input order.

All record framing is fixed-size big-endian (:data:`SHAPE_RECORD`,
:data:`RECT_RECORD`); a trailing partial record raises a
``ValueError`` naming the file, mirroring the reader-side error
discipline of the stream parsers.
"""

from __future__ import annotations

import os
import struct
from typing import BinaryIO, Dict, Iterator, List, Optional, Tuple

from ..geometry import Rect
from ..parallel.shard import shard_bounds
from .window import WindowGrid

__all__ = ["BandPlan", "LayerSpool", "ShapeSpill"]

#: (layer, datatype, xl, yl, xh, yh) — one routed shape.
SHAPE_RECORD = struct.Struct(">iiiiii")
#: (xl, yl, xh, yh) — one spooled rectangle.
RECT_RECORD = struct.Struct(">iiii")

#: records buffered per band/spool before a chunk write
DEFAULT_FLUSH_RECORDS = 4096

#: file-read granularity, in records
_READ_RECORDS = 4096


def _read_records(
    path: str, record: struct.Struct
) -> Iterator[Tuple[int, ...]]:
    """Yield fixed-size records from ``path``; loud on a partial tail."""
    block = record.size * _READ_RECORDS
    with open(path, "rb") as handle:
        carry = b""
        while True:
            data = handle.read(block)
            if not data:
                break
            data = carry + data
            whole = len(data) - len(data) % record.size
            for values in record.iter_unpack(data[:whole]):
                yield values
            carry = data[whole:]
        if carry:
            raise ValueError(
                f"corrupt spill chunk {path}: {len(carry)} trailing bytes "
                f"(record size {record.size})"
            )


class BandPlan:
    """Contiguous window-column bands over a :class:`WindowGrid`.

    A band is a run of whole window columns; its rectangle spans the
    full die height.  Bands partition the grid's column-major window
    order into contiguous ranges, so concatenating per-band results in
    ascending band order reproduces the grid-order result exactly —
    the same invariant :func:`repro.parallel.shard_items` gives the
    sharded engine stages.
    """

    def __init__(self, grid: WindowGrid, num_bands: int):
        if num_bands < 1:
            raise ValueError("num_bands must be at least 1")
        self.grid = grid
        self._bounds: List[Tuple[int, int]] = shard_bounds(
            grid.cols, num_bands
        )
        # Band x-ranges: [window(c0).xl, window(c1-1).xh]
        self._x_ranges: List[Tuple[int, int]] = [
            (grid.window(c0, 0).xl, grid.window(c1 - 1, 0).xh)
            for c0, c1 in self._bounds
        ]

    @property
    def num_bands(self) -> int:
        return len(self._bounds)

    def columns(self, band: int) -> range:
        """Window columns of ``band``, in grid order."""
        c0, c1 = self._bounds[band]
        return range(c0, c1)

    def rect(self, band: int) -> Rect:
        """The band's rectangle: its column span x the full die height."""
        xl, xh = self._x_ranges[band]
        return Rect(xl, self.grid.die.yl, xh, self.grid.die.yh)

    def bands_touching(self, rect: Rect, halo: int = 0) -> List[int]:
        """Bands whose x-range the closed box of ``rect`` + ``halo`` meets.

        Closed-box contact (not positive overlap): a shape exactly
        ``halo`` away can still decide a spacing query, so routing
        must over-approximate, never under.
        """
        lo = rect.xl - halo
        hi = rect.xh + halo
        return [
            band
            for band, (xl, xh) in enumerate(self._x_ranges)
            if lo <= xh and hi >= xl
        ]

    def band_of_column(self, col: int) -> int:
        """The band owning window column ``col``."""
        for band, (c0, c1) in enumerate(self._bounds):
            if c0 <= col < c1:
                return band
        raise ValueError(f"column {col} outside the {self.grid.cols}-column grid")

    def band_of_x(self, x: int) -> int:
        """The band owning coordinate ``x`` (clamped to the die)."""
        for band, (xl, xh) in enumerate(self._x_ranges):
            if x < xh:
                return band
        return self.num_bands - 1


class ShapeSpill:
    """Per-band shape chunk files with halo routing.

    Shapes append through small in-memory buffers; each buffer flush
    is one *chunk* write.  ``bytes_spilled``/``records``/``chunks``
    feed the ``stream.*`` observability counters.
    """

    def __init__(
        self,
        plan: BandPlan,
        directory: str,
        name: str,
        *,
        flush_records: int = DEFAULT_FLUSH_RECORDS,
    ):
        if flush_records < 1:
            raise ValueError("flush_records must be at least 1")
        self.plan = plan
        self._paths: List[str] = [
            os.path.join(directory, f"{name}-band{band:04d}.bin")
            for band in range(plan.num_bands)
        ]
        self._buffers: List[List[bytes]] = [[] for _ in self._paths]
        self._handles: List[Optional[BinaryIO]] = [None] * len(self._paths)
        self._flush_records = flush_records
        self._finished = False
        self.bytes_spilled = 0
        self.records = 0
        self.chunks = 0

    def _flush(self, band: int) -> None:
        buffer = self._buffers[band]
        if not buffer:
            return
        handle = self._handles[band]
        if handle is None:
            handle = open(self._paths[band], "wb")
            self._handles[band] = handle
        data = b"".join(buffer)
        handle.write(data)
        buffer.clear()
        self.bytes_spilled += len(data)
        self.chunks += 1

    def add(self, band: int, layer: int, datatype: int, rect: Rect) -> None:
        """Append one shape to one band."""
        if self._finished:
            raise ValueError("spill is finished")
        self._buffers[band].append(
            SHAPE_RECORD.pack(layer, datatype, rect.xl, rect.yl, rect.xh, rect.yh)
        )
        self.records += 1
        if len(self._buffers[band]) >= self._flush_records:
            self._flush(band)

    def route(
        self, layer: int, datatype: int, rect: Rect, halo: int
    ) -> List[int]:
        """Append the shape to every band it can influence within ``halo``."""
        bands = self.plan.bands_touching(rect, halo)
        for band in bands:
            self.add(band, layer, datatype, rect)
        return bands

    def finish(self) -> None:
        """Flush buffers and close handles; the spill becomes read-only."""
        if self._finished:
            return
        for band in range(len(self._paths)):
            self._flush(band)
            handle = self._handles[band]
            if handle is not None:
                handle.close()
                self._handles[band] = None
        self._finished = True

    def read(self, band: int) -> Iterator[Tuple[int, int, Rect]]:
        """Yield ``(layer, datatype, rect)`` of ``band`` in spill order."""
        if not self._finished:
            raise ValueError("spill must be finished before reading")
        path = self._paths[band]
        if not os.path.exists(path):
            return
        for layer, datatype, xl, yl, xh, yh in _read_records(
            path, SHAPE_RECORD
        ):
            yield layer, datatype, Rect(xl, yl, xh, yh)


class LayerSpool:
    """Order-preserving per-(layer, datatype) rectangle spools.

    The write phase re-emits input wires and surviving fills in their
    original order; spooling them to disk during the scan pass keeps
    the pass-through geometry out of memory without disturbing that
    order.
    """

    def __init__(
        self,
        directory: str,
        name: str,
        *,
        flush_records: int = DEFAULT_FLUSH_RECORDS,
    ):
        if flush_records < 1:
            raise ValueError("flush_records must be at least 1")
        self._directory = directory
        self._name = name
        self._flush_records = flush_records
        self._buffers: Dict[Tuple[int, int], List[bytes]] = {}
        self._handles: Dict[Tuple[int, int], BinaryIO] = {}
        self._counts: Dict[Tuple[int, int], int] = {}
        self._finished = False
        self.bytes_spilled = 0
        self.chunks = 0

    def _path(self, key: Tuple[int, int]) -> str:
        layer, datatype = key
        return os.path.join(
            self._directory, f"{self._name}-l{layer:04d}-d{datatype:02d}.bin"
        )

    def _flush(self, key: Tuple[int, int]) -> None:
        buffer = self._buffers.get(key)
        if not buffer:
            return
        handle = self._handles.get(key)
        if handle is None:
            handle = open(self._path(key), "wb")
            self._handles[key] = handle
        data = b"".join(buffer)
        handle.write(data)
        buffer.clear()
        self.bytes_spilled += len(data)
        self.chunks += 1

    def add(self, layer: int, datatype: int, rect: Rect) -> None:
        if self._finished:
            raise ValueError("spool is finished")
        key = (layer, datatype)
        buffer = self._buffers.setdefault(key, [])
        buffer.append(RECT_RECORD.pack(rect.xl, rect.yl, rect.xh, rect.yh))
        self._counts[key] = self._counts.get(key, 0) + 1
        if len(buffer) >= self._flush_records:
            self._flush(key)

    def count(self, layer: int, datatype: int) -> int:
        return self._counts.get((layer, datatype), 0)

    def keys(self) -> List[Tuple[int, int]]:
        """Spooled (layer, datatype) keys, sorted."""
        return sorted(self._counts)

    def finish(self) -> None:
        if self._finished:
            return
        for key in sorted(self._buffers):
            self._flush(key)
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()
        self._finished = True

    def read(self, layer: int, datatype: int) -> Iterator[Rect]:
        """Yield the key's rectangles in the order they were added."""
        if not self._finished:
            raise ValueError("spool must be finished before reading")
        key = (layer, datatype)
        if key not in self._counts:
            return
        for xl, yl, xh, yh in _read_records(self._path(key), RECT_RECORD):
            yield Rect(xl, yl, xh, yh)
