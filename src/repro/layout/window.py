"""Fixed-dissection window grid (paper Figs. 1 and 2(b)).

Density analysis divides the die into ``N x M`` square windows — N
columns by M rows, matching the index convention of Eqn. (1) where the
outer sum runs over columns ``i`` and the inner over rows ``j``.  All
density metrics (variation, line hotspots, outlier hotspots) are
computed per window on this grid.

The grid also supports the finer ``r x r`` tile sub-dissection of Fig. 1
used by the tile-based baseline fillers (refs. [4–6]).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..geometry import Rect

__all__ = ["WindowGrid"]


class WindowGrid:
    """Dissection of a die area into ``cols x rows`` windows.

    The die is split evenly; when the die dimensions are not divisible
    by the window count, the rightmost column / topmost row absorbs the
    remainder so the union of windows is exactly the die.  (Contest
    dies are sized to divide evenly; the remainder handling keeps the
    grid total-area-exact for arbitrary synthetic layouts.)
    """

    def __init__(self, die: Rect, cols: int, rows: int):
        if cols < 1 or rows < 1:
            raise ValueError("window grid needs at least 1x1 windows")
        if die.width < cols or die.height < rows:
            raise ValueError("die too small for the requested dissection")
        self.die = die
        self.cols = cols
        self.rows = rows
        self._wx = die.width // cols
        self._wy = die.height // rows

    @classmethod
    def with_window_size(cls, die: Rect, window: int) -> "WindowGrid":
        """Grid from a target window edge length ``w`` (the ``w x w``
        windows of Fig. 1); the die must be divisible by ``w``."""
        if window <= 0:
            raise ValueError("window size must be positive")
        if die.width % window or die.height % window:
            raise ValueError("die dimensions must be multiples of the window size")
        return cls(die, die.width // window, die.height // window)

    # ------------------------------------------------------------------
    @property
    def num_windows(self) -> int:
        return self.cols * self.rows

    @property
    def window_width(self) -> int:
        """Nominal window width (rightmost column may be wider)."""
        return self._wx

    @property
    def window_height(self) -> int:
        """Nominal window height (topmost row may be taller)."""
        return self._wy

    def window(self, i: int, j: int) -> Rect:
        """Window at column ``i``, row ``j`` (0-based)."""
        if not (0 <= i < self.cols and 0 <= j < self.rows):
            raise IndexError(f"window ({i},{j}) outside {self.cols}x{self.rows} grid")
        xl = self.die.xl + i * self._wx
        yl = self.die.yl + j * self._wy
        xh = self.die.xl + (i + 1) * self._wx if i < self.cols - 1 else self.die.xh
        yh = self.die.yl + (j + 1) * self._wy if j < self.rows - 1 else self.die.yh
        return Rect(xl, yl, xh, yh)

    def window_area(self, i: int, j: int) -> int:
        """Area ``aw`` of window (i, j) — Table 1."""
        return self.window(i, j).area

    def column_widths(self) -> List[int]:
        """Width of every window column (the last absorbs the remainder)."""
        widths = [self._wx] * self.cols
        widths[-1] = self.die.width - (self.cols - 1) * self._wx
        return widths

    def row_heights(self) -> List[int]:
        """Height of every window row (the last absorbs the remainder)."""
        heights = [self._wy] * self.rows
        heights[-1] = self.die.height - (self.rows - 1) * self._wy
        return heights

    def __iter__(self) -> Iterator[Tuple[int, int, Rect]]:
        """Iterate ``(i, j, window_rect)`` column-major (Eqn. (1) order)."""
        for i in range(self.cols):
            for j in range(self.rows):
                yield i, j, self.window(i, j)

    def locate(self, x: int, y: int) -> Tuple[int, int]:
        """Window indices containing point ``(x, y)``."""
        if not self.die.contains_point(x, y):
            raise ValueError(f"point ({x},{y}) outside the die {self.die}")
        i = min((x - self.die.xl) // self._wx, self.cols - 1)
        j = min((y - self.die.yl) // self._wy, self.rows - 1)
        return int(i), int(j)

    def windows_touching(self, rect: Rect) -> List[Tuple[int, int]]:
        """Indices of all windows a rectangle overlaps (positive area)."""
        clipped = rect.intersection(self.die)
        if clipped is None:
            return []
        i0 = min((clipped.xl - self.die.xl) // self._wx, self.cols - 1)
        j0 = min((clipped.yl - self.die.yl) // self._wy, self.rows - 1)
        i1 = min((clipped.xh - 1 - self.die.xl) // self._wx, self.cols - 1)
        j1 = min((clipped.yh - 1 - self.die.yl) // self._wy, self.rows - 1)
        out = []
        for i in range(int(i0), int(i1) + 1):
            for j in range(int(j0), int(j1) + 1):
                if rect.intersection_area(self.window(i, j)) > 0:
                    out.append((i, j))
        return out

    def tiles(self, i: int, j: int, r: int) -> List[Rect]:
        """Sub-dissect window (i, j) into ``r x r`` tiles (Fig. 1).

        Used by the tile-based baselines; the window edge must be
        divisible by ``r``.
        """
        win = self.window(i, j)
        if win.width % r or win.height % r:
            raise ValueError("window is not divisible into r x r tiles")
        tw, th = win.width // r, win.height // r
        out = []
        for a in range(r):
            for b in range(r):
                out.append(
                    Rect(
                        win.xl + a * tw,
                        win.yl + b * th,
                        win.xl + (a + 1) * tw,
                        win.yl + (b + 1) * th,
                    )
                )
        return out

    def __repr__(self) -> str:
        return f"WindowGrid({self.cols}x{self.rows} over {self.die})"
