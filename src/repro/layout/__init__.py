"""Layout model: layers, DRC rules, window dissection."""

from .drc import DrcRules, DrcViolation, check_fills
from .layer import Layer
from .layout import Layout
from .spill import BandPlan, LayerSpool, ShapeSpill
from .window import WindowGrid

__all__ = [
    "DrcRules",
    "DrcViolation",
    "check_fills",
    "Layer",
    "Layout",
    "BandPlan",
    "LayerSpool",
    "ShapeSpill",
    "WindowGrid",
]
