"""Layout model: layers, DRC rules, window dissection."""

from .drc import DrcRules, DrcViolation, check_fills
from .layer import Layer
from .layout import Layout
from .window import WindowGrid

__all__ = [
    "DrcRules",
    "DrcViolation",
    "check_fills",
    "Layer",
    "Layout",
    "WindowGrid",
]
