"""A single routing layer: signal wires plus inserted dummy fills.

Layers are numbered from 1 upward, as in Alg. 1 of the paper, where the
odd/even distinction drives candidate generation order.  Wires are the
immutable input geometry; fills are added by the insertion engine and
kept separate so overlay and density can be attributed correctly
(overlay counts fill-vs-anything, per §2.1).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..geometry import Rect, RectSet, RectilinearPolygon, polygon_to_rects

__all__ = ["Layer"]


class Layer:
    """Shape container for one metal layer."""

    def __init__(self, number: int, name: Optional[str] = None):
        if number < 1:
            raise ValueError("layer numbers start at 1 (Alg. 1 convention)")
        self.number = number
        self.name = name if name is not None else f"metal{number}"
        self._wires: List[Rect] = []
        self._fills: List[Rect] = []

    # ------------------------------------------------------------------
    @property
    def wires(self) -> List[Rect]:
        """Signal wire rectangles (a copy)."""
        return list(self._wires)

    @property
    def fills(self) -> List[Rect]:
        """Dummy fill rectangles inserted so far (a copy)."""
        return list(self._fills)

    @property
    def shapes(self) -> List[Rect]:
        """Wires and fills together — the full metal coverage."""
        return self._wires + self._fills

    @property
    def num_wires(self) -> int:
        return len(self._wires)

    @property
    def num_fills(self) -> int:
        return len(self._fills)

    @property
    def is_odd(self) -> bool:
        """Alg. 1 processes odd-numbered layers first."""
        return self.number % 2 == 1

    # ------------------------------------------------------------------
    def add_wire(self, rect: Rect) -> None:
        """Add a signal wire rectangle."""
        if rect.is_degenerate:
            raise ValueError(f"degenerate wire rectangle {rect}")
        self._wires.append(rect)

    def add_wires(self, rects: Iterable[Rect]) -> None:
        for r in rects:
            self.add_wire(r)

    def add_wire_polygon(self, polygon: RectilinearPolygon) -> List[Rect]:
        """Decompose a wire polygon (Gourley–Green) and add the pieces.

        Returns the rectangles actually added — the "convert polygons to
        rectangles" step of Fig. 3.
        """
        rects = polygon_to_rects(polygon)
        self.add_wires(rects)
        return rects

    def add_fill(self, rect: Rect) -> None:
        """Add one dummy fill rectangle."""
        if rect.is_degenerate:
            raise ValueError(f"degenerate fill rectangle {rect}")
        self._fills.append(rect)

    def add_fills(self, rects: Iterable[Rect]) -> None:
        for r in rects:
            self.add_fill(r)

    def clear_fills(self) -> None:
        """Remove all fills (re-running the engine on a fresh slate)."""
        self._fills.clear()

    def filter_wires(self, predicate: Callable[[Rect], bool]) -> int:
        """Keep only wires where ``predicate(rect)`` is true.

        Returns the number of wires removed.  Used by the benchmark
        generator to carve keep-out regions out of a wire population.
        """
        before = len(self._wires)
        self._wires = [w for w in self._wires if predicate(w)]
        return before - len(self._wires)

    # ------------------------------------------------------------------
    def wire_region(self) -> RectSet:
        """Canonical covered region of the wires."""
        return RectSet(self._wires)

    def metal_region(self) -> RectSet:
        """Canonical covered region of wires plus fills."""
        return RectSet(self.shapes)

    def wire_area_in(self, window: Rect) -> int:
        """Exact wire area inside ``window`` (overlaps de-duplicated)."""
        clipped = [
            c for w in self._wires if (c := w.intersection(window)) is not None
        ]
        return RectSet(clipped).area

    def fill_area_in(self, window: Rect) -> int:
        """Exact fill area inside ``window``.

        Fills are kept pairwise disjoint by construction, so this is a
        plain clipped sum.
        """
        total = 0
        for f in self._fills:
            total += f.intersection_area(window)
        return total

    def __repr__(self) -> str:
        return (
            f"Layer({self.number}, {self.name!r}, "
            f"{len(self._wires)} wires, {len(self._fills)} fills)"
        )
