"""Multi-layer layout container.

The top-level input/output object of the framework: a die area, a stack
of :class:`~repro.layout.layer.Layer` objects, and the DRC rule deck the
fills must obey.  Adjacent layer pairs ``(l, l+1)`` define the overlay
relation of paper §2.1.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..geometry import Rect
from .drc import DrcRules, DrcViolation, check_fills
from .layer import Layer

__all__ = ["Layout"]


class Layout:
    """A die with a stack of metal layers.

    Layers are created on demand with :meth:`layer`; numbering starts at
    1 and overlay is evaluated between consecutive numbers, matching
    Alg. 1 and Fig. 2(a).
    """

    def __init__(self, die: Rect, num_layers: int, rules: Optional[DrcRules] = None,
                 name: str = "layout"):
        if num_layers < 1:
            raise ValueError("a layout needs at least one layer")
        self.die = die
        self.name = name
        self.rules = rules if rules is not None else DrcRules()
        self._layers: Dict[int, Layer] = {
            n: Layer(n) for n in range(1, num_layers + 1)
        }

    # ------------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self._layers)

    @property
    def layer_numbers(self) -> List[int]:
        return sorted(self._layers)

    @property
    def layers(self) -> List[Layer]:
        """Layers in stack order (bottom first)."""
        return [self._layers[n] for n in self.layer_numbers]

    def layer(self, number: int) -> Layer:
        """The layer with the given number (1-based)."""
        try:
            return self._layers[number]
        except KeyError:
            raise KeyError(
                f"layer {number} not in layout (has {self.layer_numbers})"
            ) from None

    def adjacent_pairs(self) -> Iterator[Tuple[Layer, Layer]]:
        """Consecutive layer pairs ``(l, l+1)`` — the overlay relation."""
        numbers = self.layer_numbers
        for lo, hi in zip(numbers, numbers[1:]):
            if hi == lo + 1:
                yield self._layers[lo], self._layers[hi]

    # ------------------------------------------------------------------
    @property
    def num_wires(self) -> int:
        return sum(layer.num_wires for layer in self._layers.values())

    @property
    def num_fills(self) -> int:
        return sum(layer.num_fills for layer in self._layers.values())

    @property
    def num_shapes(self) -> int:
        return self.num_wires + self.num_fills

    def clear_fills(self) -> None:
        """Strip all fills from every layer."""
        for layer in self._layers.values():
            layer.clear_fills()

    def validate_wires_in_die(self) -> List[Rect]:
        """Wires escaping the die area (should be empty for sane input)."""
        out = []
        for layer in self._layers.values():
            for w in layer.wires:
                if not self.die.contains(w):
                    out.append(w)
        return out

    def check_drc(self, *, check_spacing_to_wires: bool = True) -> List[DrcViolation]:
        """DRC-check the fills on every layer against the rule deck."""
        violations: List[DrcViolation] = []
        for layer in self.layers:
            violations.extend(
                check_fills(
                    layer.fills,
                    layer.wires,
                    self.rules,
                    check_spacing_to_wires=check_spacing_to_wires,
                )
            )
        return violations

    def copy_without_fills(self) -> "Layout":
        """A fresh layout with the same die, rules and wires, no fills."""
        out = Layout(self.die, self.num_layers, self.rules, name=self.name)
        for n in self.layer_numbers:
            out.layer(n).add_wires(self._layers[n].wires)
            out.layer(n).name = self._layers[n].name
        return out

    def copy(self) -> "Layout":
        """A fresh, independent layout with the same shapes.

        Wires and fills keep their per-layer order, so derived state
        (spatial indexes, density analyses, GDSII bytes) of the copy is
        identical to the original's.  Rects are immutable; only the
        containers are duplicated.
        """
        out = self.copy_without_fills()
        for n in self.layer_numbers:
            out.layer(n).add_fills(self._layers[n].fills)
        return out

    def __repr__(self) -> str:
        return (
            f"Layout({self.name!r}, die={self.die}, layers={self.num_layers}, "
            f"wires={self.num_wires}, fills={self.num_fills})"
        )
