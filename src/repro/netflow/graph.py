"""Minimum-cost-flow network model.

The paper offloads its per-window sizing LPs to LEMON's min-cost-flow
solvers (§3.3.3, ref. [21]).  This package is the pure-Python
substitute: :class:`FlowNetwork` models a directed transshipment
network with node supplies, arc capacities and arc costs, and the
solver modules (:mod:`~repro.netflow.ssp`,
:mod:`~repro.netflow.network_simplex`) compute optimal flows and the
node potentials (LP duals) that the dual-MCF transformation consumes.

Conventions:

* node supply > 0 means the node injects flow, < 0 absorbs it; total
  supply must be zero for feasibility,
* ``capacity=None`` means an uncapacitated arc,
* costs may be negative; negative-cost cycles of uncapacitated arcs
  make the problem unbounded (detected by the solvers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Arc", "FlowNetwork", "FlowResult", "InfeasibleFlowError", "UnboundedFlowError"]


class InfeasibleFlowError(Exception):
    """Raised when the supplies cannot be routed (or duals are infeasible)."""


class UnboundedFlowError(Exception):
    """Raised on a negative-cost cycle of uncapacitated arcs."""


@dataclass(frozen=True)
class Arc:
    """One directed arc ``tail -> head`` with capacity and unit cost."""

    tail: int
    head: int
    capacity: Optional[int]
    cost: int

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 0:
            raise ValueError("arc capacity must be non-negative")


class FlowNetwork:
    """A directed network for minimum-cost transshipment."""

    def __init__(self) -> None:
        self._supplies: List[int] = []
        self._arcs: List[Arc] = []
        self._names: Dict[object, int] = {}

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._supplies)

    @property
    def num_arcs(self) -> int:
        return len(self._arcs)

    @property
    def arcs(self) -> List[Arc]:
        return list(self._arcs)

    @property
    def supplies(self) -> List[int]:
        return list(self._supplies)

    @property
    def total_positive_supply(self) -> int:
        return sum(s for s in self._supplies if s > 0)

    def add_node(self, supply: int = 0, name: object = None) -> int:
        """Create a node with the given supply; returns its index."""
        idx = len(self._supplies)
        self._supplies.append(int(supply))
        if name is not None:
            if name in self._names:
                raise ValueError(f"duplicate node name {name!r}")
            self._names[name] = idx
        return idx

    def node(self, name: object) -> int:
        """Look up a node index by name."""
        return self._names[name]

    def set_supply(self, node: int, supply: int) -> None:
        self._supplies[node] = int(supply)

    def add_supply(self, node: int, delta: int) -> None:
        self._supplies[node] += int(delta)

    def add_arc(
        self, tail: int, head: int, capacity: Optional[int] = None, cost: int = 0
    ) -> int:
        """Create an arc; returns its index.  ``capacity=None`` = uncapped."""
        n = self.num_nodes
        if not (0 <= tail < n and 0 <= head < n):
            raise ValueError(f"arc ({tail},{head}) references unknown nodes")
        if tail == head:
            raise ValueError("self-loop arcs are not allowed")
        self._arcs.append(Arc(tail, head, capacity, int(cost)))
        return len(self._arcs) - 1

    def is_balanced(self) -> bool:
        """True when supplies sum to zero (necessary for feasibility)."""
        return sum(self._supplies) == 0

    def finite_capacities(self) -> List[int]:
        """Capacities with ``None`` replaced by a safe finite bound.

        An optimal flow decomposes into supply-to-demand paths (each
        carrying at most the total positive supply) plus cycles.  Any
        cost-reducing cycle must contain a capacitated arc — a negative
        cycle of purely uncapacitated arcs means the problem is
        unbounded, which the solvers reject up front — so the total
        circulating flow is bounded by the sum of finite capacities.
        Their sum plus the total supply is therefore a valid stand-in
        cap for uncapacitated arcs.
        """
        cap_sum = sum(a.capacity for a in self._arcs if a.capacity is not None)
        bound = max(1, self.total_positive_supply + cap_sum)
        return [a.capacity if a.capacity is not None else bound for a in self._arcs]

    def __repr__(self) -> str:
        return f"FlowNetwork({self.num_nodes} nodes, {self.num_arcs} arcs)"


@dataclass
class FlowResult:
    """Solution of a min-cost-flow problem.

    ``potentials`` are the LP dual values π with the convention that
    every arc with residual capacity satisfies
    ``cost + π[tail] - π[head] >= 0`` (reduced-cost optimality).
    """

    flows: List[int]
    cost: int
    potentials: List[int]

    def flow_on(self, arc_index: int) -> int:
        return self.flows[arc_index]

    def verify(self, network: FlowNetwork, *, strict: bool = True) -> bool:
        """Check feasibility and reduced-cost optimality of this result.

        Used by the tests as an independent certificate: a flow passing
        this check is optimal by LP duality, regardless of which solver
        produced it.
        """
        balance = list(network._supplies)
        caps = network.finite_capacities()
        for arc, flow, cap in zip(network.arcs, self.flows, caps):
            if flow < 0 or flow > cap:
                if strict:
                    raise AssertionError(f"flow {flow} violates capacity on {arc}")
                return False
            balance[arc.tail] -= flow
            balance[arc.head] += flow
        if any(b != 0 for b in balance):
            if strict:
                raise AssertionError(f"flow does not satisfy supplies: {balance}")
            return False
        pi = self.potentials
        for arc, flow, cap in zip(network.arcs, self.flows, caps):
            reduced = arc.cost + pi[arc.tail] - pi[arc.head]
            if flow < cap and reduced < 0:
                if strict:
                    raise AssertionError(
                        f"residual arc {arc} has negative reduced cost {reduced}"
                    )
                return False
            if flow > 0 and reduced > 0:
                if strict:
                    raise AssertionError(
                        f"used arc {arc} has positive reduced cost {reduced}"
                    )
                return False
        return True
