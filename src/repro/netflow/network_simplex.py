"""Primal network simplex for minimum-cost flow.

Second, independent LEMON substitute (ref. [21]).  LEMON's default
min-cost-flow engine is a network simplex; this module implements the
textbook primal method (Ahuja–Magnanti–Orlin [17], ch. 11):

* an artificial root with big-M artificial arcs provides the initial
  feasible spanning tree,
* pivots pick the entering arc by Dantzig's rule (most negative reduced
  cost), falling back to Bland's rule after a degeneracy budget is
  exhausted to guarantee termination,
* the leaving arc is the bottleneck of the pivot cycle.

Node potentials are recomputed from the tree after each pivot rather
than maintained incrementally — simpler, and at the per-window problem
sizes of the fill flow (hundreds of nodes) entirely adequate.  The
successive-shortest-path solver (:mod:`~repro.netflow.ssp`) is the fast
path; this solver exists as an independent implementation for
cross-checking and handles capacitated negative-cost cycles that plain
SSP cannot.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from .graph import (
    Arc,
    FlowNetwork,
    FlowResult,
    InfeasibleFlowError,
    UnboundedFlowError,
)

__all__ = ["solve_network_simplex"]

_LOWER, _TREE, _UPPER = 0, 1, 2
_INF = float("inf")


class _Simplex:
    def __init__(self, network: FlowNetwork):
        self.network = network
        self.n = network.num_nodes
        self.root = self.n
        # Arc arrays: originals first, artificials after.
        self.tail: List[int] = []
        self.head: List[int] = []
        self.cap: List[Optional[int]] = []
        self.cost: List[int] = []
        for a in network.arcs:
            self.tail.append(a.tail)
            self.head.append(a.head)
            self.cap.append(a.capacity)
            self.cost.append(a.cost)
        self.num_original = len(self.tail)
        cost_scale = sum(abs(c) for c in self.cost) + 1
        self.big_m = cost_scale * (self.n + 1)
        self.flow: List[int] = [0] * self.num_original
        self.state: List[int] = [_LOWER] * self.num_original
        # Artificial arcs: node <-> root, oriented along the supply.
        self.tree_arcs: List[int] = []
        for u, supply in enumerate(network.supplies):
            if supply >= 0:
                self.tail.append(u)
                self.head.append(self.root)
            else:
                self.tail.append(self.root)
                self.head.append(u)
            self.cap.append(None)
            self.cost.append(self.big_m)
            self.flow.append(abs(supply))
            self.state.append(_TREE)
            self.tree_arcs.append(self.num_original + u)
        self.pi: List[int] = [0] * (self.n + 1)
        self._recompute_potentials()

    # ------------------------------------------------------------------
    def _tree_adjacency(self) -> List[List[Tuple[int, int]]]:
        adj: List[List[Tuple[int, int]]] = [[] for _ in range(self.n + 1)]
        for e in self.tree_arcs:
            adj[self.tail[e]].append((self.head[e], e))
            adj[self.head[e]].append((self.tail[e], e))
        return adj

    def _recompute_potentials(self) -> None:
        """Set π so every tree arc has zero reduced cost (π[root] = 0)."""
        adj = self._tree_adjacency()
        pi = [0] * (self.n + 1)
        seen = [False] * (self.n + 1)
        queue = deque([self.root])
        seen[self.root] = True
        while queue:
            u = queue.popleft()
            for v, e in adj[u]:
                if seen[v]:
                    continue
                seen[v] = True
                if self.tail[e] == u:
                    pi[v] = pi[u] + self.cost[e]
                else:
                    pi[v] = pi[u] - self.cost[e]
                queue.append(v)
        if not all(seen):
            raise AssertionError("spanning tree is disconnected")
        self.pi = pi
        self._parents_from_tree(adj)

    def _parents_from_tree(self, adj) -> None:
        parent = [-1] * (self.n + 1)
        parent_arc = [-1] * (self.n + 1)
        depth = [0] * (self.n + 1)
        seen = [False] * (self.n + 1)
        queue = deque([self.root])
        seen[self.root] = True
        while queue:
            u = queue.popleft()
            for v, e in adj[u]:
                if seen[v]:
                    continue
                seen[v] = True
                parent[v] = u
                parent_arc[v] = e
                depth[v] = depth[u] + 1
                queue.append(v)
        self.parent = parent
        self.parent_arc = parent_arc
        self.depth = depth

    # ------------------------------------------------------------------
    def _reduced_cost(self, e: int) -> int:
        return self.cost[e] + self.pi[self.tail[e]] - self.pi[self.head[e]]

    def _entering_arc(self, bland: bool) -> Optional[int]:
        best: Optional[int] = None
        best_violation = 0
        for e in range(self.num_original):
            if self.state[e] == _TREE:
                continue
            rc = self._reduced_cost(e)
            violation = -rc if self.state[e] == _LOWER else rc
            if violation > 0:
                if bland:
                    return e
                if violation > best_violation:
                    best_violation = violation
                    best = e
        return best

    def _cycle(self, entering: int) -> List[Tuple[int, int]]:
        """The pivot cycle as (arc, direction) pairs, direction +1 when
        the arc is traversed tail->head along the flow-change direction.

        The cycle is oriented along the entering arc when it sits at its
        lower bound (flow will increase) and against it at the upper
        bound (flow will decrease).
        """
        u, v = self.tail[entering], self.head[entering]
        forward = self.state[entering] == _LOWER
        cycle: List[Tuple[int, int]] = [(entering, +1 if forward else -1)]
        # Walk both endpoints up to the common ancestor.  The flow-change
        # direction runs v -> ... -> apex -> ... -> u when the entering
        # arc is traversed u->v.
        a, b = (v, u) if forward else (u, v)
        path_a: List[Tuple[int, int]] = []
        path_b: List[Tuple[int, int]] = []
        da, db = self.depth[a], self.depth[b]
        while da > db:
            e = self.parent_arc[a]
            path_a.append((e, +1 if self.tail[e] == a else -1))
            a = self.parent[a]
            da -= 1
        while db > da:
            e = self.parent_arc[b]
            path_b.append((e, +1 if self.head[e] == b else -1))
            b = self.parent[b]
            db -= 1
        while a != b:
            e = self.parent_arc[a]
            path_a.append((e, +1 if self.tail[e] == a else -1))
            a = self.parent[a]
            e = self.parent_arc[b]
            path_b.append((e, +1 if self.head[e] == b else -1))
            b = self.parent[b]
        cycle.extend(path_a)
        cycle.extend(reversed(path_b))
        return cycle

    def _headroom(self, e: int, direction: int):
        if direction > 0:
            return _INF if self.cap[e] is None else self.cap[e] - self.flow[e]
        return self.flow[e]

    def pivot(self, entering: int) -> None:
        cycle = self._cycle(entering)
        delta = _INF
        leaving = entering
        leaving_dir = +1
        for e, direction in cycle:
            room = self._headroom(e, direction)
            if room < delta:
                delta = room
                leaving, leaving_dir = e, direction
        if delta is _INF or delta == _INF:
            raise UnboundedFlowError(
                "pivot cycle has unlimited headroom: min-cost flow unbounded"
            )
        for e, direction in cycle:
            self.flow[e] += direction * int(delta)
        if leaving == entering and self.state[entering] != _TREE:
            # The entering arc itself blocks: it swings bound-to-bound.
            self.state[entering] = _UPPER if self.state[entering] == _LOWER else _LOWER
            return
        # Replace the leaving arc by the entering arc in the tree.
        self.tree_arcs.remove(leaving)
        self.tree_arcs.append(entering)
        self.state[entering] = _TREE
        if leaving < self.num_original:
            at_upper = (
                self.cap[leaving] is not None
                and self.flow[leaving] == self.cap[leaving]
            )
            self.state[leaving] = _UPPER if at_upper else _LOWER
        else:
            self.state[leaving] = _LOWER
        self._recompute_potentials()

    def solve(self) -> FlowResult:
        if not self.network.is_balanced():
            raise InfeasibleFlowError(
                f"supplies sum to {sum(self.network.supplies)}, expected 0"
            )
        max_iters = 50 * (self.num_original + self.n + 10) ** 2
        bland_after = 10 * (self.num_original + self.n + 10)
        degenerate_run = 0
        for iteration in range(max_iters):
            entering = self._entering_arc(bland=degenerate_run > bland_after)
            if entering is None:
                break
            before = list(self.flow)
            self.pivot(entering)
            degenerate_run = degenerate_run + 1 if self.flow == before else 0
        else:
            raise RuntimeError("network simplex failed to converge")
        for e in range(self.num_original, len(self.flow)):
            if self.flow[e] != 0:
                raise InfeasibleFlowError(
                    "artificial arc carries flow: supplies cannot be routed"
                )
        flows = self.flow[: self.num_original]
        cost = sum(c * f for c, f in zip(self.cost[: self.num_original], flows))
        return FlowResult(flows=flows, cost=cost, potentials=self.pi[: self.n])


def solve_network_simplex(network: FlowNetwork) -> FlowResult:
    """Solve a min-cost transshipment problem by primal network simplex."""
    if network.num_nodes == 0:
        return FlowResult(flows=[], cost=0, potentials=[])
    return _Simplex(network).solve()
