"""Successive-shortest-path min-cost-flow solver with node potentials.

The primary LEMON substitute (paper §3.3.3, ref. [21]).  The algorithm
is the classic one (Ahuja–Magnanti–Orlin [17], ch. 9):

1. Initialise node potentials with Bellman–Ford so that every arc's
   reduced cost becomes non-negative (negative arc costs are allowed;
   a negative cycle is reported as unbounded).
2. Repeatedly pick an excess node, run Dijkstra on reduced costs to the
   nearest deficit node, update potentials by the shortest-path
   distances, and augment along the path.

Termination yields both the optimal flow and the optimal dual
potentials; the latter are what the dual-MCF transformation of
Eqns. (15)–(16) actually consumes.

Everything is exact integer arithmetic — no floating point — so the
integrality the sizing ILP requires (Eqn. (9), x ∈ Z) is automatic.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from .graph import (
    FlowNetwork,
    FlowResult,
    InfeasibleFlowError,
    UnboundedFlowError,
)

__all__ = ["solve_min_cost_flow"]

_INF = float("inf")


class _Residual:
    """Adjacency-list residual network with paired forward/backward arcs."""

    __slots__ = ("head", "cap", "cost", "adj", "first_forward")

    def __init__(self, network: FlowNetwork):
        n = network.num_nodes
        self.head: List[int] = []
        self.cap: List[int] = []
        self.cost: List[int] = []
        self.adj: List[List[int]] = [[] for _ in range(n)]
        caps = network.finite_capacities()
        self.first_forward: List[int] = []
        for arc, cap in zip(network.arcs, caps):
            self.first_forward.append(len(self.head))
            self._push(arc.tail, arc.head, cap, arc.cost)
            self._push(arc.head, arc.tail, 0, -arc.cost)

    def _push(self, tail: int, head: int, cap: int, cost: int) -> None:
        self.adj[tail].append(len(self.head))
        self.head.append(head)
        self.cap.append(cap)
        self.cost.append(cost)

    def flow_on_forward(self, arc_index: int) -> int:
        """Flow routed on original arc = residual cap of its back edge."""
        return self.cap[self.first_forward[arc_index] + 1]


def _initial_potentials(res: _Residual, n: int) -> List[int]:
    """Bellman–Ford over residual arcs with positive capacity.

    Starts from distance 0 at every node ("virtual super source"), so
    the result bounds shortest paths regardless of which excess node
    Dijkstra later starts from.  A relaxation still possible after n
    rounds certifies a negative cycle.
    """
    dist = [0] * n
    for round_no in range(n + 1):
        changed = False
        for u in range(n):
            du = dist[u]
            for e in res.adj[u]:
                if res.cap[e] > 0 and du + res.cost[e] < dist[res.head[e]]:
                    dist[res.head[e]] = du + res.cost[e]
                    changed = True
        if not changed:
            return dist
    raise UnboundedFlowError(
        "negative-cost cycle: the min-cost flow is unbounded "
        "(the corresponding differential LP is infeasible)"
    )


def _dijkstra(
    res: _Residual, pi: List[int], source: int, deficits: set
) -> Tuple[Optional[int], List[float], List[int]]:
    """Shortest reduced-cost paths from ``source``.

    Runs until the nearest deficit node is settled (early exit) and
    returns it along with distances and predecessor residual arcs.
    """
    n = len(res.adj)
    dist: List[float] = [_INF] * n
    prev_arc: List[int] = [-1] * n
    dist[source] = 0
    heap: List[Tuple[int, int]] = [(0, source)]
    settled = [False] * n
    target: Optional[int] = None
    while heap:
        d, u = heapq.heappop(heap)
        if settled[u]:
            continue
        settled[u] = True
        if u in deficits:
            target = u
            break
        for e in res.adj[u]:
            if res.cap[e] <= 0:
                continue
            v = res.head[e]
            if settled[v]:
                continue
            nd = d + res.cost[e] + pi[u] - pi[v]
            if nd < dist[v]:
                dist[v] = nd
                prev_arc[v] = e
                heapq.heappush(heap, (nd, v))
    return target, dist, prev_arc


def solve_min_cost_flow(network: FlowNetwork) -> FlowResult:
    """Solve a min-cost transshipment problem exactly.

    Raises :class:`InfeasibleFlowError` when the supplies cannot be
    routed and :class:`UnboundedFlowError` on a negative uncapacitated
    cycle.
    """
    if not network.is_balanced():
        raise InfeasibleFlowError(
            f"supplies sum to {sum(network.supplies)}, expected 0"
        )
    n = network.num_nodes
    if n == 0:
        return FlowResult(flows=[], cost=0, potentials=[])
    res = _Residual(network)
    pi = _initial_potentials(res, n)

    excess = list(network.supplies)
    excess_nodes = {u for u in range(n) if excess[u] > 0}
    deficit_nodes = {u for u in range(n) if excess[u] < 0}

    while excess_nodes:
        source = min(excess_nodes)  # deterministic choice
        target, dist, prev_arc = _dijkstra(res, pi, source, deficit_nodes)
        if target is None:
            raise InfeasibleFlowError(
                "an excess node cannot reach any deficit node"
            )
        # Potential update keeps all reduced costs non-negative.  Nodes
        # the search did not settle (including unreachable ones) shift
        # by the full target distance — shifting only the settled set
        # would break the invariant across the reachable/unreachable cut.
        dt = dist[target]
        for u in range(n):
            pi[u] += int(min(dist[u], dt))
        # Bottleneck along the augmenting path.
        push = min(excess[source], -excess[target])
        v = target
        while v != source:
            e = prev_arc[v]
            push = min(push, res.cap[e])
            v = res.head[e ^ 1]
        # Augment.
        v = target
        while v != source:
            e = prev_arc[v]
            res.cap[e] -= push
            res.cap[e ^ 1] += push
            v = res.head[e ^ 1]
        excess[source] -= push
        excess[target] += push
        if excess[source] == 0:
            excess_nodes.discard(source)
        if excess[target] == 0:
            deficit_nodes.discard(target)

    flows = [res.flow_on_forward(i) for i in range(network.num_arcs)]
    cost = sum(a.cost * f for a, f in zip(network.arcs, flows))
    return FlowResult(flows=flows, cost=cost, potentials=pi)
