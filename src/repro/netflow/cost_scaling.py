"""Cost-scaling push-relabel min-cost-flow solver (Goldberg–Tarjan).

Third, independent LEMON-style engine (LEMON [21] ships network simplex
*and* a cost-scaling solver).  The classic ε-optimality scheme:

* costs are multiplied by ``n+1`` so that ε < 1 certifies optimality of
  the integral flow,
* ε starts at the largest scaled cost magnitude and halves each phase,
* each ``refine`` phase saturates every arc with negative reduced cost,
  then discharges active (excess) nodes: *push* over admissible arcs
  (negative reduced cost, residual capacity), *relabel* (lower the
  node potential by ε plus the best admissible margin) when stuck.

Feasibility is provided by big-cost artificial arcs from every supply
node to every demand node (removed from the reported solution; any
residual artificial flow certifies infeasibility).  Negative cycles of
uncapacitated arcs are detected up front with Bellman–Ford and reported
as unbounded.

The final potentials are rescaled to integers satisfying reduced-cost
optimality for the *original* costs, so :meth:`FlowResult.verify` and
the dual-MCF recovery work unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import List

from .graph import (
    FlowNetwork,
    FlowResult,
    InfeasibleFlowError,
    UnboundedFlowError,
)

__all__ = ["solve_cost_scaling"]


class _Residual:
    """Paired-arc residual network (forward at even, backward at odd)."""

    __slots__ = ("head", "cap", "cost", "adj")

    def __init__(self, num_nodes: int) -> None:
        self.head: List[int] = []
        self.cap: List[int] = []
        self.cost: List[int] = []
        self.adj: List[List[int]] = [[] for _ in range(num_nodes)]

    def add_pair(self, tail: int, head: int, cap: int, cost: int) -> None:
        self.adj[tail].append(len(self.head))
        self.head.append(head)
        self.cap.append(cap)
        self.cost.append(cost)
        self.adj[head].append(len(self.head))
        self.head.append(tail)
        self.cap.append(0)
        self.cost.append(-cost)


def _negative_uncapped_cycle(network: FlowNetwork) -> bool:
    """Bellman–Ford over the uncapacitated arcs only."""
    n = network.num_nodes
    arcs = [a for a in network.arcs if a.capacity is None]
    if not arcs:
        return False
    dist = [0] * n
    for round_no in range(n + 1):
        changed = False
        for a in arcs:
            if dist[a.tail] + a.cost < dist[a.head]:
                dist[a.head] = dist[a.tail] + a.cost
                changed = True
        if not changed:
            return False
    return True


def solve_cost_scaling(network: FlowNetwork) -> FlowResult:
    """Solve a min-cost transshipment problem by cost scaling."""
    if not network.is_balanced():
        raise InfeasibleFlowError(
            f"supplies sum to {sum(network.supplies)}, expected 0"
        )
    n = network.num_nodes
    if n == 0:
        return FlowResult(flows=[], cost=0, potentials=[])
    if _negative_uncapped_cycle(network):
        raise UnboundedFlowError(
            "negative-cost cycle of uncapacitated arcs: unbounded"
        )

    caps = network.finite_capacities()
    scale = n + 1
    res = _Residual(n)

    num_original = network.num_arcs
    for arc, cap in zip(network.arcs, caps):
        res.add_pair(arc.tail, arc.head, cap, arc.cost * scale)

    # Artificial feasibility arcs: supply -> demand at a dominating cost.
    big = (sum(abs(a.cost) for a in network.arcs) + 1) * scale * n
    total_supply = network.total_positive_supply
    supply_nodes = [u for u, s in enumerate(network.supplies) if s > 0]
    demand_nodes = [u for u, s in enumerate(network.supplies) if s < 0]
    num_artificial = 0
    for u in supply_nodes:
        for v in demand_nodes:
            res.add_pair(u, v, total_supply, big)
            num_artificial += 1

    pi = [0] * n
    excess = list(network.supplies)

    max_cost = max((abs(c) for c in res.cost), default=0)
    epsilon = max(1, max_cost)

    def push(e: int, amount: int, tail: int) -> None:
        res.cap[e] -= amount
        res.cap[e ^ 1] += amount
        excess[tail] -= amount
        excess[res.head[e]] += amount

    while epsilon >= 1:
        # refine(epsilon): saturate negative-reduced-cost arcs ...
        for u in range(n):
            for e in res.adj[u]:
                if res.cap[e] > 0 and res.cost[e] + pi[u] - pi[res.head[e]] < 0:
                    push(e, res.cap[e], u)
        # ... then discharge active nodes.
        active = deque(u for u in range(n) if excess[u] > 0)
        guard = 0
        guard_limit = 40 * n * n * max(1, len(res.head))
        while active:
            guard += 1
            if guard > guard_limit:
                raise RuntimeError("cost-scaling failed to converge")
            u = active.popleft()
            while excess[u] > 0:
                pushed = False
                for e in res.adj[u]:
                    if res.cap[e] <= 0:
                        continue
                    v = res.head[e]
                    if res.cost[e] + pi[u] - pi[v] < 0:  # admissible
                        amount = min(excess[u], res.cap[e])
                        had_excess = excess[v] > 0
                        push(e, amount, u)
                        if excess[v] > 0 and not had_excess:
                            active.append(v)
                        pushed = True
                        if excess[u] == 0:
                            break
                if excess[u] == 0:
                    break
                if not pushed:
                    # Relabel: lower pi[u] just enough to create an
                    # admissible arc (the standard epsilon step).
                    best = None
                    for e in res.adj[u]:
                        if res.cap[e] > 0:
                            rc = res.cost[e] + pi[u] - pi[res.head[e]]
                            if best is None or rc < best:
                                best = rc
                    if best is None:
                        raise InfeasibleFlowError(
                            "active node with no outgoing residual arc"
                        )
                    pi[u] -= best + epsilon
        if epsilon == 1:
            break
        epsilon //= 2

    # Extract flows; artificial arcs must be empty.
    flows = []
    for k in range(num_original):
        flows.append(res.cap[2 * k + 1])
    art_base = 2 * num_original
    for k in range(num_artificial):
        if res.cap[art_base + 2 * k + 1] != 0:
            raise InfeasibleFlowError(
                "artificial arc carries flow: supplies cannot be routed"
            )
    cost = sum(a.cost * f for a, f in zip(network.arcs, flows))

    # Rescale potentials to the original cost domain.  eps < scale
    # guarantees floor(pi/scale) satisfies reduced-cost optimality for
    # the unscaled costs; verify() below enforces it.
    pi_int = _round_potentials(network, flows, pi, scale)
    return FlowResult(flows=flows, cost=cost, potentials=pi_int)


def _round_potentials(
    network: FlowNetwork, flows: List[int], pi: List[int], scale: int
) -> List[int]:
    """Integer potentials for the unscaled costs via one Bellman–Ford.

    1-optimality of the scaled solution implies the flow is optimal for
    the original costs; exact dual potentials are recovered by a
    shortest-path computation on the residual graph of the *original*
    costs (every residual cycle is non-negative at optimality, so
    Bellman–Ford converges).
    """
    n = network.num_nodes
    caps = network.finite_capacities()
    arcs = []  # (tail, head, cost) residual arcs at original costs
    for a, f, cap in zip(network.arcs, flows, caps):
        # An uncapacitated arc always has residual capacity in the true
        # problem, even when the solver's finite stand-in cap saturated
        # (the flow remains optimal for the uncapacitated problem, so
        # including the arc cannot create a negative cycle) — dropping
        # it would lose the corresponding dual constraint.
        if a.capacity is None or f < cap:
            arcs.append((a.tail, a.head, a.cost))
        if f > 0:
            arcs.append((a.head, a.tail, -a.cost))
    dist = [0] * n
    for _ in range(n + 1):
        changed = False
        for t, h, c in arcs:
            if dist[t] + c < dist[h]:
                dist[h] = dist[t] + c
                changed = True
        if not changed:
            break
    else:
        raise AssertionError(
            "residual graph has a negative cycle: scaled solution is "
            "not optimal (solver bug)"
        )
    return dist
