"""Reference LP solver for differential-constraint programs.

The paper's §3.3.2 solves the relaxed sizing problem with a general
ILP/LP solver before introducing the dual-MCF speed-up.  This module is
that reference path: the same :class:`~repro.netflow.dualmcf.DifferentialLP`
instance solved with ``scipy.optimize.linprog`` (HiGHS).

Because the constraint matrix of Eqn. (14) is totally unimodular and
all data are integral, the LP vertex optimum is integral — so this
"LP" solver genuinely stands in for the ILP of §3.3.2, and the
ablation benchmark A2 (DESIGN.md) compares its runtime against the
dual-MCF engine on identical instances.
"""

from __future__ import annotations


import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from .. import obs
from .dualmcf import DifferentialLP, DualMcfSolution, LPInfeasibleError

__all__ = ["solve_linprog"]


def solve_linprog(lp: DifferentialLP) -> DualMcfSolution:
    """Solve Eqn. (14) with scipy's HiGHS and round to the integer optimum."""
    n = lp.num_variables
    if n == 0:
        return DualMcfSolution(x=[], objective=0, flow_cost=0)
    obs.metrics.counter("netflow.linprog.solves").inc()
    c = np.asarray(lp.costs, dtype=np.float64)
    bounds = list(zip(lp.lowers, lp.uppers))
    if lp.constraints:
        # x_i - x_j >= b  ->  -x_i + x_j <= -b.
        rows, cols, vals, rhs = [], [], [], []
        for k, (i, j, b) in enumerate(lp.constraints):
            rows.extend((k, k))
            cols.extend((i, j))
            vals.extend((-1.0, 1.0))
            rhs.append(-float(b))
        a_ub = coo_matrix(
            (vals, (rows, cols)), shape=(len(lp.constraints), n)
        ).tocsr()
        b_ub = np.asarray(rhs)
    else:
        a_ub = None
        b_ub = None
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if result.status == 2:
        raise LPInfeasibleError("scipy reports the LP infeasible")
    if not result.success:
        raise RuntimeError(f"linprog failed: {result.message}")
    x = [int(round(v)) for v in result.x]
    if not lp.is_feasible(x):
        # Degenerate optima can round off a constraint boundary; nudge by
        # re-solving each violated coordinate is overkill — fall back to
        # the exact integral dual-MCF solver instead.
        from .dualmcf import solve_dual_mcf

        return solve_dual_mcf(lp)
    return DualMcfSolution(
        x=x, objective=lp.objective(x), flow_cost=-lp.objective(x)
    )
