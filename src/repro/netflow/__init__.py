"""Min-cost-flow solvers and the dual-MCF LP transformation (§3.3.3)."""

from .difflp import solve_linprog
from .dualmcf import (
    DifferentialLP,
    DualMcfSolution,
    LPInfeasibleError,
    release_solver_caches,
    solve_dual_mcf,
)
from .graph import (
    Arc,
    FlowNetwork,
    FlowResult,
    InfeasibleFlowError,
    UnboundedFlowError,
)
from .cost_scaling import solve_cost_scaling
from .network_simplex import solve_network_simplex
from .ssp import solve_min_cost_flow

__all__ = [
    "Arc",
    "FlowNetwork",
    "FlowResult",
    "InfeasibleFlowError",
    "UnboundedFlowError",
    "solve_min_cost_flow",
    "solve_network_simplex",
    "solve_cost_scaling",
    "DifferentialLP",
    "DualMcfSolution",
    "LPInfeasibleError",
    "release_solver_caches",
    "solve_dual_mcf",
    "solve_linprog",
]
