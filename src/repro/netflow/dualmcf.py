"""Dual min-cost-flow solver for differential-constraint LPs.

Implements the core speed-up of the paper (§3.3.3): a linear program of
the form of Eqn. (14),

    min  Σ c_i x_i
    s.t. x_i − x_j ≥ b_ij      (i, j) ∈ E
         l_i ≤ x_i ≤ u_i       x ∈ Z,

is transformed into the dual of a min-cost-flow problem (Eqn. (15)) by
introducing an anchor variable ``y_0`` and folding the box bounds into
differential constraints against it (Eqn. (16)):

    x_i = y_i − y_0,
    c'_i = c_i  (i ≥ 1),   c'_0 = −Σ c_i,
    b'_ij = b_ij,  b'_i0 = l_i,  b'_0i = −u_i.

The flow network has one node per ``y`` variable with supply ``c'_i``
and one uncapacitated arc per constraint ``(i, j)`` with cost
``−b'_ij``; the optimal node potentials are the optimal ``y`` (Lemma 1),
recovered here from the solver's dual values.

An infeasible constraint system (e.g. a positive-weight cycle of
differential constraints, or crossed bounds) shows up as a negative
uncapacitated cycle in the flow network and is reported as
:class:`LPInfeasibleError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from .. import obs
from .graph import (
    FlowNetwork,
    FlowResult,
    InfeasibleFlowError,
    UnboundedFlowError,
)
from .ssp import solve_min_cost_flow
from .network_simplex import solve_network_simplex
from .cost_scaling import solve_cost_scaling

__all__ = [
    "DifferentialLP",
    "DualMcfSolution",
    "LPInfeasibleError",
    "solve_dual_mcf",
]


class LPInfeasibleError(Exception):
    """The differential-constraint system admits no solution."""


@dataclass
class DifferentialLP:
    """A differential-constraint LP instance (Eqn. (14)).

    Variables are added with :meth:`add_variable` (returning the
    variable index) and constraints ``x_i - x_j >= b`` with
    :meth:`add_constraint`.  Costs, bounds and constraint offsets are
    integers; optima are therefore integral (the constraint matrix is
    totally unimodular), which is exactly why the paper can treat the
    relaxation as an ILP.
    """

    costs: List[int] = field(default_factory=list)
    lowers: List[int] = field(default_factory=list)
    uppers: List[int] = field(default_factory=list)
    constraints: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        return len(self.costs)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def add_variable(self, cost: int, lower: int, upper: int) -> int:
        """New variable with objective coefficient and box bounds."""
        if lower > upper:
            raise LPInfeasibleError(
                f"variable bounds crossed: [{lower}, {upper}]"
            )
        self.costs.append(int(cost))
        self.lowers.append(int(lower))
        self.uppers.append(int(upper))
        return len(self.costs) - 1

    def add_constraint(self, i: int, j: int, b: int) -> None:
        """Add ``x_i - x_j >= b``."""
        n = self.num_variables
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"constraint ({i},{j}) references unknown variables")
        if i == j:
            if b > 0:
                raise LPInfeasibleError(f"constraint x_{i} - x_{i} >= {b} > 0")
            return  # trivially satisfied
        self.constraints.append((i, j, int(b)))

    def objective(self, x: Sequence[int]) -> int:
        return sum(c * v for c, v in zip(self.costs, x))

    def is_feasible(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        """Check a candidate point against bounds and constraints."""
        for v, lo, hi in zip(x, self.lowers, self.uppers):
            if v < lo - tol or v > hi + tol:
                return False
        for i, j, b in self.constraints:
            if x[i] - x[j] < b - tol:
                return False
        return True

    # ------------------------------------------------------------------
    def to_flow_network(self) -> FlowNetwork:
        """Build the Eqn. (16) min-cost-flow network (node 0 = y_0)."""
        net = FlowNetwork()
        total_cost = sum(self.costs)
        net.add_node(supply=-total_cost, name="y0")
        for i, c in enumerate(self.costs):
            net.add_node(supply=c, name=f"y{i + 1}")
        for i, j, b in self.constraints:
            # (i, j) in E' with b'_ij = b_ij  ->  arc i -> j, cost -b.
            net.add_arc(i + 1, j + 1, capacity=None, cost=-b)
        for i in range(self.num_variables):
            # y_i - y_0 >= l_i  ->  arc i -> 0, cost -l_i.
            net.add_arc(i + 1, 0, capacity=None, cost=-self.lowers[i])
            # y_0 - y_i >= -u_i  ->  arc 0 -> i, cost u_i.
            net.add_arc(0, i + 1, capacity=None, cost=self.uppers[i])
        return net


@dataclass(frozen=True)
class DualMcfSolution:
    """Optimal solution of a :class:`DifferentialLP` via dual MCF."""

    x: List[int]
    objective: int
    flow_cost: int

    def __iter__(self):
        return iter(self.x)


def solve_dual_mcf(
    lp: DifferentialLP,
    solver: str = "ssp",
    *,
    decompose: bool = True,
) -> DualMcfSolution:
    """Solve Eqn. (14) exactly through the Eqn. (15)/(16) dual MCF.

    ``solver`` selects the flow engine: ``"ssp"`` (successive shortest
    paths, default), ``"simplex"`` (network simplex), or
    ``"cost-scaling"`` (Goldberg-Tarjan push-relabel).

    With ``decompose=True`` (default) the LP is first split into the
    connected components of its constraint graph, each solved on its
    own anchor node.  Fill-sizing LPs decompose into thousands of
    two-variable components plus a few spacing-coupled chains, so this
    is a large constant-factor win at identical optima; pass
    ``decompose=False`` to benchmark the monolithic transformation.
    """
    if lp.num_variables == 0:
        return DualMcfSolution(x=[], objective=0, flow_cost=0)
    if decompose:
        components = _components(lp)
        obs.metrics.counter("netflow.dual_mcf.solves").inc()
        obs.metrics.histogram("netflow.dual_mcf.components").observe(
            len(components)
        )
        if len(components) > 1:
            x: List[int] = [0] * lp.num_variables
            total_obj = 0
            total_cost = 0
            for members in components:
                sub, back = _sub_lp(lp, members)
                sol = solve_dual_mcf(sub, solver, decompose=False)
                for local, value in enumerate(sol.x):
                    x[back[local]] = value
                total_obj += sol.objective
                total_cost += sol.flow_cost
            return DualMcfSolution(x=x, objective=total_obj, flow_cost=total_cost)
    net = lp.to_flow_network()
    engines: Dict[str, Callable[[FlowNetwork], FlowResult]] = {
        "ssp": solve_min_cost_flow,
        "simplex": solve_network_simplex,
        "cost-scaling": solve_cost_scaling,
    }
    try:
        engine = engines[solver]
    except KeyError:
        raise ValueError(f"unknown flow solver {solver!r}") from None
    try:
        result = engine(net)
    except (InfeasibleFlowError, UnboundedFlowError) as exc:
        raise LPInfeasibleError(
            f"differential constraint system is infeasible: {exc}"
        ) from exc
    # With the solver convention cost + pi[tail] - pi[head] >= 0 on every
    # residual arc, the potentials themselves are a feasible y for (15)
    # (Lemma 1): arc i->j with cost -b' yields pi_i - pi_j >= b'.  Hence
    # x_i = y_{i+1} - y_0 = pi_{i+1} - pi_0 (Eqn. (16a)).
    pi = result.potentials
    x = [pi[i + 1] - pi[0] for i in range(lp.num_variables)]
    if not lp.is_feasible(x):
        raise AssertionError(
            "dual-MCF potentials violate the LP constraints; "
            "this indicates a solver bug"
        )
    objective = lp.objective(x)
    if objective != -result.cost:
        # Strong duality ties the LP optimum to the negated flow cost;
        # a mismatch means the potentials are feasible but suboptimal.
        raise AssertionError(
            f"dual-MCF objective {objective} != -flow cost {-result.cost}"
        )
    return DualMcfSolution(
        x=x, objective=objective, flow_cost=result.cost
    )


def _components(lp: DifferentialLP) -> List[List[int]]:
    """Connected components of the constraint graph (union-find)."""
    parent = list(range(lp.num_variables))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i, j, _ in lp.constraints:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj
    groups: Dict[int, List[int]] = {}
    for v in range(lp.num_variables):
        groups.setdefault(find(v), []).append(v)
    return list(groups.values())


def _sub_lp(
    lp: DifferentialLP, members: List[int]
) -> Tuple[DifferentialLP, List[int]]:
    """Restrict ``lp`` to a variable subset; returns (sub-LP, index map)."""
    local = {v: k for k, v in enumerate(members)}
    sub = DifferentialLP(
        costs=[lp.costs[v] for v in members],
        lowers=[lp.lowers[v] for v in members],
        uppers=[lp.uppers[v] for v in members],
        constraints=[
            (local[i], local[j], b)
            for i, j, b in lp.constraints
            if i in local
        ],
    )
    return sub, members
