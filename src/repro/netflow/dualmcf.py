"""Dual min-cost-flow solver for differential-constraint LPs.

Implements the core speed-up of the paper (§3.3.3): a linear program of
the form of Eqn. (14),

    min  Σ c_i x_i
    s.t. x_i − x_j ≥ b_ij      (i, j) ∈ E
         l_i ≤ x_i ≤ u_i       x ∈ Z,

is transformed into the dual of a min-cost-flow problem (Eqn. (15)) by
introducing an anchor variable ``y_0`` and folding the box bounds into
differential constraints against it (Eqn. (16)):

    x_i = y_i − y_0,
    c'_i = c_i  (i ≥ 1),   c'_0 = −Σ c_i,
    b'_ij = b_ij,  b'_i0 = l_i,  b'_0i = −u_i.

The flow network has one node per ``y`` variable with supply ``c'_i``
and one uncapacitated arc per constraint ``(i, j)`` with cost
``−b'_ij``; the optimal node potentials are the optimal ``y`` (Lemma 1),
recovered here from the solver's dual values.

An infeasible constraint system (e.g. a positive-weight cycle of
differential constraints, or crossed bounds) shows up as a negative
uncapacitated cycle in the flow network and is reported as
:class:`LPInfeasibleError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from .graph import (
    FlowNetwork,
    FlowResult,
    InfeasibleFlowError,
    UnboundedFlowError,
)
from .ssp import solve_min_cost_flow
from .network_simplex import solve_network_simplex
from .cost_scaling import solve_cost_scaling

__all__ = [
    "DifferentialLP",
    "DualMcfSolution",
    "LPInfeasibleError",
    "release_solver_caches",
    "solve_dual_mcf",
]


def release_solver_caches() -> None:
    """Drop the memoised pair-LP solutions.

    The pair cache is value-transparent — clearing it costs speed on
    repeated coefficient patterns, never changes a result.  The
    out-of-core driver (:func:`repro.core.stream_fill`) calls this
    between bands so cached keys cannot accumulate into a resident set
    proportional to the whole die.
    """
    _solve_pair.cache_clear()


class LPInfeasibleError(Exception):
    """The differential-constraint system admits no solution."""


@dataclass
class DifferentialLP:
    """A differential-constraint LP instance (Eqn. (14)).

    Variables are added with :meth:`add_variable` (returning the
    variable index) and constraints ``x_i - x_j >= b`` with
    :meth:`add_constraint`.  Costs, bounds and constraint offsets are
    integers; optima are therefore integral (the constraint matrix is
    totally unimodular), which is exactly why the paper can treat the
    relaxation as an ILP.
    """

    costs: List[int] = field(default_factory=list)
    lowers: List[int] = field(default_factory=list)
    uppers: List[int] = field(default_factory=list)
    constraints: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def num_variables(self) -> int:
        return len(self.costs)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def add_variable(self, cost: int, lower: int, upper: int) -> int:
        """New variable with objective coefficient and box bounds."""
        if lower > upper:
            raise LPInfeasibleError(
                f"variable bounds crossed: [{lower}, {upper}]"
            )
        self.costs.append(int(cost))
        self.lowers.append(int(lower))
        self.uppers.append(int(upper))
        return len(self.costs) - 1

    def add_constraint(self, i: int, j: int, b: int) -> None:
        """Add ``x_i - x_j >= b``."""
        n = self.num_variables
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"constraint ({i},{j}) references unknown variables")
        if i == j:
            if b > 0:
                raise LPInfeasibleError(f"constraint x_{i} - x_{i} >= {b} > 0")
            return  # trivially satisfied
        self.constraints.append((i, j, int(b)))

    def objective(self, x: Sequence[int]) -> int:
        return sum(c * v for c, v in zip(self.costs, x))

    def is_feasible(self, x: Sequence[float], tol: float = 1e-9) -> bool:
        """Check a candidate point against bounds and constraints."""
        for v, lo, hi in zip(x, self.lowers, self.uppers):
            if v < lo - tol or v > hi + tol:
                return False
        for i, j, b in self.constraints:
            if x[i] - x[j] < b - tol:
                return False
        return True

    # ------------------------------------------------------------------
    def to_flow_network(self) -> FlowNetwork:
        """Build the Eqn. (16) min-cost-flow network (node 0 = y_0)."""
        net = FlowNetwork()
        total_cost = sum(self.costs)
        net.add_node(supply=-total_cost, name="y0")
        for i, c in enumerate(self.costs):
            net.add_node(supply=c, name=f"y{i + 1}")
        for i, j, b in self.constraints:
            # (i, j) in E' with b'_ij = b_ij  ->  arc i -> j, cost -b.
            net.add_arc(i + 1, j + 1, capacity=None, cost=-b)
        for i in range(self.num_variables):
            # y_i - y_0 >= l_i  ->  arc i -> 0, cost -l_i.
            net.add_arc(i + 1, 0, capacity=None, cost=-self.lowers[i])
            # y_0 - y_i >= -u_i  ->  arc 0 -> i, cost u_i.
            net.add_arc(0, i + 1, capacity=None, cost=self.uppers[i])
        return net


@dataclass(frozen=True)
class DualMcfSolution:
    """Optimal solution of a :class:`DifferentialLP` via dual MCF."""

    x: List[int]
    objective: int
    flow_cost: int

    def __iter__(self):
        return iter(self.x)


def solve_dual_mcf(
    lp: DifferentialLP,
    solver: str = "ssp",
    *,
    decompose: bool = True,
) -> DualMcfSolution:
    """Solve Eqn. (14) exactly through the Eqn. (15)/(16) dual MCF.

    ``solver`` selects the flow engine: ``"ssp"`` (successive shortest
    paths, default), ``"simplex"`` (network simplex), or
    ``"cost-scaling"`` (Goldberg-Tarjan push-relabel).

    With ``decompose=True`` (default) the LP is first split into the
    connected components of its constraint graph, each solved on its
    own anchor node.  Fill-sizing LPs decompose into thousands of
    two-variable components plus a few spacing-coupled chains, so this
    is a large constant-factor win at identical optima; pass
    ``decompose=False`` to benchmark the monolithic transformation.
    """
    if lp.num_variables == 0:
        return DualMcfSolution(x=[], objective=0, flow_cost=0)
    if decompose:
        split = _component_split(lp)
        obs.metrics.counter("netflow.dual_mcf.solves").inc()
        obs.metrics.histogram("netflow.dual_mcf.components").observe(len(split))
        if len(split) > 1:
            x: List[int] = [0] * lp.num_variables
            total_obj = 0
            total_cost = 0
            fast = solver == "ssp"
            for members, cons in split:
                if fast:
                    fx = _solve_small(lp, members, cons)
                    if fx is not None:
                        for v, value in zip(members, fx):
                            x[v] = value
                            part = lp.costs[v] * value
                            total_obj += part
                            total_cost -= part
                        continue
                sub, back = _sub_lp(lp, members, cons)
                sol = solve_dual_mcf(sub, solver, decompose=False)
                for local, value in enumerate(sol.x):
                    x[back[local]] = value
                total_obj += sol.objective
                total_cost += sol.flow_cost
            return DualMcfSolution(x=x, objective=total_obj, flow_cost=total_cost)
    net = lp.to_flow_network()
    engines: Dict[str, Callable[[FlowNetwork], FlowResult]] = {
        "ssp": solve_min_cost_flow,
        "simplex": solve_network_simplex,
        "cost-scaling": solve_cost_scaling,
    }
    try:
        engine = engines[solver]
    except KeyError:
        raise ValueError(f"unknown flow solver {solver!r}") from None
    try:
        result = engine(net)
    except (InfeasibleFlowError, UnboundedFlowError) as exc:
        raise LPInfeasibleError(
            f"differential constraint system is infeasible: {exc}"
        ) from exc
    # With the solver convention cost + pi[tail] - pi[head] >= 0 on every
    # residual arc, the potentials themselves are a feasible y for (15)
    # (Lemma 1): arc i->j with cost -b' yields pi_i - pi_j >= b'.  Hence
    # x_i = y_{i+1} - y_0 = pi_{i+1} - pi_0 (Eqn. (16a)).
    pi = result.potentials
    x = [pi[i + 1] - pi[0] for i in range(lp.num_variables)]
    if not lp.is_feasible(x):
        raise AssertionError(
            "dual-MCF potentials violate the LP constraints; "
            "this indicates a solver bug"
        )
    objective = lp.objective(x)
    if objective != -result.cost:
        # Strong duality ties the LP optimum to the negated flow cost;
        # a mismatch means the potentials are feasible but suboptimal.
        raise AssertionError(
            f"dual-MCF objective {objective} != -flow cost {-result.cost}"
        )
    return DualMcfSolution(
        x=x, objective=objective, flow_cost=result.cost
    )


def _components(lp: DifferentialLP) -> List[List[int]]:
    """Connected components of the constraint graph (union-find)."""
    return [members for members, _ in _component_split(lp)]


def _component_split(
    lp: DifferentialLP,
) -> List[Tuple[List[int], List[Tuple[int, int, int]]]]:
    """Connected components plus each component's own constraints.

    One pass over the constraint list buckets every constraint by its
    component root, so restricting the LP to a component no longer
    rescans all constraints (which made decomposition quadratic in the
    constraint count).  Bucket order preserves the original constraint
    order, keeping the sub-LPs identical to a filtered scan.
    """
    n = lp.num_variables
    cons = lp.constraints
    # The dominant sizing-pass shape: only the per-fill width
    # constraints (x_hi - x_lo over consecutive variable pairs), no
    # cross-fill spacing links.  The components are then exactly the
    # variable pairs in order — union-find would derive the same split.
    if 2 * len(cons) == n and all(
        c[0] == 2 * k + 1 and c[1] == 2 * k for k, c in enumerate(cons)
    ):
        return [([2 * k, 2 * k + 1], [c]) for k, c in enumerate(cons)]
    parent = list(range(n))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i, j, _ in lp.constraints:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj
    groups: Dict[int, List[int]] = {}
    for v in range(lp.num_variables):
        groups.setdefault(find(v), []).append(v)
    buckets: Dict[int, List[Tuple[int, int, int]]] = {r: [] for r in groups}
    for con in lp.constraints:
        buckets[find(con[0])].append(con)
    return [(members, buckets[root]) for root, members in groups.items()]


def _sub_lp(
    lp: DifferentialLP,
    members: List[int],
    cons: List[Tuple[int, int, int]],
) -> Tuple[DifferentialLP, List[int]]:
    """Restrict ``lp`` to one component; returns (sub-LP, index map)."""
    local = {v: k for k, v in enumerate(members)}
    sub = DifferentialLP(
        costs=[lp.costs[v] for v in members],
        lowers=[lp.lowers[v] for v in members],
        uppers=[lp.uppers[v] for v in members],
        constraints=[(local[i], local[j], b) for i, j, b in cons],
    )
    return sub, members


# ----------------------------------------------------------------------
# fast paths for the dominant component shapes of the sizing LPs
# ----------------------------------------------------------------------
# A fill-sizing pass decomposes into thousands of tiny components: one
# isolated variable, or the (x_lo, x_hi) pair of a single fill coupled
# only by its width constraint x_hi - x_lo >= w.  Solving each through
# the generic route — build a sub-LP, transform to a FlowNetwork, run
# the general SSP engine — spends almost all of its time constructing
# objects for a 3-node, 5-arc network whose solve trajectory is fixed.
# `_solve_pair` below IS that trajectory: the successive-shortest-path
# algorithm of :mod:`repro.netflow.ssp` hand-unrolled onto the fixed
# topology, replicating its arc order, Bellman-Ford sweep order,
# Dijkstra tie-breaks (min ``(dist, node)``) and potential updates, so
# the returned x is identical to the generic path bit for bit — not
# merely another optimum of the same LP.  The residual arc layout
# (index = 2*arc for forward, 2*arc+1 for backward, `e ^ 1` pairing):
#
#   arc 0: y2 -> y1  cost -w   (the width constraint x1 - x0 >= w)
#   arc 1: y1 -> y0  cost -l0  |  arc 2: y0 -> y1  cost u0   (x0 box)
#   arc 3: y2 -> y0  cost -l1  |  arc 4: y0 -> y2  cost u1   (x1 box)
#
# Supplies are (-(a+b), a, b); every forward arc starts with the same
# finite stand-in capacity ``max(1, positive supply)`` the generic
# path derives in ``FlowNetwork.finite_capacities``.
_PAIR_HEAD = (1, 2, 0, 1, 1, 0, 0, 2, 2, 0)
_PAIR_TAIL = (2, 1, 1, 0, 0, 1, 2, 0, 0, 2)
_PAIR_ADJ = ((3, 4, 7, 8), (1, 2, 5), (0, 6, 9))
_INFEASIBLE_CYCLE_MSG = (
    "differential constraint system is infeasible: negative-cost cycle: "
    "the min-cost flow is unbounded "
    "(the corresponding differential LP is infeasible)"
)


@lru_cache(maxsize=1 << 16)
def _solve_pair(
    a: int, b: int, l0: int, u0: int, l1: int, u1: int, w: int
) -> Tuple[int, int]:
    """min a*x0 + b*x1 s.t. x1 - x0 >= w, boxes — exact SSP emulation."""
    if u1 < l0 + w:
        # The only possible negative cycle of the pair network:
        # y0 -> y2 -> y1 -> y0 with cost u1 - w - l0.
        raise LPInfeasibleError(_INFEASIBLE_CYCLE_MSG)
    s0 = -(a + b)
    pos = (s0 if s0 > 0 else 0) + (a if a > 0 else 0) + (b if b > 0 else 0)
    cap_bound = pos if pos > 1 else 1
    cost = (-w, w, -l0, l0, u0, -u0, -l1, l1, u1, -u1)
    caps = [cap_bound, 0, cap_bound, 0, cap_bound, 0, cap_bound, 0, cap_bound, 0]

    # Bellman-Ford initial potentials: only forward arcs carry residual
    # capacity here, relaxed in the generic sweep order (adj of node 0,
    # then 1, then 2).  Convergence is guaranteed by the feasibility
    # check above, within the generic engine's n + 1 = 4 rounds.
    p0 = p1 = p2 = 0
    for _ in range(4):
        changed = False
        nd = p0 + u0  # arc 0 -> 1
        if nd < p1:
            p1 = nd
            changed = True
        nd = p0 + u1  # arc 0 -> 2
        if nd < p2:
            p2 = nd
            changed = True
        nd = p1 - l0  # arc 1 -> 0
        if nd < p0:
            p0 = nd
            changed = True
        nd = p2 - w  # arc 2 -> 1
        if nd < p1:
            p1 = nd
            changed = True
        nd = p2 - l1  # arc 2 -> 0
        if nd < p0:
            p0 = nd
            changed = True
        if not changed:
            break
    else:  # pragma: no cover - excluded by the feasibility precheck
        raise LPInfeasibleError(_INFEASIBLE_CYCLE_MSG)

    pi = [p0, p1, p2]
    excess = [s0, a, b]
    inf = float("inf")
    while True:
        source = -1
        for u in (0, 1, 2):
            if excess[u] > 0:
                source = u
                break
        if source < 0:
            break
        # Dijkstra on reduced costs, settling in (dist, node) order —
        # the heap pop order of the generic engine — with early exit
        # at the first settled deficit node.
        dist: List[float] = [inf, inf, inf]
        prev = [-1, -1, -1]
        settled = [False, False, False]
        dist[source] = 0
        target = -1
        dt = 0
        while True:
            u = -1
            best = inf
            for v in (0, 1, 2):
                if not settled[v] and dist[v] < best:
                    best = dist[v]
                    u = v
            if u < 0:
                break
            settled[u] = True
            if excess[u] < 0:
                target = u
                dt = int(dist[u])
                break
            du = dist[u] + pi[u]
            for e in _PAIR_ADJ[u]:
                if caps[e] <= 0:
                    continue
                h = _PAIR_HEAD[e]
                if settled[h]:
                    continue
                nd = du + cost[e] - pi[h]
                if nd < dist[h]:
                    dist[h] = nd
                    prev[h] = e
        if target < 0:  # pragma: no cover - pair network is connected
            raise LPInfeasibleError(
                "differential constraint system is infeasible: "
                "an excess node cannot reach any deficit node"
            )
        for u in (0, 1, 2):
            d = dist[u]
            pi[u] += int(d) if d < dt else dt
        push = min(excess[source], -excess[target])
        v = target
        while v != source:
            e = prev[v]
            if caps[e] < push:
                push = caps[e]
            v = _PAIR_TAIL[e]
        v = target
        while v != source:
            e = prev[v]
            caps[e] -= push
            caps[e ^ 1] += push
            v = _PAIR_TAIL[e]
        excess[source] -= push
        excess[target] += push
    return pi[1] - pi[0], pi[2] - pi[0]


def _solve_single(c: int, lower: int, upper: int) -> int:
    """One unconstrained boxed variable, as the SSP potentials pick it.

    The two-node network routes the whole supply over the lower-bound
    arc (``c > 0``), the upper-bound arc (``c < 0``), or not at all —
    with zero cost the Bellman-Ford potentials alone fix x at 0 clamped
    into the box.
    """
    if c > 0:
        return lower
    if c < 0:
        return upper
    if upper < 0:
        return upper
    if lower > 0:
        return lower
    return 0


def _solve_small(
    lp: DifferentialLP,
    members: List[int],
    cons: List[Tuple[int, int, int]],
) -> Optional[Tuple[int, ...]]:
    """Dispatch a component to a fast path, or None for the generic route."""
    if len(members) == 1 and not cons:
        v = members[0]
        return (_solve_single(lp.costs[v], lp.lowers[v], lp.uppers[v]),)
    if len(members) == 2 and len(cons) == 1:
        lo_v, hi_v = members
        i, j, b = cons[0]
        if i == hi_v and j == lo_v:
            return _solve_pair(
                lp.costs[lo_v],
                lp.costs[hi_v],
                lp.lowers[lo_v],
                lp.uppers[lo_v],
                lp.lowers[hi_v],
                lp.uppers[hi_v],
                b,
            )
    return None
