"""Cheap runtime assertion helpers for the fill engine's invariants.

The static pass (:mod:`repro.check`) enforces the invariants it can see
in the source; the helpers here guard the same invariants at the
runtime boundaries where data enters the flow — engine entry, density
analysis, sizing.  They are deliberately O(1) or O(windows) so they can
stay enabled in production runs:

* :func:`check_rect` — rectangle well-formedness on the integer dbu
  grid (``xl <= xh``, ``yl <= yh``, integral coordinates),
* :func:`check_density` — window density maps stay within ``[0, 1]``
  (paper §2.2: densities are area ratios),
* :func:`check_drc_params` — the rule deck is positive and
  self-consistent (Table 1: ``sm``, ``wm``, ``am``).

Violations raise :class:`ContractViolation` naming the offending value
— failing at the boundary instead of corrupting a score three stages
later.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

import numpy as np

if TYPE_CHECKING:  # circular-import-free type-only imports
    from .geometry.rect import Rect
    from .layout.drc import DrcRules

__all__ = [
    "ContractViolation",
    "check_rect",
    "check_density",
    "check_drc_params",
    "DENSITY_EPS",
]

#: slack for float round-off when densities are assembled from ratios
DENSITY_EPS = 1e-9


class ContractViolation(ValueError):
    """A runtime invariant of the fill flow was violated."""


def check_rect(rect: "Rect", *, name: str = "rect") -> "Rect":
    """Validate integer-dbu well-formedness of a rectangle.

    ``Rect.__post_init__`` already rejects inverted boxes; this guard
    additionally rejects non-integral coordinates, which a frozen
    dataclass cannot (a ``Rect(0.5, 0, 1.5, 1)`` constructs happily and
    then breaks area bookkeeping and the sizing ILP's integrality).
    """
    for attr in ("xl", "yl", "xh", "yh"):
        value = getattr(rect, attr)
        if not isinstance(value, (int, np.integer)):
            raise ContractViolation(
                f"{name}.{attr} = {value!r} is not an integer dbu coordinate"
            )
    if rect.xl > rect.xh or rect.yl > rect.yh:
        raise ContractViolation(
            f"{name} is malformed: ({rect.xl},{rect.yl},{rect.xh},{rect.yh}) "
            "requires xl <= xh and yl <= yh"
        )
    return rect


def check_density(
    value: Union[float, np.ndarray], *, name: str = "density"
) -> Union[float, np.ndarray]:
    """Validate that a density (scalar or window map) lies in ``[0, 1]``.

    Densities are ratios of covered area to window area (Eqn. (1)); a
    value outside ``[0, 1]`` (beyond float round-off) means the area
    bookkeeping double-counted shapes or divided by the wrong window
    area.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.size and (
        not np.isfinite(arr).all()
        or float(arr.min()) < -DENSITY_EPS
        or float(arr.max()) > 1.0 + DENSITY_EPS
    ):
        finite = arr[np.isfinite(arr)]
        lo = float(finite.min()) if finite.size else float("nan")
        hi = float(finite.max()) if finite.size else float("nan")
        raise ContractViolation(
            f"{name} outside [0, 1]: range [{lo:.6g}, {hi:.6g}]"
            + ("" if np.isfinite(arr).all() else " with non-finite entries")
        )
    return value


def check_drc_params(rules: "DrcRules", *, name: str = "rules") -> "DrcRules":
    """Validate positivity and consistency of the DRC rule deck.

    Mirrors ``DrcRules.__post_init__`` for decks that arrive through
    deserialisation paths that bypass the constructor, and adds the
    integer-dbu requirement.
    """
    params = {
        "min_spacing": rules.min_spacing,
        "min_width": rules.min_width,
        "min_area": rules.min_area,
        "max_fill_width": rules.max_fill_width,
        "max_fill_height": rules.max_fill_height,
    }
    for param, value in params.items():
        if not isinstance(value, (int, np.integer)):
            raise ContractViolation(
                f"{name}.{param} = {value!r} is not an integer dbu quantity"
            )
        if value <= 0:
            raise ContractViolation(f"{name}.{param} = {value!r} must be positive")
    if rules.max_fill_width < rules.min_width:
        raise ContractViolation(
            f"{name}: max_fill_width {rules.max_fill_width} < "
            f"min_width {rules.min_width}"
        )
    if rules.max_fill_height < rules.min_width:
        raise ContractViolation(
            f"{name}: max_fill_height {rules.max_fill_height} < "
            f"min_width {rules.min_width}"
        )
    return rules
