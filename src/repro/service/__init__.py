"""``repro.service`` — persistent fill sessions behind a job queue.

The production-facing layer over the one-shot engine: load a layout
once into an indexed :class:`FillSession`, then serve many requests
against it — full ``fill``, ``score``, ``drc_audit``, and ``eco_delta``
patches that re-analyze and re-fill only the windows a wire change
dirtied.  Requests flow through a bounded :class:`JobQueue` with
backpressure and atomic batch submission, executed by a supervised
worker pool in per-session submission order (so results are
deterministic — byte-identical to serial CLI runs — at any worker
count).

Two front doors:

* :class:`ServiceClient` — in-process, for tests and benchmarks,
* ``repro serve`` + :class:`SocketClient` — newline-delimited JSON
  over a Unix-domain or localhost TCP socket
  (:mod:`repro.service.protocol`).

See ``docs/SERVICE.md`` for the API, protocol and session lifecycle.
"""

from .api import (
    COMPUTE_OPS,
    CONTROL_OPS,
    FillService,
    ServiceClient,
    rules_from_mapping,
)
from .jobs import (
    Job,
    JobError,
    JobQueue,
    QueueClosedError,
    QueueFullError,
    WorkerSupervisor,
)
from .protocol import (
    ProtocolError,
    ServiceError,
    SocketClient,
    decode_message,
    encode_message,
    from_wire,
    to_wire,
)
from .server import ServiceServer
from .session import (
    FillSession,
    SessionClosedError,
    SessionStore,
    UnknownSessionError,
)

__all__ = [
    "COMPUTE_OPS",
    "CONTROL_OPS",
    "FillService",
    "ServiceClient",
    "rules_from_mapping",
    "Job",
    "JobError",
    "JobQueue",
    "QueueClosedError",
    "QueueFullError",
    "WorkerSupervisor",
    "ProtocolError",
    "ServiceError",
    "SocketClient",
    "decode_message",
    "encode_message",
    "from_wire",
    "to_wire",
    "ServiceServer",
    "FillSession",
    "SessionClosedError",
    "SessionStore",
    "UnknownSessionError",
]
