"""Async job queue: bounded FIFO, batch submission, worker supervisor.

The service's execution spine.  Requests become :class:`Job` objects on
a :class:`JobQueue` — a bounded FIFO with backpressure (a full queue
rejects instead of buffering without bound) — and a
:class:`WorkerSupervisor` runs a fixed pool of worker threads that pop
and execute jobs.  Heavy per-request computation still flows through
:mod:`repro.parallel` (the engine's sharded stages); these threads only
coordinate.

Two properties matter for determinism:

* **Atomic ticket issuance** — a session-bound job gets its session
  ticket *inside the queue mutex*, at enqueue.  Queue FIFO order and
  ticket order therefore agree for every session, so a single worker
  can never pop a job whose predecessor ticket sits behind it in the
  queue (which would deadlock), and N workers execute a session's jobs
  in submission order regardless of interleaving.
* **Crash containment** — a job that raises fails *that job* only; a
  worker killed by a ``BaseException`` (or a bug in the dispatch path
  itself) is respawned by the supervisor, so the pool never silently
  shrinks.  Respawns are counted on the supervisor for tests and
  metrics.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from .session import FillSession

__all__ = [
    "Job",
    "JobError",
    "JobQueue",
    "QueueClosedError",
    "QueueFullError",
    "WorkerSupervisor",
]


class QueueFullError(RuntimeError):
    """The queue is at capacity; retry after in-flight jobs drain."""


class QueueClosedError(RuntimeError):
    """The queue (or service) was shut down."""


class JobError(RuntimeError):
    """A job failed; carries the original error type name and message."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


class Job:
    """One queued request and its eventual outcome."""

    def __init__(
        self,
        job_id: str,
        op: str,
        params: Dict[str, Any],
        session: Optional[FillSession] = None,
    ):
        self.id = job_id
        self.op = op
        self.params = params
        self.session = session
        #: session execution slot; assigned by JobQueue.submit
        self.ticket: Optional[int] = None
        #: service-tracer offset at enqueue; assigned by the service
        self.enqueued_offset: float = 0.0
        self._done = threading.Event()
        self._result: Optional[Dict[str, Any]] = None
        self._error: Optional[JobError] = None

    def succeed(self, result: Dict[str, Any]) -> None:
        self._result = result
        self._done.set()

    def fail(self, exc: BaseException) -> None:
        self._error = JobError(type(exc).__name__, str(exc))
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def error(self) -> Optional[JobError]:
        return self._error

    def wait(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the job finishes; raise its :class:`JobError` if any."""
        if not self._done.wait(timeout):
            raise TimeoutError(f"job {self.id} ({self.op}) still running")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class JobQueue:
    """Bounded FIFO of jobs with atomic session-ticket issuance."""

    def __init__(self, maxsize: int = 64):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._jobs: Deque[Job] = deque()
        self._cond = threading.Condition()
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._jobs)

    def submit(self, job: Job) -> None:
        """Enqueue one job; :class:`QueueFullError` on a full queue."""
        self.submit_many([job])

    def submit_many(self, jobs: Sequence[Job]) -> None:
        """Enqueue a batch atomically: all jobs or none.

        The batch is admitted only if the queue has room for every job,
        then tickets are issued and jobs appended in order under the
        one mutex — so a batch's jobs are contiguous in the queue and
        contiguous in every touched session's ticket sequence.
        """
        if not jobs:
            return
        with self._cond:
            if self._closed:
                raise QueueClosedError("job queue is closed")
            if len(self._jobs) + len(jobs) > self.maxsize:
                raise QueueFullError(
                    f"queue full ({len(self._jobs)}/{self.maxsize}); "
                    f"batch of {len(jobs)} rejected"
                )
            for job in jobs:
                if job.session is not None:
                    job.ticket = job.session.issue_ticket()
                self._jobs.append(job)
            self._cond.notify(len(jobs))

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next job in FIFO order; ``None`` when closed and drained."""
        with self._cond:
            while True:
                if self._jobs:
                    return self._jobs.popleft()
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def close(self) -> List[Job]:
        """Refuse new work; wake poppers; return the undrained jobs.

        The caller owns failing the returned jobs (the service fails
        them with :class:`QueueClosedError` so no waiter hangs).
        """
        with self._cond:
            self._closed = True
            drained = list(self._jobs)
            self._jobs.clear()
            self._cond.notify_all()
        return drained


class WorkerSupervisor:
    """A fixed pool of worker threads with crash respawn.

    ``run_job`` executes one job and must contain ordinary exceptions
    (failing the job instead of raising); anything that still escapes
    kills the worker thread, and the supervisor immediately spawns a
    replacement for its slot — the pool holds ``workers`` live threads
    until :meth:`stop`.
    """

    def __init__(
        self,
        queue: JobQueue,
        run_job: Callable[[Job], None],
        *,
        workers: int = 2,
        on_worker_start: Optional[Callable[[], None]] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.queue = queue
        self.run_job = run_job
        self.workers = workers
        self.on_worker_start = on_worker_start
        self.respawns = 0
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._stopping = False

    def start(self) -> None:
        for slot in range(self.workers):
            self._spawn(slot)

    def _spawn(self, slot: int) -> None:
        thread = threading.Thread(
            target=self._worker_main,
            args=(slot,),
            name=f"repro-service-worker-{slot}",
            daemon=True,
        )
        with self._lock:
            self._threads.append(thread)
        thread.start()

    def _worker_main(self, slot: int) -> None:
        try:
            if self.on_worker_start is not None:
                self.on_worker_start()
            while True:
                job = self.queue.pop()
                if job is None:
                    return
                try:
                    self.run_job(job)
                except BaseException as exc:
                    # Contain the job's fate, then let the exception
                    # kill this thread; the finally below respawns.
                    if not job.done:
                        job.fail(exc)
                    raise
        finally:
            with self._lock:
                respawn = not self._stopping and not self.queue.closed
                if respawn:
                    self.respawns += 1
            if respawn:
                self._spawn(slot)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop accepting respawns and join every worker thread."""
        with self._lock:
            self._stopping = True
            threads = list(self._threads)
        for thread in threads:
            thread.join(timeout)

    def alive(self) -> int:
        with self._lock:
            return sum(1 for t in self._threads if t.is_alive())
