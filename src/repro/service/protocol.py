"""Newline-delimited JSON protocol for ``repro serve``.

One request per line, one response per line, UTF-8 JSON — the least
machinery that composes with everything (``nc``, a five-line Python
client, CI shell steps) and needs no dependencies:

    -> {"id": 1, "op": "open_session", "gds_b64": "...", "windows": 4}
    <- {"id": 1, "ok": true, "result": {"session": "s1", ...}}
    -> {"id": 2, "op": "fill", "session": "s1"}
    <- {"id": 2, "ok": true, "result": {"gds_b64": "...", ...}}

Binary payloads (GDSII streams) travel base64-encoded under keys with
a ``_b64`` suffix; :func:`to_wire`/:func:`from_wire` convert between
that form and the raw ``bytes`` values the in-process API uses, so
handler code never sees base64.  Responses to failed requests carry
``"ok": false`` and an ``error`` object instead of ``result``.

:class:`SocketClient` is the reference client, speaking the protocol
over a Unix-domain or localhost TCP socket.
"""

from __future__ import annotations

import base64
import binascii
import json
import socket
import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "MAX_LINE_BYTES",
    "ProtocolError",
    "ServiceError",
    "SocketClient",
    "encode_message",
    "decode_message",
    "to_wire",
    "from_wire",
]

#: one protocol line may not exceed this (a die-sized GDSII in base64
#: fits comfortably; anything bigger points at a runaway client)
MAX_LINE_BYTES = 256 * 1024 * 1024

_B64_SUFFIX = "_b64"


class ProtocolError(ValueError):
    """A protocol line is malformed (bad JSON, bad base64, not a dict)."""


class ServiceError(RuntimeError):
    """The server answered a request with an error response."""

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


def to_wire(value: Any) -> Any:
    """Replace ``bytes`` values with base64 strings under ``*_b64`` keys.

    Recurses through dicts and lists so nested payloads (batch
    responses) encode too.  Non-bytes values pass through unchanged.
    """
    if isinstance(value, dict):
        out: Dict[str, Any] = {}
        for key, item in value.items():
            if isinstance(item, (bytes, bytearray)):
                out[f"{key}{_B64_SUFFIX}"] = base64.b64encode(
                    bytes(item)
                ).decode("ascii")
            else:
                out[key] = to_wire(item)
        return out
    if isinstance(value, (list, tuple)):
        return [to_wire(item) for item in value]
    return value


def from_wire(value: Any) -> Any:
    """Decode ``*_b64`` string values back to ``bytes`` keys; inverse of
    :func:`to_wire`."""
    if isinstance(value, dict):
        out: Dict[str, Any] = {}
        for key, item in value.items():
            if key.endswith(_B64_SUFFIX) and isinstance(item, str):
                try:
                    out[key[: -len(_B64_SUFFIX)]] = base64.b64decode(
                        item, validate=True
                    )
                except (binascii.Error, ValueError) as exc:
                    raise ProtocolError(f"bad base64 under {key!r}: {exc}") from exc
            else:
                out[key] = from_wire(item)
        return out
    if isinstance(value, list):
        return [from_wire(item) for item in value]
    return value


def encode_message(message: Mapping[str, Any]) -> bytes:
    """One wire line: compact sorted JSON plus the newline terminator."""
    payload = json.dumps(
        to_wire(dict(message)), sort_keys=True, separators=(",", ":")
    )
    return payload.encode("utf-8") + b"\n"


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one wire line back into a dict with raw ``bytes`` payloads."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("protocol messages must be JSON objects")
    decoded: Dict[str, Any] = from_wire(message)
    return decoded


class SocketClient:
    """Blocking NDJSON client over a Unix-domain or TCP socket.

    Thread-safe: one request/response exchange at a time (requests are
    serialized on a lock; the server answers in request order per
    connection).  Use one client per concurrent caller for pipelining.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = 600.0,
    ):
        if (socket_path is None) == (port is None):
            raise ValueError("connect with exactly one of socket_path/port")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """One exchange; returns the result or raises :class:`ServiceError`."""
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            self._sock.sendall(
                encode_message({"id": request_id, "op": op, **params})
            )
            line = self._rfile.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError("server closed the connection")
        response = decode_message(line)
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')!r} != request id {request_id}"
            )
        if response.get("ok"):
            result = response.get("result")
            return result if isinstance(result, dict) else {}
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("type", "ServiceError")),
            str(error.get("message", "request failed")),
        )

    def batch(self, requests: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
        """Submit a batch op; per-request response dicts in order."""
        result = self.request("batch", requests=[dict(r) for r in requests])
        responses = result.get("responses")
        return list(responses) if isinstance(responses, list) else []

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to stop (it responds before stopping)."""
        return self.request("shutdown")

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SocketClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
