"""Persistent fill sessions: layout + caches, loaded once, served many.

A :class:`FillSession` is the unit of state the service keeps between
requests: the layout, its window grid and fill config, and the derived
caches the one-shot CLI rebuilds on every invocation — the per-layer
wire :class:`~repro.geometry.GridIndex` and the global density
analysis.  Both caches depend only on the session's *wires* (analysis
bounds and fill regions never read fills), so they survive any number
of ``fill``/``score``/``drc_audit`` requests and are refreshed
incrementally — never recomputed — by ``eco_delta``.

Concurrency model: requests against one session execute in submission
order, enforced by *tickets*.  The job queue issues each session-bound
job a ticket atomically with enqueueing (see
:meth:`repro.service.jobs.JobQueue.submit`), and workers enter
:meth:`FillSession.ordered` with that ticket, which blocks until every
earlier ticket has finished.  FIFO pop order plus atomic issuance
guarantees progress for any worker count, including one; requests on
*different* sessions run concurrently.

:class:`SessionStore` owns the sessions with LRU eviction: opening a
session beyond capacity closes the least-recently-used one, and any
job still queued against it fails with :class:`SessionClosedError`
(tickets always advance, so ordering never wedges).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from ..core import FillConfig, build_wire_indexes
from ..core.engine import FillReport
from ..density.analysis import LayerDensity, analyze_layout
from ..geometry import GridIndex
from ..layout import Layout, WindowGrid

__all__ = [
    "FillSession",
    "SessionStore",
    "SessionClosedError",
    "UnknownSessionError",
]


class SessionClosedError(RuntimeError):
    """The session was closed (or evicted) while the request waited."""


class UnknownSessionError(KeyError):
    """No session with the requested id exists."""

    def __str__(self) -> str:  # KeyError quotes its payload; keep it readable
        return self.args[0] if self.args else ""


class FillSession:
    """One loaded layout plus everything derived from it.

    Mutable state (``layout``, ``analysis``, ``wire_indexes``,
    ``last_report``) must only be touched inside :meth:`ordered` —
    the ticket protocol makes that section exclusive per session.
    """

    def __init__(
        self,
        session_id: str,
        layout: Layout,
        grid: WindowGrid,
        config: FillConfig,
    ):
        self.id = session_id
        self.layout = layout
        self.grid = grid
        self.config = config
        self.analysis: Optional[Dict[int, LayerDensity]] = None
        self.wire_indexes: Optional[Dict[int, GridIndex[int]]] = None
        self.last_report: Optional[FillReport] = None
        self.requests_served = 0
        self._cond = threading.Condition()
        self._next_ticket = 0
        self._serving = 0
        self._closed = False

    # -- ticket ordering -----------------------------------------------
    def issue_ticket(self) -> int:
        """Reserve the next execution slot; call atomically with enqueue."""
        with self._cond:
            ticket = self._next_ticket
            self._next_ticket += 1
            return ticket

    @contextmanager
    def ordered(self, ticket: int) -> Iterator[None]:
        """Execute the body when every earlier ticket has finished.

        The slot is *always* released on exit — including when the body
        raises or the session turns out to be closed — so one failed
        request can never stall the tickets behind it.
        """
        with self._cond:
            self._cond.wait_for(lambda: self._serving == ticket)
        try:
            if self._closed:
                raise SessionClosedError(f"session {self.id} is closed")
            yield
            self.requests_served += 1
        finally:
            with self._cond:
                self._serving += 1
                self._cond.notify_all()

    def close(self) -> None:
        """Mark the session closed; queued requests fail when they run."""
        with self._cond:
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # -- caches --------------------------------------------------------
    def ensure_caches(self) -> None:
        """Build the wire indexes and density analysis if absent.

        Call inside :meth:`ordered`.  The analysis is computed with the
        session config's margin and worker settings — exactly the
        parameters the engine would use internally, so passing the
        cache back into :meth:`~repro.core.DummyFillEngine.run` is
        bit-identical to letting it analyze from scratch.
        """
        if self.wire_indexes is None:
            self.wire_indexes = build_wire_indexes(self.layout)
        if self.analysis is None:
            config = self.config
            self.analysis = analyze_layout(
                self.layout,
                self.grid,
                window_margin=config.effective_margin(
                    self.layout.rules.min_spacing
                ),
                workers=config.effective_workers(),
                parallel=config.parallel,
                sanitize=config.sanitize,
            )

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary for the ``sessions`` op."""
        layout = self.layout
        return {
            "session": self.id,
            "die": [layout.die.xl, layout.die.yl, layout.die.xh, layout.die.yh],
            "layers": layout.num_layers,
            "wires": layout.num_wires,
            "fills": layout.num_fills,
            "windows": [self.grid.cols, self.grid.rows],
            "requests_served": self.requests_served,
            "cached_analysis": self.analysis is not None,
        }


class SessionStore:
    """Named sessions with bounded capacity and LRU eviction."""

    def __init__(self, max_sessions: int = 8):
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, FillSession]" = OrderedDict()
        self._lock = threading.Lock()
        self._opened = 0
        self.evicted = 0

    def open(
        self, layout: Layout, grid: WindowGrid, config: FillConfig
    ) -> FillSession:
        """Create a session; evicts the LRU session when at capacity."""
        with self._lock:
            self._opened += 1
            session = FillSession(f"s{self._opened}", layout, grid, config)
            self._sessions[session.id] = session
            while len(self._sessions) > self.max_sessions:
                _, evictee = self._sessions.popitem(last=False)
                evictee.close()
                self.evicted += 1
            return session

    def get(self, session_id: str) -> FillSession:
        """Look up a session and mark it most-recently-used."""
        with self._lock:
            session = self._sessions.get(session_id)
            if session is None:
                raise UnknownSessionError(f"unknown session {session_id!r}")
            self._sessions.move_to_end(session_id)
            return session

    def close(self, session_id: str) -> None:
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise UnknownSessionError(f"unknown session {session_id!r}")
        session.close()

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [s.describe() for s in sessions]
