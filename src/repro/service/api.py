"""The fill service: request handlers, dispatch, in-process client.

:class:`FillService` wires the pieces together: a
:class:`~repro.service.session.SessionStore`, a
:class:`~repro.service.jobs.JobQueue` and a
:class:`~repro.service.jobs.WorkerSupervisor`.  Requests come in two
kinds:

* **control ops** (``ping``, ``open_session``, ``close_session``,
  ``sessions``, ``stats``, ``metrics``) execute synchronously on the
  calling thread — they only touch the store and read-only telemetry;
* **compute ops** (``fill``, ``score``, ``drc_audit``, ``eco_delta``)
  are queued as jobs and executed by worker threads in per-session
  submission order; the heavy stages inside each job still parallelize
  through :mod:`repro.parallel` per the session's
  :class:`~repro.core.FillConfig`.

Every job runs under its own ``service.request`` span on the service's
tracer (the one active when :meth:`FillService.start` ran — a
``--trace-out`` run record when serving from the CLI) and feeds the
per-op latency histograms ``service.latency.<op>`` plus
``service.queue.wait_s``, so ``repro trace summarize`` reads service
percentiles with no extra plumbing.

Compute semantics are *replayable*: ``fill`` always starts from the
session's wire geometry (existing fill is replaced), so any number of
concurrent identical requests — and a fresh ``repro fill`` of the same
bytes — produce byte-identical GDSII.  ``eco_delta`` commits wires and
re-fills only the dirtied windows via the session caches
(:func:`repro.eco.apply_eco`), bit-identical to the cold CLI path.
"""

from __future__ import annotations

import contextlib
import threading
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .. import obs
from ..bench.suite import calibrate_weights
from ..core import DummyFillEngine, FillConfig
from ..density import score_layout
from ..eco import apply_eco, build_fill_indexes, wires_from_json
from ..gdsii import file_size_mb, gdsii_bytes, layout_from_gdsii
from ..layout import DrcRules, WindowGrid
from .jobs import Job, JobError, JobQueue, QueueClosedError, WorkerSupervisor
from .session import FillSession, SessionStore

__all__ = [
    "COMPUTE_OPS",
    "CONTROL_OPS",
    "FillService",
    "ServiceClient",
    "rules_from_mapping",
]

#: ops executed by worker threads in per-session order
COMPUTE_OPS = ("fill", "score", "drc_audit", "eco_delta")
#: ops executed synchronously on the calling thread
CONTROL_OPS = (
    "ping",
    "open_session",
    "close_session",
    "sessions",
    "stats",
    "metrics",
)

#: rule-deck defaults shared with the CLI's --min-* flags
_RULE_DEFAULTS = {
    "min_spacing": 10,
    "min_width": 10,
    "min_area": 400,
    "max_fill": 150,
}


def rules_from_mapping(mapping: Mapping[str, Any]) -> DrcRules:
    """Build a rule deck from a request dict, CLI flag defaults applied.

    Accepted keys mirror the CLI: ``min_spacing``, ``min_width``,
    ``min_area`` and ``max_fill`` (one edge cap for both dimensions).
    Unknown keys raise, like :meth:`FillConfig.from_mapping`.
    """
    unknown = sorted(set(mapping) - set(_RULE_DEFAULTS))
    if unknown:
        raise ValueError(
            f"unknown rules keys {unknown} (known: {sorted(_RULE_DEFAULTS)})"
        )
    merged = {**_RULE_DEFAULTS, **mapping}
    return DrcRules(
        min_spacing=int(merged["min_spacing"]),
        min_width=int(merged["min_width"]),
        min_area=int(merged["min_area"]),
        max_fill_width=int(merged["max_fill"]),
        max_fill_height=int(merged["max_fill"]),
    )


class FillService:
    """Persistent fill sessions behind an async batch job queue."""

    def __init__(
        self,
        *,
        workers: int = 2,
        max_sessions: int = 8,
        queue_size: int = 64,
        request_timeout: Optional[float] = 600.0,
        slow_ms: Optional[float] = None,
        profile_ms: Optional[float] = None,
        telemetry_window: int = 256,
    ):
        self.store = SessionStore(max_sessions=max_sessions)
        self.request_timeout = request_timeout
        #: requests slower than this (milliseconds) emit a warning
        #: event carrying the request's span tree inline
        self.slow_ms = slow_ms
        self._queue = JobQueue(maxsize=queue_size)
        self._supervisor = WorkerSupervisor(
            self._queue,
            self._execute,
            workers=workers,
            on_worker_start=self._install_obs,
        )
        self._tracer = obs.active_tracer()
        self._registry = obs.metrics.active_registry()
        #: rolling per-op latency quantiles over the last N requests,
        #: exposed next to the cumulative histograms on /metrics
        self.telemetry = obs.RollingQuantiles(window=telemetry_window)
        #: per-request sampling profiler (one shared collector so the
        #: whole service lifetime folds into a single flamegraph)
        self._profile = (
            obs.ProfileCollector(period_ms=profile_ms)
            if profile_ms is not None
            else None
        )
        self._job_lock = threading.Lock()
        self._jobs_issued = 0
        self._started = False
        self._started_offset = 0.0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "FillService":
        """Capture the active tracer/registry and spawn the workers.

        Call inside the observation context the service should report
        into (e.g. a ``record_run``): worker threads do not inherit
        context variables, so each one explicitly installs the tracer
        and registry captured here.
        """
        if self._started:
            raise RuntimeError("service already started")
        self._tracer = obs.active_tracer()
        self._registry = obs.metrics.active_registry()
        self._started_offset = obs.current_offset(self._tracer)
        self._supervisor.start()
        self._started = True
        return self

    def stop(self) -> None:
        """Close the queue, fail undrained jobs, join the workers."""
        drained = self._queue.close()
        for job in drained:
            job.fail(QueueClosedError("service stopped before the job ran"))
        self._supervisor.stop()
        self.store.close_all()
        if self._profile is not None and self._profile.samples:
            # folded request samples land in the service's run record
            obs.profile.publish(self._profile, tracer=self._tracer)
        self._started = False

    def __enter__(self) -> "FillService":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def workers(self) -> int:
        return self._supervisor.workers

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- submission ----------------------------------------------------
    def submit(self, op: str, params: Dict[str, Any]) -> Job:
        """Queue one compute op; returns the :class:`Job` to wait on."""
        return self.submit_many([{"op": op, **params}])[0]

    def submit_many(self, requests: Sequence[Mapping[str, Any]]) -> List[Job]:
        """Queue a batch of compute ops atomically (all or none).

        Each request is ``{"op": ..., "session": ..., **params}``.
        Sessions are resolved (and LRU-touched) up front; the queue
        admits the whole batch or raises
        :class:`~repro.service.jobs.QueueFullError` untouched.
        """
        if not self._started:
            raise RuntimeError("service is not running")
        jobs: List[Job] = []
        for request in requests:
            op = str(request.get("op"))
            if op not in COMPUTE_OPS:
                raise ValueError(
                    f"unknown compute op {op!r} (one of {COMPUTE_OPS})"
                )
            params = {k: v for k, v in request.items() if k not in ("op", "id")}
            session = self.store.get(str(params.get("session")))
            with self._job_lock:
                self._jobs_issued += 1
                job_id = f"j{self._jobs_issued}"
            job = Job(job_id, op, params, session)
            job.enqueued_offset = obs.current_offset(self._tracer)
            jobs.append(job)
        self._queue.submit_many(jobs)
        self._registry.gauge("service.queue.depth").set(len(self._queue))
        return jobs

    def call(self, op: str, **params: Any) -> Dict[str, Any]:
        """Submit one compute op and wait for its result."""
        return self.submit(op, params).wait(self.request_timeout)

    # -- protocol entry ------------------------------------------------
    def handle(self, request: Mapping[str, Any]) -> Dict[str, Any]:
        """Execute one decoded request; never raises.

        Returns ``{"ok": True, "result": ...}`` or ``{"ok": False,
        "error": {"type": ..., "message": ...}}`` — the body of a
        protocol response.  ``batch`` fans out to :meth:`submit_many`
        and reports per-request outcomes in submission order.
        """
        op = str(request.get("op"))
        params = {k: v for k, v in request.items() if k not in ("op", "id")}
        try:
            if op == "batch":
                return _ok({"responses": self._handle_batch(params)})
            if op in CONTROL_OPS:
                return _ok(self._control(op, params))
            job = self.submit(op, params)
            return _ok(job.wait(self.request_timeout))
        except JobError as exc:
            return _err(exc.error_type, exc.message)
        except Exception as exc:
            return _err(type(exc).__name__, str(exc))

    def _handle_batch(self, params: Dict[str, Any]) -> List[Dict[str, Any]]:
        requests = params.get("requests")
        if not isinstance(requests, (list, tuple)) or not requests:
            raise ValueError("batch needs a non-empty 'requests' list")
        jobs = self.submit_many(requests)
        responses: List[Dict[str, Any]] = []
        for job in jobs:
            try:
                responses.append(_ok(job.wait(self.request_timeout)))
            except JobError as exc:
                responses.append(_err(exc.error_type, exc.message))
        return responses

    # -- control ops ---------------------------------------------------
    def _control(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        if op == "ping":
            return {
                "pong": True,
                "workers": self.workers,
                "queue_depth": self.queue_depth,
                "sessions": len(self.store),
            }
        if op == "open_session":
            return self._open_session(params)
        if op == "close_session":
            session_id = str(params.get("session"))
            self.store.close(session_id)
            self._registry.counter("service.sessions.closed").inc()
            return {"closed": session_id}
        if op == "sessions":
            return {"sessions": self.store.describe()}
        if op == "stats":
            return self.stats()
        if op == "metrics":
            return {"text": self.render_metrics()}
        raise ValueError(f"unknown control op {op!r}")

    # -- telemetry surface ---------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Live service counters: the ``stats`` op and ``/healthz`` body.

        Reads the registry's existing instruments (never creates any,
        so polling stats does not mint zero-valued metrics).
        """
        requests: Dict[str, float] = {}
        errors = 0.0
        for name, inst in self._registry.instruments().items():
            if name.startswith("service.requests."):
                requests[name[len("service.requests."):]] = inst.value
            elif name == "service.errors":
                errors = inst.value
        return {
            "uptime_s": round(
                max(0.0, obs.current_offset(self._tracer) - self._started_offset),
                3,
            ),
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "sessions": len(self.store),
            "requests": requests,
            "errors": errors,
            "latency": self.telemetry.snapshot(),
            "profiling": (
                {
                    "period_ms": self._profile.period_ms,
                    "samples": self._profile.samples,
                }
                if self._profile is not None
                else None
            ),
        }

    def render_metrics(self) -> str:
        """The service registry in Prometheus text format (``/metrics``)."""
        return obs.render_prometheus(self._registry, rolling=self.telemetry)

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` body: liveness plus the cheap gauges."""
        return {
            "status": "ok" if self._started else "stopped",
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "sessions": len(self.store),
        }

    def _open_session(self, params: Dict[str, Any]) -> Dict[str, Any]:
        data = params.get("gds")
        path = params.get("gds_path")
        if (data is None) == (path is None):
            raise ValueError("open_session needs exactly one of gds/gds_path")
        if data is None:
            data = Path(str(path)).read_bytes()
        if not isinstance(data, bytes):
            raise ValueError("gds payload must be bytes")
        rules = rules_from_mapping(params.get("rules") or {})
        config = FillConfig.from_mapping(params.get("config") or {})
        layout = layout_from_gdsii(data, rules)
        windows = int(params.get("windows", 8))
        grid = WindowGrid(layout.die, windows, windows)
        session = self.store.open(layout, grid, config)
        self._registry.counter("service.sessions.opened").inc()
        self._registry.gauge("service.sessions.evicted").set(self.store.evicted)
        return session.describe()

    # -- job execution (worker threads) --------------------------------
    def _install_obs(self) -> None:
        """Worker-thread init: adopt the service's tracer and registry.

        New threads see the context-variable *defaults*, not whatever
        ``record_run`` installed in the serving thread — without this,
        request spans and latency metrics would land in the process-
        wide fallback instruments and vanish from the run record.
        """
        obs.set_tracer(self._tracer)
        obs.set_registry(self._registry)

    def _execute(self, job: Job) -> None:
        session = job.session
        assert session is not None and job.ticket is not None
        samples_before = self._profile.samples if self._profile is not None else 0
        failed = False
        with obs.span(
            "service.request", op=job.op, session=session.id, job=job.id
        ) as sp:
            wait_s = max(
                0.0, obs.current_offset(self._tracer) - job.enqueued_offset
            )
            self._registry.histogram("service.queue.wait_s").observe(wait_s)
            sp.annotate(queue_wait_s=round(wait_s, 6))
            try:
                with self._maybe_profiled():
                    with session.ordered(job.ticket):
                        result = _COMPUTE_HANDLERS[job.op](self, session, job.params)
            except Exception as exc:
                failed = True
                self._registry.counter("service.errors").inc()
                sp.annotate(error_type=type(exc).__name__)
                job.fail(exc)
            else:
                self._registry.counter(f"service.requests.{job.op}").inc()
                job.succeed(result)
        if self._profile is not None:
            sp.annotate(profile_samples=self._profile.samples - samples_before)
        self._registry.histogram(f"service.latency.{job.op}").observe(sp.seconds)
        self._registry.gauge("service.queue.depth").set(len(self._queue))
        self.telemetry.observe(job.op, sp.seconds)
        self._report_request(sp, job, session.id, failed)

    def _maybe_profiled(self) -> Any:
        """Sampler over this worker thread for one request, if armed."""
        if self._profile is None:
            return contextlib.nullcontext()
        return obs.profile.attached(self._profile)

    def _report_request(
        self, sp: "obs.Span", job: Job, session_id: str, failed: bool
    ) -> None:
        """Emit the request's completion event; escalate slow requests.

        A request over ``slow_ms`` emits a warning-level event carrying
        the request's whole span tree inline, so the offending stages
        are in the event stream without fishing out the run record.
        """
        seconds = sp.seconds
        slow = self.slow_ms is not None and seconds * 1000.0 >= self.slow_ms
        if slow:
            self._registry.counter("service.requests.slow").inc()
            obs.events.emit(
                "slow_request",
                level="warning",
                op=job.op,
                job=job.id,
                session=session_id,
                seconds=round(seconds, 6),
                threshold_ms=self.slow_ms,
                failed=failed,
                span_tree=[s.as_dict(d) for d, s in sp.walk()],
            )
        else:
            obs.events.emit(
                "request",
                level="info",
                op=job.op,
                job=job.id,
                session=session_id,
                seconds=round(seconds, 6),
                failed=failed,
            )

    # -- compute handlers (inside session.ordered) ---------------------
    def _handle_fill(
        self, session: FillSession, params: Dict[str, Any]
    ) -> Dict[str, Any]:
        session.ensure_caches()
        work = session.layout.copy_without_fills()
        engine = DummyFillEngine(session.config)
        report = engine.run(
            work,
            session.grid,
            analysis=session.analysis,
            wire_indexes=session.wire_indexes,
        )
        violations = work.check_drc()
        data = gdsii_bytes(work)
        session.layout = work
        session.last_report = report
        return {
            "gds": data,
            "summary": report.summary(),
            "num_fills": work.num_fills,
            "drc_violations": len(violations),
        }

    def _handle_score(
        self, session: FillSession, params: Dict[str, Any]
    ) -> Dict[str, Any]:
        layout = session.layout
        grid = session.grid
        reference = layout.copy_without_fills()
        ref_grid = WindowGrid(reference.die, grid.cols, grid.rows)
        weights = calibrate_weights(reference, ref_grid, 60.0, 1024.0)
        size = file_size_mb(len(gdsii_bytes(layout)))
        card = score_layout(layout, grid, weights, file_size=size)
        return {"scores": dict(card.as_row())}

    def _handle_drc_audit(
        self, session: FillSession, params: Dict[str, Any]
    ) -> Dict[str, Any]:
        violations = session.layout.check_drc()
        return {
            "count": len(violations),
            "violations": [str(v) for v in violations[:50]],
        }

    def _handle_eco_delta(
        self, session: FillSession, params: Dict[str, Any]
    ) -> Dict[str, Any]:
        wires = wires_from_json(params.get("wires") or {})
        if not wires:
            raise ValueError("eco_delta needs a non-empty 'wires' mapping")
        session.ensure_caches()
        report = apply_eco(
            session.layout,
            session.grid,
            wires,
            session.config,
            analysis=session.analysis,
            wire_indexes=session.wire_indexes,
            fill_indexes=build_fill_indexes(session.layout),
        )
        if report.analysis is not None:
            session.analysis = report.analysis
        data = gdsii_bytes(session.layout)
        return {
            "gds": data,
            "summary": report.summary(),
            "new_wires": report.new_wires,
            "removed_fills": report.removed_fills,
            "new_fills": report.new_fills,
            "affected_windows": len(report.affected_windows),
        }


_COMPUTE_HANDLERS = {
    "fill": FillService._handle_fill,
    "score": FillService._handle_score,
    "drc_audit": FillService._handle_drc_audit,
    "eco_delta": FillService._handle_eco_delta,
}



def _ok(result: Dict[str, Any]) -> Dict[str, Any]:
    return {"ok": True, "result": result}


def _err(error_type: str, message: str) -> Dict[str, Any]:
    return {"ok": False, "error": {"type": error_type, "message": message}}


class ServiceClient:
    """In-process client: the same request surface as the socket client.

    Used by tests and benchmarks to drive a :class:`FillService`
    without a socket; results carry raw ``bytes`` where the wire
    protocol would carry base64.
    """

    def __init__(self, service: FillService):
        self.service = service

    def request(self, op: str, **params: Any) -> Dict[str, Any]:
        """Execute one op; returns its result or raises :class:`JobError`."""
        response = self.service.handle({"op": op, **params})
        if response["ok"]:
            result: Dict[str, Any] = response["result"]
            return result
        error = response["error"]
        raise JobError(error["type"], error["message"])

    def batch(self, requests: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
        """Submit a batch; returns per-request response dicts in order."""
        result = self.request("batch", requests=list(requests))
        responses: List[Dict[str, Any]] = result["responses"]
        return responses
