"""Argument wiring and run loop for ``repro serve``.

Kept here so :mod:`repro.cli` stays a thin command table; the main CLI
adds the subparser via :func:`configure_parser` and runs the loop via
:func:`run_serve` inside its usual observation context — meaning
``repro serve --trace-out trace.jsonl`` produces one run record whose
roots are the per-request ``service.request`` spans, readable with
``repro trace summarize`` and exportable with
``repro trace export --format chrome``.
"""

from __future__ import annotations

import argparse

from ..obs.expose import TelemetryServer
from .api import FillService
from .server import ServiceServer

__all__ = ["configure_parser", "run_serve"]


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Add the ``repro serve`` arguments to a subparser."""
    transport = parser.add_argument_group("transport (pick one)")
    transport.add_argument(
        "--socket",
        metavar="PATH",
        help="serve on a Unix-domain socket at PATH (default: repro.sock)",
    )
    transport.add_argument(
        "--port",
        type=int,
        metavar="N",
        help="serve on localhost TCP port N instead (0 picks a free port)",
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        metavar="N",
        help="service worker threads executing queued requests "
        "(default: 2; per-session order is kept for any N)",
    )
    parser.add_argument(
        "--queue-size",
        type=int,
        default=64,
        metavar="N",
        help="job queue capacity; full queues reject with an error "
        "response instead of buffering (default: 64)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=8,
        metavar="N",
        help="open sessions kept before LRU eviction (default: 8)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="per-request wait bound before answering with an error "
        "(default: 600)",
    )
    telemetry = parser.add_argument_group("live telemetry")
    telemetry.add_argument(
        "--metrics-port",
        type=int,
        metavar="N",
        help="also serve HTTP GET /metrics (Prometheus text format) and "
        "/healthz on localhost port N (0 picks a free port)",
    )
    telemetry.add_argument(
        "--slow-ms",
        type=float,
        metavar="MS",
        help="emit a warning event with the request's span tree inline "
        "for any request slower than MS milliseconds",
    )
    telemetry.add_argument(
        "--profile-ms",
        type=float,
        metavar="MS",
        help="sample every request's worker thread at this period; "
        "folded stacks land in the run record (--trace-out) for "
        "`repro trace export --format folded`",
    )


def run_serve(args: argparse.Namespace) -> int:
    """Start the service and serve until a client sends ``shutdown``."""
    if args.socket is not None and args.port is not None:
        raise SystemExit("repro serve: pass only one of --socket/--port")
    socket_path = args.socket if args.port is None else None
    if socket_path is None and args.port is None:
        socket_path = "repro.sock"

    service = FillService(
        workers=args.serve_workers,
        max_sessions=args.max_sessions,
        queue_size=args.queue_size,
        request_timeout=args.request_timeout,
        slow_ms=args.slow_ms,
        profile_ms=args.profile_ms,
    )
    with service:
        telemetry = None
        if args.metrics_port is not None:
            telemetry = TelemetryServer(
                service.render_metrics,
                health=service.health,
                port=args.metrics_port,
            ).start()
        server = ServiceServer(service, socket_path=socket_path, port=args.port)
        try:
            with server:
                print(
                    f"serving on {server.address} "
                    f"(workers={service.workers}, queue={args.queue_size}, "
                    f"sessions<={args.max_sessions}); send op=shutdown to stop",
                    flush=True,
                )
                if telemetry is not None:
                    print(
                        f"metrics on {telemetry.address}/metrics "
                        f"(health: {telemetry.address}/healthz)",
                        flush=True,
                    )
                server.wait_shutdown()
        finally:
            if telemetry is not None:
                telemetry.stop()
    print("shutdown requested; server stopped", flush=True)
    return 0
