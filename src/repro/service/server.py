"""Socket server: `repro serve`'s accept loop and connection handling.

Listens on a Unix-domain socket (default) or localhost TCP, speaks the
NDJSON protocol of :mod:`repro.service.protocol`, and forwards every
decoded request to :meth:`repro.service.api.FillService.handle`.  Each
connection gets a reader thread; requests on one connection are
answered in order, while the service's job queue interleaves compute
across connections.

The ``shutdown`` op is handled here, not in the service: the server
answers it (so the client sees the acknowledgement), then signals
:meth:`wait_shutdown` — the CLI's serve loop wakes, stops the server
and the service, and lets the surrounding ``--trace-out`` record close
cleanly with every request span inside.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
from typing import Any, Dict, List, Optional

from .api import FillService
from .protocol import MAX_LINE_BYTES, ProtocolError, decode_message, encode_message

__all__ = ["ServiceServer"]

logger = logging.getLogger(__name__)


class ServiceServer:
    """Accepts protocol connections and dispatches to a service."""

    def __init__(
        self,
        service: FillService,
        *,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
    ):
        if (socket_path is None) == (port is None):
            raise ValueError("serve on exactly one of socket_path/port")
        self.service = service
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._shutdown = threading.Event()
        self._started = False

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServiceServer":
        if self._started:
            raise RuntimeError("server already started")
        if self.socket_path is not None:
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            listener.bind(self.socket_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port or 0))
            self.port = listener.getsockname()[1]
        listener.listen(16)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        self._started = True
        return self

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return self.socket_path
        return f"{self.host}:{self.port}"

    def client_args(self) -> Dict[str, Any]:
        """Keyword arguments that connect a ``SocketClient`` here."""
        if self.socket_path is not None:
            return {"socket_path": self.socket_path}
        return {"host": self.host, "port": self.port}

    def request_shutdown(self) -> None:
        self._shutdown.set()

    def wait_shutdown(self, timeout: Optional[float] = None) -> bool:
        """Block until a client sent ``shutdown`` (or timeout)."""
        return self._shutdown.wait(timeout)

    def stop(self) -> None:
        """Close the listener, wake the accept loop, join handlers."""
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(5.0)
        with self._lock:
            threads = list(self._conn_threads)
        for thread in threads:
            thread.join(5.0)
        if self.socket_path is not None and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self._started = False

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- connection handling -------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._shutdown.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._handle_connection,
                args=(conn,),
                name="repro-serve-conn",
                daemon=True,
            )
            with self._lock:
                self._conn_threads.append(thread)
            thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        rfile = conn.makefile("rb")
        try:
            while True:
                line = rfile.readline(MAX_LINE_BYTES + 1)
                if not line:
                    return
                response = self._respond(line)
                stopping = bool(response.pop("_shutdown", False))
                try:
                    conn.sendall(encode_message(response))
                except OSError:
                    return
                if stopping:
                    self.request_shutdown()
                    return
        finally:
            try:
                rfile.close()
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _respond(self, line: bytes) -> Dict[str, Any]:
        try:
            request = decode_message(line)
        except ProtocolError as exc:
            return {
                "id": None,
                "ok": False,
                "error": {"type": "ProtocolError", "message": str(exc)},
            }
        request_id = request.get("id")
        op = request.get("op")
        if op == "shutdown":
            # answered here, then the serve loop tears everything down
            return {
                "id": request_id,
                "ok": True,
                "result": {"stopping": True},
                "_shutdown": True,
            }
        try:
            body = self.service.handle(request)
        except Exception as exc:  # handle() shouldn't raise; belt and braces
            logger.exception("unhandled error in request dispatch")
            body = {
                "ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
        return {"id": request_id, **body}
