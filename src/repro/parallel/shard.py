"""Deterministic sharding of an ordered work list.

The engine's work lists are window keys in grid order (column-major,
the Eqn. (1) order).  Shards must be *contiguous* slices of that
order: concatenating the shard results then equals the serial result
exactly, which is what makes ``workers=N`` bit-identical to
``workers=1``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

__all__ = ["shard_bounds", "shard_items"]

T = TypeVar("T")


def shard_bounds(total: int, num_shards: int) -> List[Tuple[int, int]]:
    """Half-open ``[start, end)`` index ranges of contiguous shards.

    The partition rule behind :func:`shard_items`, exposed for callers
    that shard an *implicit* sequence (the streaming pipeline's
    window-column bands): sizes differ by at most one, the first
    ``total % num_shards`` shards get the extra item, ranges preserve
    order and tile ``[0, total)`` exactly.  Empty ranges are never
    returned; fewer items than shards yields one range per item.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    if total == 0:
        return []
    shards = min(num_shards, total)
    base, extra = divmod(total, shards)
    out: List[Tuple[int, int]] = []
    start = 0
    for k in range(shards):
        size = base + (1 if k < extra else 0)
        out.append((start, start + size))
        start += size
    return out


def shard_items(items: Sequence[T], num_shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``num_shards`` contiguous chunks.

    Chunk sizes differ by at most one (the first ``len % num_shards``
    chunks get the extra item), chunks preserve the input order, and
    their concatenation is exactly ``items``.  Empty chunks are never
    returned: fewer items than shards yields one chunk per item.
    """
    return [
        list(items[start:end])
        for start, end in shard_bounds(len(items), num_shards)
    ]
