"""Deterministic sharding of an ordered work list.

The engine's work lists are window keys in grid order (column-major,
the Eqn. (1) order).  Shards must be *contiguous* slices of that
order: concatenating the shard results then equals the serial result
exactly, which is what makes ``workers=N`` bit-identical to
``workers=1``.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

__all__ = ["shard_items"]

T = TypeVar("T")


def shard_items(items: Sequence[T], num_shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``num_shards`` contiguous chunks.

    Chunk sizes differ by at most one (the first ``len % num_shards``
    chunks get the extra item), chunks preserve the input order, and
    their concatenation is exactly ``items``.  Empty chunks are never
    returned: fewer items than shards yields one chunk per item.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be at least 1")
    n = len(items)
    if n == 0:
        return []
    shards = min(num_shards, n)
    base, extra = divmod(n, shards)
    out: List[List[T]] = []
    start = 0
    for k in range(shards):
        size = base + (1 if k < extra else 0)
        out.append(list(items[start : start + size]))
        start += size
    return out
