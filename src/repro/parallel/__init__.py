"""``repro.parallel`` — sharded parallel execution.

The engine's heavy stages are embarrassingly parallel over an ordered
work list: candidate generation (Alg. 1, §3.2) and fill sizing (§3.3)
iterate the fixed-dissection windows with no cross-window data flow,
and density analysis (§3.1 preliminaries) is per-layer independent.
They all parallelize the same way — *shard the ordered work list*
(window keys in grid order, layers in layer order): split it into
contiguous chunks, run each chunk on a worker, and merge the per-item
results back in list order.  This package is that execution layer:

* :func:`~repro.parallel.shard.shard_items` — deterministic contiguous
  sharding of an ordered work list,
* :func:`~repro.parallel.executor.run_sharded` — run a picklable
  ``fn(shared, shard)`` over every shard on a process pool (or a
  thread pool / inline, per the backend), returning shard results in
  shard order.

Workers capture their own :mod:`repro.obs` spans and metrics on a
fresh tracer/registry, ship them back with the shard result, and
:func:`run_sharded` grafts them into the parent span tree
(:func:`repro.obs.adopt`) and registry
(:meth:`~repro.obs.MetricsRegistry.merge_from`) in shard order — so
``stage_seconds``, BENCH records and ``repro trace`` see one
deterministic tree regardless of worker count.

Determinism contract: for a pure ``fn``, the merged output of
``workers=N`` is identical for every ``N`` (including the serial
backend), because shards partition the ordered work list contiguously
and results merge in shard order.  See ``docs/PERFORMANCE.md``.

The *shard sanitizer* (``REPRO_SANITIZE=shard``, ``FillConfig.sanitize``
or ``run_sharded(..., sanitize=True)``) enforces the pure-worker half
of that contract at runtime: it pickle-digests the shared state around
every shard and raises :class:`ShardMutationError` on any change —
the dynamic counterpart to the static REP009 rule.
"""

from .executor import (
    BACKENDS,
    ParallelConfigError,
    ShardMutationError,
    ShardOutcome,
    resolve_workers,
    run_sharded,
    sanitize_enabled,
)
from .shard import shard_bounds, shard_items

__all__ = [
    "BACKENDS",
    "ParallelConfigError",
    "ShardMutationError",
    "ShardOutcome",
    "resolve_workers",
    "run_sharded",
    "sanitize_enabled",
    "shard_bounds",
    "shard_items",
]
