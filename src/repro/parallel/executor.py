"""Sharded execution with worker-side observability capture.

:func:`run_sharded` is the one entry point: it runs a picklable
``fn(shared, shard)`` over every shard and returns the results in
shard order.  Three backends:

* ``"process"`` — a :class:`concurrent.futures.ProcessPoolExecutor`;
  ``shared`` is shipped to each worker **once** (pool initializer), so
  large read-only state (per-layer wire indexes) is not re-pickled per
  shard.  Falls back to the serial backend when the pool cannot start
  (restricted sandboxes without working semaphores).
* ``"thread"`` — a :class:`concurrent.futures.ThreadPoolExecutor`.
  Pure-Python shard bodies serialize on the GIL, so this backend is
  for I/O-bound shard functions and for exercising the merge path
  without process startup; results are still deterministic.
* ``"serial"`` — runs shards inline, in order.  Same sharding, same
  span/metric capture and merge as the pools — the reference the
  determinism tests compare the pools against.

Every shard executes under a fresh :class:`repro.obs.Tracer` and
:class:`repro.obs.MetricsRegistry`, wrapped in one ``<label>[k]`` span
annotated with the shard size.  The captured span roots and the
registry's instruments travel back with the return value
(:class:`ShardOutcome`) and are merged into the caller's tracer and
registry *in shard order* — shard k's spans always precede shard
k+1's, whichever finished first — so run records stay deterministic.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..obs.metrics import Instrument, MetricsRegistry, set_registry
from ..obs.profile import ProfileCollector, SamplingProfiler, active_collector
from ..obs.spans import Span, Tracer, set_tracer

__all__ = [
    "BACKENDS",
    "ParallelConfigError",
    "ShardMutationError",
    "ShardOutcome",
    "resolve_workers",
    "run_sharded",
    "sanitize_enabled",
]

#: recognised execution backends
BACKENDS = ("process", "thread", "serial")

#: environment switch for the shard sanitizer (``REPRO_SANITIZE=shard``)
_SANITIZE_ENV = "REPRO_SANITIZE"
_SANITIZE_MODE = "shard"

ShardFn = Callable[[Any, Sequence[Any]], Any]


class ParallelConfigError(ValueError):
    """A parallel knob names an unknown backend or worker count."""


class ShardMutationError(RuntimeError):
    """A shard worker mutated its shared state (sanitizer violation).

    ``run_sharded``'s contract says ``shared`` is read-only: on the
    process backend each worker holds its own copy, so a mutation is
    *silently dropped* there but becomes real cross-shard interference
    on the thread and serial backends — the worst kind of
    backend-dependent bug.  The shard sanitizer pickles ``shared``
    before and after each shard and raises this error on any digest
    change, on every backend, so the mutation is caught where it
    happens instead of surfacing as a bit-identity diff three stages
    later.
    """


@dataclass
class ShardOutcome:
    """One shard's return value plus its captured observability.

    ``input_digest``/``output_digest`` are sha256 hex digests of the
    pickled shared state and shard result, populated only when the
    shard sanitizer is active (``None`` otherwise, at zero cost).
    """

    index: int
    value: Any
    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, Instrument] = field(default_factory=dict)
    input_digest: Optional[str] = None
    output_digest: Optional[str] = None
    #: worker-side folded profiler samples (``stack -> count``);
    #: ``None`` unless the caller had a profile collector armed
    profile: Optional[Dict[str, int]] = None


def resolve_workers(workers: int) -> int:
    """Effective worker count: ``0`` means one per available core."""
    if workers < 0:
        raise ParallelConfigError("workers cannot be negative")
    if workers == 0:
        return max(1, os.cpu_count() or 1)
    return workers


def sanitize_enabled(sanitize: Optional[bool] = None) -> bool:
    """Resolve the sanitizer switch: explicit flag, else the environment.

    ``None`` (the default everywhere) defers to ``REPRO_SANITIZE=shard``
    so CI can arm the sanitizer for a whole test run without touching
    call sites; ``True``/``False`` from config or CLI wins over the
    environment.
    """
    if sanitize is not None:
        return sanitize
    return os.environ.get(_SANITIZE_ENV, "") == _SANITIZE_MODE


def _digest(obj: Any, what: str, label: str, index: int) -> str:
    """sha256 of the pickled object; sanitizer-flavoured error if not picklable."""
    try:
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ShardMutationError(
            f"shard sanitizer could not pickle the {what} of {label}[{index}]: "
            f"{exc} (run_sharded requires picklable workers and state; "
            "see REP010)"
        ) from exc
    return hashlib.sha256(payload).hexdigest()


def _execute(
    fn: ShardFn,
    shared: Any,
    index: int,
    shard: Sequence[Any],
    label: str,
    sanitize: bool = False,
    profile_ms: Optional[float] = None,
) -> ShardOutcome:
    """Run one shard under a fresh tracer/registry and capture both.

    ``profile_ms`` arms a worker-local sampling profiler for the
    shard's duration (pool backends only — the serial path runs in the
    caller's thread, which the caller's own sampler already covers);
    its folded counts ship back on the outcome for shard-order merge.
    """
    tracer = Tracer()
    registry = MetricsRegistry()
    restore_tracer = set_tracer(tracer)
    restore_registry = set_registry(registry)
    input_digest: Optional[str] = None
    output_digest: Optional[str] = None
    collector: Optional[ProfileCollector] = None
    sampler: Optional[SamplingProfiler] = None
    if profile_ms is not None:
        collector = ProfileCollector(period_ms=profile_ms)
        sampler = SamplingProfiler(collector, tracer=tracer).start()
    try:
        with obs.span(f"{label}[{index}]") as sp:
            sp.annotate(shard=index, items=len(shard))
            if sanitize:
                input_digest = _digest(shared, "shared state", label, index)
            value = fn(shared, shard)
            if sanitize:
                after = _digest(shared, "shared state", label, index)
                output_digest = _digest(value, "result", label, index)
                sp.annotate(input_digest=input_digest, output_digest=output_digest)
                if after != input_digest:
                    raise ShardMutationError(
                        f"shard worker {getattr(fn, '__name__', fn)!r} mutated "
                        f"its shared state in {label}[{index}]: pickle digest "
                        f"{input_digest[:12]} -> {after[:12]}. Shared state is "
                        "read-only by contract (REP009); return per-shard "
                        "results instead of writing through `shared`."
                    )
    finally:
        if sampler is not None:
            sampler.stop()
        restore_registry()
        restore_tracer()
    return ShardOutcome(
        index,
        value,
        tracer.roots,
        registry.instruments(),
        input_digest,
        output_digest,
        collector.folded_snapshot() if collector is not None else None,
    )


# -- process backend ---------------------------------------------------
# The pool initializer parks (fn, shared) in a module global so each
# worker unpickles the shared state once, not once per shard.
_WORKER_FN: ShardFn = None  # type: ignore[assignment]
_WORKER_SHARED: Any = None


def _init_worker(fn: ShardFn, shared: Any) -> None:
    global _WORKER_FN, _WORKER_SHARED
    _WORKER_FN = fn
    _WORKER_SHARED = shared


def _run_in_worker(
    task: Tuple[int, Sequence[Any], str, bool, Optional[float]],
) -> ShardOutcome:
    index, shard, label, sanitize, profile_ms = task
    return _execute(
        _WORKER_FN, _WORKER_SHARED, index, shard, label, sanitize, profile_ms
    )


def _start_pool(fn: ShardFn, shared: Any, workers: int) -> ProcessPoolExecutor:
    """Construct the process pool (the only step allowed to fall back).

    Pool construction is where restricted sandboxes fail — creating the
    call/result queues needs working POSIX semaphores — so it is kept
    separate from running the shards: a failure *here* degrades to the
    serial backend, a failure inside a shard fn is a genuine error and
    propagates.
    """
    context = multiprocessing.get_context()
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(fn, shared),
    )


def _map_serial(
    fn: ShardFn,
    shared: Any,
    shards: Sequence[Sequence[Any]],
    label: str,
    sanitize: bool,
) -> List[ShardOutcome]:
    return [
        _execute(fn, shared, k, shard, label, sanitize)
        for k, shard in enumerate(shards)
    ]


def _map_thread(
    fn: ShardFn,
    shared: Any,
    shards: Sequence[Sequence[Any]],
    workers: int,
    label: str,
    sanitize: bool,
    profile_ms: Optional[float],
) -> List[ShardOutcome]:
    with ThreadPoolExecutor(max_workers=min(workers, len(shards))) as pool:
        return list(
            pool.map(
                lambda task: _execute(
                    fn, shared, task[0], task[1], label, sanitize, profile_ms
                ),
                [(k, shard) for k, shard in enumerate(shards)],
            )
        )


def run_sharded(
    fn: ShardFn,
    shared: Any,
    shards: Sequence[Sequence[Any]],
    *,
    workers: int,
    backend: str = "process",
    label: str = "shard",
    sanitize: Optional[bool] = None,
) -> List[Any]:
    """Run ``fn(shared, shard)`` over every shard; results in shard order.

    ``fn`` must be a module-level (picklable) callable and ``shared``
    read-only picklable state for the process backend.  Worker spans
    and metrics are merged into the caller's active tracer/registry in
    shard order before returning.  ``workers`` is the resolved count
    (see :func:`resolve_workers`); the pool size never exceeds the
    shard count.

    ``sanitize`` arms the shard sanitizer: each worker pickle-digests
    ``shared`` before and after running and raises
    :class:`ShardMutationError` on any change, recording input/output
    digests on the shard's span and :class:`ShardOutcome`.  The default
    ``None`` defers to ``REPRO_SANITIZE=shard`` in the environment.
    """
    if backend not in BACKENDS:
        raise ParallelConfigError(
            f"unknown parallel backend {backend!r} (expected one of {BACKENDS})"
        )
    if not shards:
        return []
    workers = resolve_workers(workers)
    sanitizing = sanitize_enabled(sanitize)
    # When a profile collector is armed in this context, pool workers
    # run their own sampler at the same period and ship folded counts
    # back; serial execution stays unprofiled here because it runs in
    # the caller's thread, already covered by the caller's sampler.
    collector = active_collector()
    profile_ms = collector.period_ms if collector is not None else None
    if backend == "process" and workers > 1:
        pool = None
        try:
            pool = _start_pool(fn, shared, min(workers, len(shards)))
        except (OSError, PermissionError):
            # Sandboxes without working POSIX semaphores / fork: degrade
            # to in-process execution rather than failing the run.  Only
            # pool *startup* may fall back — an exception raised by the
            # shard fn itself must propagate, not silently re-run every
            # shard serially and mask the original failure.
            outcomes = _map_serial(fn, shared, shards, label, sanitizing)
        if pool is not None:
            tasks = [
                (k, shard, label, sanitizing, profile_ms)
                for k, shard in enumerate(shards)
            ]
            with pool:
                outcomes = list(pool.map(_run_in_worker, tasks))
    elif backend == "thread" and workers > 1:
        outcomes = _map_thread(
            fn, shared, shards, workers, label, sanitizing, profile_ms
        )
    else:
        outcomes = _map_serial(fn, shared, shards, label, sanitizing)
    registry = obs.active_registry()
    prefix = ";".join(obs.active_tracer().stack_names()) or None
    for outcome in outcomes:  # shard order == merge order
        obs.adopt(outcome.spans)
        registry.merge_from(outcome.metrics)
        if collector is not None and outcome.profile:
            # re-root the worker's stacks under the caller's open span
            # path, e.g. "engine.run;candidates;candidates.shard[0];..."
            collector.merge_folded(outcome.profile, prefix=prefix)
    return [outcome.value for outcome in outcomes]
