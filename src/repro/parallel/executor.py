"""Sharded execution with worker-side observability capture.

:func:`run_sharded` is the one entry point: it runs a picklable
``fn(shared, shard)`` over every shard and returns the results in
shard order.  Three backends:

* ``"process"`` — a :class:`concurrent.futures.ProcessPoolExecutor`;
  ``shared`` is shipped to each worker **once** (pool initializer), so
  large read-only state (per-layer wire indexes) is not re-pickled per
  shard.  Falls back to the serial backend when the pool cannot start
  (restricted sandboxes without working semaphores).
* ``"thread"`` — a :class:`concurrent.futures.ThreadPoolExecutor`.
  Pure-Python shard bodies serialize on the GIL, so this backend is
  for I/O-bound shard functions and for exercising the merge path
  without process startup; results are still deterministic.
* ``"serial"`` — runs shards inline, in order.  Same sharding, same
  span/metric capture and merge as the pools — the reference the
  determinism tests compare the pools against.

Every shard executes under a fresh :class:`repro.obs.Tracer` and
:class:`repro.obs.MetricsRegistry`, wrapped in one ``<label>[k]`` span
annotated with the shard size.  The captured span roots and the
registry's instruments travel back with the return value
(:class:`ShardOutcome`) and are merged into the caller's tracer and
registry *in shard order* — shard k's spans always precede shard
k+1's, whichever finished first — so run records stay deterministic.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from .. import obs
from ..obs.metrics import Instrument, MetricsRegistry, set_registry
from ..obs.spans import Span, Tracer, set_tracer

__all__ = [
    "BACKENDS",
    "ParallelConfigError",
    "ShardOutcome",
    "resolve_workers",
    "run_sharded",
]

#: recognised execution backends
BACKENDS = ("process", "thread", "serial")

ShardFn = Callable[[Any, Sequence[Any]], Any]


class ParallelConfigError(ValueError):
    """A parallel knob names an unknown backend or worker count."""


@dataclass
class ShardOutcome:
    """One shard's return value plus its captured observability."""

    index: int
    value: Any
    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, Instrument] = field(default_factory=dict)


def resolve_workers(workers: int) -> int:
    """Effective worker count: ``0`` means one per available core."""
    if workers < 0:
        raise ParallelConfigError("workers cannot be negative")
    if workers == 0:
        return max(1, os.cpu_count() or 1)
    return workers


def _execute(
    fn: ShardFn,
    shared: Any,
    index: int,
    shard: Sequence[Any],
    label: str,
) -> ShardOutcome:
    """Run one shard under a fresh tracer/registry and capture both."""
    tracer = Tracer()
    registry = MetricsRegistry()
    restore_tracer = set_tracer(tracer)
    restore_registry = set_registry(registry)
    try:
        with obs.span(f"{label}[{index}]") as sp:
            sp.annotate(shard=index, items=len(shard))
            value = fn(shared, shard)
    finally:
        restore_registry()
        restore_tracer()
    return ShardOutcome(index, value, tracer.roots, registry.instruments())


# -- process backend ---------------------------------------------------
# The pool initializer parks (fn, shared) in a module global so each
# worker unpickles the shared state once, not once per shard.
_WORKER_FN: ShardFn = None  # type: ignore[assignment]
_WORKER_SHARED: Any = None


def _init_worker(fn: ShardFn, shared: Any) -> None:
    global _WORKER_FN, _WORKER_SHARED
    _WORKER_FN = fn
    _WORKER_SHARED = shared


def _run_in_worker(task: Tuple[int, Sequence[Any], str]) -> ShardOutcome:
    index, shard, label = task
    return _execute(_WORKER_FN, _WORKER_SHARED, index, shard, label)


def _start_pool(fn: ShardFn, shared: Any, workers: int) -> ProcessPoolExecutor:
    """Construct the process pool (the only step allowed to fall back).

    Pool construction is where restricted sandboxes fail — creating the
    call/result queues needs working POSIX semaphores — so it is kept
    separate from running the shards: a failure *here* degrades to the
    serial backend, a failure inside a shard fn is a genuine error and
    propagates.
    """
    context = multiprocessing.get_context()
    return ProcessPoolExecutor(
        max_workers=workers,
        mp_context=context,
        initializer=_init_worker,
        initargs=(fn, shared),
    )


def _map_serial(
    fn: ShardFn,
    shared: Any,
    shards: Sequence[Sequence[Any]],
    label: str,
) -> List[ShardOutcome]:
    return [_execute(fn, shared, k, shard, label) for k, shard in enumerate(shards)]


def _map_thread(
    fn: ShardFn,
    shared: Any,
    shards: Sequence[Sequence[Any]],
    workers: int,
    label: str,
) -> List[ShardOutcome]:
    with ThreadPoolExecutor(max_workers=min(workers, len(shards))) as pool:
        return list(
            pool.map(
                lambda task: _execute(fn, shared, task[0], task[1], label),
                [(k, shard) for k, shard in enumerate(shards)],
            )
        )


def run_sharded(
    fn: ShardFn,
    shared: Any,
    shards: Sequence[Sequence[Any]],
    *,
    workers: int,
    backend: str = "process",
    label: str = "shard",
) -> List[Any]:
    """Run ``fn(shared, shard)`` over every shard; results in shard order.

    ``fn`` must be a module-level (picklable) callable and ``shared``
    read-only picklable state for the process backend.  Worker spans
    and metrics are merged into the caller's active tracer/registry in
    shard order before returning.  ``workers`` is the resolved count
    (see :func:`resolve_workers`); the pool size never exceeds the
    shard count.
    """
    if backend not in BACKENDS:
        raise ParallelConfigError(
            f"unknown parallel backend {backend!r} (expected one of {BACKENDS})"
        )
    if not shards:
        return []
    workers = resolve_workers(workers)
    if backend == "process" and workers > 1:
        pool = None
        try:
            pool = _start_pool(fn, shared, min(workers, len(shards)))
        except (OSError, PermissionError):
            # Sandboxes without working POSIX semaphores / fork: degrade
            # to in-process execution rather than failing the run.  Only
            # pool *startup* may fall back — an exception raised by the
            # shard fn itself must propagate, not silently re-run every
            # shard serially and mask the original failure.
            outcomes = _map_serial(fn, shared, shards, label)
        if pool is not None:
            tasks = [(k, shard, label) for k, shard in enumerate(shards)]
            with pool:
                outcomes = list(pool.map(_run_in_worker, tasks))
    elif backend == "thread" and workers > 1:
        outcomes = _map_thread(fn, shared, shards, workers, label)
    else:
        outcomes = _map_serial(fn, shared, shards, label)
    registry = obs.active_registry()
    for outcome in outcomes:  # shard order == merge order
        obs.adopt(outcome.spans)
        registry.merge_from(outcome.metrics)
    return [outcome.value for outcome in outcomes]
