"""ECO (engineering change order) incremental re-fill.

When a routed design changes after fill — a repaired net, a late buffer
insertion — rerunning fill from scratch churns the whole GDSII and
invalidates downstream signoff on untouched regions.  Production flows
instead patch incrementally:

1. commit the new/modified wires,
2. rip up only the fills the change invalidated (spacing conflicts with
   the new wires) plus everything in the windows the change touched,
3. re-fill exactly those windows, keeping the original target density
   discipline so the patched regions blend into the rest.

:func:`apply_eco` implements that flow on top of the engine's
window-restricted mode.  Everything outside the affected windows is
byte-identical before and after (the stability the tests assert).

For a one-shot call the function rescans the layout; a caller holding a
loaded session (:mod:`repro.service`) instead passes its cached
per-layer density ``analysis``, ``wire_indexes`` and ``fill_indexes``,
and the flow touches only the dirtied windows end to end: rip-up
becomes an index query instead of an all-fills scan, and density
analysis is refreshed per dirtied window via
:func:`repro.density.analysis.refresh_analysis` instead of recomputed
globally.  Both paths produce bit-identical layouts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from . import obs
from .core import DummyFillEngine, FillConfig
from .density.analysis import LayerDensity, refresh_analysis
from .density.scoring import ScoreWeights
from .geometry import GridIndex, Rect
from .layout import Layout, WindowGrid

__all__ = [
    "EcoReport",
    "apply_eco",
    "affected_windows",
    "build_fill_indexes",
    "wires_from_json",
]

WindowKey = Tuple[int, int]


@dataclass
class EcoReport:
    """Outcome of an incremental re-fill.

    ``analysis`` and ``wire_indexes`` carry the refreshed session
    caches when the caller supplied cached state — valid for the
    post-ECO layout, ready to be stored back on the session.  They are
    ``None`` on the cold (cache-free) path.
    """

    new_wires: int
    removed_fills: int
    affected_windows: List[WindowKey]
    new_fills: int
    seconds: float
    analysis: Optional[Dict[int, LayerDensity]] = field(default=None, repr=False)
    wire_indexes: Optional[Dict[int, "GridIndex[int]"]] = field(
        default=None, repr=False
    )

    def summary(self) -> str:
        return (
            f"ECO: {self.new_wires} new wires -> ripped {self.removed_fills} "
            f"fills in {len(self.affected_windows)} windows, "
            f"re-inserted {self.new_fills} ({self.seconds:.2f}s)"
        )


def affected_windows(
    grid: WindowGrid,
    new_wires: Mapping[int, Sequence[Rect]],
    halo: int,
) -> Set[WindowKey]:
    """Windows whose fill a wire change can invalidate.

    A new wire affects its own windows plus any window within ``halo``
    (spacing rule + sizing trust region) of it — fills just across a
    window boundary may now violate spacing against the wire.
    """
    affected: Set[WindowKey] = set()
    for rects in new_wires.values():
        for rect in rects:
            grown = rect.expanded(halo).intersection(grid.die)
            if grown is None:
                continue
            affected.update(grid.windows_touching(grown))
    return affected


def build_fill_indexes(layout: Layout) -> Dict[int, "GridIndex[int]"]:
    """One spatial index per layer over its *fills*.

    The rip-up stage's counterpart to
    :func:`repro.core.candidates.build_wire_indexes`: lets
    :func:`apply_eco` find the fills touching the affected windows by
    query instead of scanning every fill against every window.
    Payloads are the fill's ordinal in ``layer.fills``, so order-
    preserving removal needs no rect comparisons.
    """
    cell = max(64, min(layout.die.width, layout.die.height) // 16)
    out: Dict[int, GridIndex[int]] = {}
    for layer in layout.layers:
        index: GridIndex[int] = GridIndex(cell)
        for k, rect in enumerate(layer.fills):
            index.insert(rect, k)
        out[layer.number] = index
    return out


def wires_from_json(data: Mapping[str, Any]) -> Dict[int, List[Rect]]:
    """Parse the wire-change spec of an ECO request.

    The wire format of the ``repro eco`` CLI and the service's
    ``eco_delta`` op: layer numbers (as JSON object keys, so strings)
    mapping to ``[xl, yl, xh, yh]`` quadruples::

        {"1": [[100, 100, 400, 140]], "2": [[0, 500, 60, 900]]}
    """
    out: Dict[int, List[Rect]] = {}
    for key in sorted(data, key=str):
        try:
            number = int(key)
        except (TypeError, ValueError):
            raise ValueError(f"layer key {key!r} is not an integer") from None
        entries = data[key]
        if not isinstance(entries, (list, tuple)):
            raise ValueError(f"layer {number}: expected a list of rects")
        rects: List[Rect] = []
        for entry in entries:
            if not (
                isinstance(entry, (list, tuple))
                and len(entry) == 4
                and all(isinstance(v, int) and not isinstance(v, bool) for v in entry)
            ):
                raise ValueError(
                    f"layer {number}: rect {entry!r} is not [xl, yl, xh, yh]"
                )
            rects.append(Rect(entry[0], entry[1], entry[2], entry[3]))
        out[number] = rects
    return out


def _checked_indexes(
    layout: Layout,
    indexes: Dict[int, "GridIndex[int]"],
    *,
    counts: Mapping[int, int],
    what: str,
) -> Dict[int, "GridIndex[int]"]:
    """Validate that cached per-layer indexes match the layout's shapes."""
    for number, expected in counts.items():
        index = indexes.get(number)
        if index is None or len(index) != expected:
            have = "missing" if index is None else f"{len(index)} items"
            raise ValueError(
                f"stale {what} index for layer {number}: {have}, "
                f"layer has {expected}"
            )
    return indexes


def apply_eco(
    layout: Layout,
    grid: WindowGrid,
    new_wires: Mapping[int, Sequence[Rect]],
    config: Optional[FillConfig] = None,
    weights: Optional[ScoreWeights] = None,
    *,
    analysis: Optional[Dict[int, LayerDensity]] = None,
    wire_indexes: Optional[Dict[int, "GridIndex[int]"]] = None,
    fill_indexes: Optional[Dict[int, "GridIndex[int]"]] = None,
) -> EcoReport:
    """Commit ``new_wires`` and incrementally repair the fill.

    ``new_wires`` maps layer numbers to wire rectangles to add.  The
    layout must already be filled (by the engine or any other filler);
    fills outside the affected windows are left untouched.

    The keyword-only cache parameters come from a session holding the
    layout loaded (all three optional, all validated against the
    layout before use):

    * ``analysis`` — the cached global density analysis of the
      pre-ECO layout (built with this config's ``effective_margin``).
      When given, only the affected windows of the changed layers are
      re-analyzed; the engine reuses everything else.
    * ``wire_indexes`` — cached per-layer wire indexes.  Extended *in
      place* with the new wires (matching a rebuild exactly, since
      wire commits append) and passed to candidate generation.
    * ``fill_indexes`` — cached per-layer fill indexes for the rip-up
      query; built fresh when omitted.  Always stale after this call
      (fills change); rebuild via :func:`build_fill_indexes`.

    The returned report carries the refreshed ``analysis`` and
    ``wire_indexes`` when caches were supplied.
    """
    with obs.span("eco.apply") as sp:
        if config is None:
            config = FillConfig()
        rules = layout.rules
        changed_layers = sorted(n for n, rects in new_wires.items() if rects)
        if wire_indexes is not None:
            _checked_indexes(
                layout,
                wire_indexes,
                counts={n: layout.layer(n).num_wires for n in changed_layers},
                what="wire",
            )
        num_new = 0
        for number in sorted(new_wires, key=int):
            rects = new_wires[number]
            for rect in rects:
                if not layout.die.contains(rect):
                    raise ValueError(f"new wire {rect} escapes the die")
            layer = layout.layer(number)
            if wire_indexes is not None and rects:
                index = wire_indexes[number]
                for k, rect in enumerate(rects, start=layer.num_wires):
                    index.insert(rect, k)
            layer.add_wires(rects)
            num_new += len(rects)

        halo = rules.min_spacing + config.effective_margin(rules.min_spacing)
        affected = affected_windows(grid, new_wires, halo)
        sp.count("eco.affected_windows", len(affected))
        sp.count("eco.changed_layers", len(changed_layers))

        # Rip up every fill whose footprint touches an affected window —
        # located by index query, not an all-fills × all-windows scan.
        removed = 0
        if affected:
            with obs.span("eco.ripup"):
                if fill_indexes is None:
                    fill_indexes = build_fill_indexes(layout)
                else:
                    _checked_indexes(
                        layout,
                        fill_indexes,
                        counts={
                            layer.number: layer.num_fills
                            for layer in layout.layers
                        },
                        what="fill",
                    )
                affected_rects = [grid.window(i, j) for i, j in sorted(affected)]
                for layer in layout.layers:
                    index = fill_indexes[layer.number]
                    doomed: Set[int] = set()
                    for win in affected_rects:
                        doomed.update(k for _, k in index.query(win))
                    if not doomed:
                        continue
                    keep = [
                        f
                        for k, f in enumerate(layer.fills)
                        if k not in doomed
                    ]
                    removed += len(doomed)
                    layer.clear_fills()
                    layer.add_fills(keep)
        sp.count("eco.removed_fills", removed)

        # Re-analyze only what the wires dirtied (with a cache), then
        # re-fill only the affected windows; planning stays global so
        # the patch matches the surrounding density discipline.
        refreshed: Optional[Dict[int, LayerDensity]] = None
        if analysis is not None:
            with obs.span("eco.refresh"):
                refreshed = refresh_analysis(
                    layout,
                    grid,
                    analysis,
                    sorted(affected),
                    layers=changed_layers,
                    window_margin=config.effective_margin(rules.min_spacing),
                    kernel=config.kernel,
                )
        new_fills = 0
        if affected:
            engine = DummyFillEngine(config, weights)
            report = engine.run(
                layout,
                grid,
                windows=sorted(affected),
                analysis=refreshed,
                wire_indexes=wire_indexes,
            )
            new_fills = report.num_fills
    return EcoReport(
        new_wires=num_new,
        removed_fills=removed,
        affected_windows=sorted(affected),
        new_fills=new_fills,
        seconds=sp.seconds,
        analysis=refreshed,
        wire_indexes=wire_indexes,
    )
