"""ECO (engineering change order) incremental re-fill.

When a routed design changes after fill — a repaired net, a late buffer
insertion — rerunning fill from scratch churns the whole GDSII and
invalidates downstream signoff on untouched regions.  Production flows
instead patch incrementally:

1. commit the new/modified wires,
2. rip up only the fills the change invalidated (spacing conflicts with
   the new wires) plus everything in the windows the change touched,
3. re-fill exactly those windows, keeping the original target density
   discipline so the patched regions blend into the rest.

:func:`apply_eco` implements that flow on top of the engine's
window-restricted mode.  Everything outside the affected windows is
byte-identical before and after (the stability the tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Set, Tuple

from . import obs
from .core import DummyFillEngine, FillConfig
from .density.scoring import ScoreWeights
from .geometry import Rect
from .layout import Layout, WindowGrid

__all__ = ["EcoReport", "apply_eco", "affected_windows"]

WindowKey = Tuple[int, int]


@dataclass
class EcoReport:
    """Outcome of an incremental re-fill."""

    new_wires: int
    removed_fills: int
    affected_windows: List[WindowKey]
    new_fills: int
    seconds: float

    def summary(self) -> str:
        return (
            f"ECO: {self.new_wires} new wires -> ripped {self.removed_fills} "
            f"fills in {len(self.affected_windows)} windows, "
            f"re-inserted {self.new_fills} ({self.seconds:.2f}s)"
        )


def affected_windows(
    grid: WindowGrid,
    new_wires: Mapping[int, Sequence[Rect]],
    halo: int,
) -> Set[WindowKey]:
    """Windows whose fill a wire change can invalidate.

    A new wire affects its own windows plus any window within ``halo``
    (spacing rule + sizing trust region) of it — fills just across a
    window boundary may now violate spacing against the wire.
    """
    affected: Set[WindowKey] = set()
    for rects in new_wires.values():
        for rect in rects:
            grown = rect.expanded(halo).intersection(grid.die)
            if grown is None:
                continue
            affected.update(grid.windows_touching(grown))
    return affected


def apply_eco(
    layout: Layout,
    grid: WindowGrid,
    new_wires: Mapping[int, Sequence[Rect]],
    config: Optional[FillConfig] = None,
    weights: Optional[ScoreWeights] = None,
) -> EcoReport:
    """Commit ``new_wires`` and incrementally repair the fill.

    ``new_wires`` maps layer numbers to wire rectangles to add.  The
    layout must already be filled (by the engine or any other filler);
    fills outside the affected windows are left untouched.
    """
    with obs.span("eco.apply") as sp:
        if config is None:
            config = FillConfig()
        rules = layout.rules
        num_new = 0
        for number, rects in new_wires.items():
            for rect in rects:
                if not layout.die.contains(rect):
                    raise ValueError(f"new wire {rect} escapes the die")
            layout.layer(number).add_wires(rects)
            num_new += len(rects)

        halo = rules.min_spacing + config.effective_margin(rules.min_spacing)
        affected = affected_windows(grid, new_wires, halo)
        sp.count("eco.affected_windows", len(affected))

        # Rip up every fill whose footprint touches an affected window.
        removed = 0
        if affected:
            with obs.span("eco.ripup"):
                affected_rects = [grid.window(i, j) for i, j in affected]
                for layer in layout.layers:
                    fills = layer.fills
                    keep: List[Rect] = []
                    for fill in fills:
                        if any(fill.touches(w) for w in affected_rects):
                            removed += 1
                        else:
                            keep.append(fill)
                    layer.clear_fills()
                    layer.add_fills(keep)
        sp.count("eco.removed_fills", removed)

        # Re-fill only the affected windows; analysis and planning remain
        # global so the patch matches the surrounding density discipline.
        new_fills = 0
        if affected:
            engine = DummyFillEngine(config, weights)
            report = engine.run(layout, grid, windows=sorted(affected))
            new_fills = report.num_fills
    return EcoReport(
        new_wires=num_new,
        removed_fills=removed,
        affected_windows=sorted(affected),
        new_fills=new_fills,
        seconds=sp.seconds,
    )
