"""Target density planning (paper §3.1).

Reduces the per-window density assignment to a single scalar *target
layout density* ``td`` per layer (Definition 1): every window aims for
``td`` clamped into its feasible band ``[l(i,j), u(i,j)]`` (Eqn. (5)).

* **Case I** — every window can reach the layout's largest wire density:
  the optimum is closed-form, ``td = max l(k,n)`` (Eqn. (6)), a
  perfectly uniform density map.
* **Case II** — some window's upper bound is below that (Eqn. (7)):
  the planner grid-searches td combinations across layers "with small
  steps" between ``min u(k,n)`` and ``max l(k,n)`` and keeps the
  combination with the best density score.

The density score optimised here is the σ/line/outlier part of
Eqn. (3).  The planner uses the *unclamped* linear surrogate
``Σ α_k · (−x_k/β_k)`` — monotone-equivalent to Eqn. (4) wherever any
score is positive, but still discriminative when a raw value
overshoots its β.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..density.analysis import LayerDensity
from ..density.metrics import line_hotspots, outlier_hotspots, variation
from ..density.scoring import ScoreWeights

__all__ = ["PlannerObjective", "LayerPlan", "DensityPlan", "plan_targets"]

_MAX_COMBINATIONS = 400_000


@dataclass(frozen=True)
class PlannerObjective:
    """Weights for the planning surrogate score.

    Defaults weigh the three metrics per the contest α ratios with
    neutral normalisers; :meth:`from_score_weights` adopts a
    benchmark's actual α/β coefficients.
    """

    alpha_sigma: float = 0.2
    alpha_line: float = 0.2
    alpha_outlier: float = 0.15
    beta_sigma: float = 1.0
    beta_line: float = 1.0
    beta_outlier: float = 1.0

    @classmethod
    def from_score_weights(cls, weights: ScoreWeights) -> "PlannerObjective":
        return cls(
            alpha_sigma=weights.alpha_variation,
            alpha_line=weights.alpha_line,
            alpha_outlier=weights.alpha_outlier,
            beta_sigma=weights.beta_variation,
            beta_line=weights.beta_line,
            beta_outlier=weights.beta_outlier,
        )

    def score(self, sigma_sum: float, line_sum: float, outlier_sum: float) -> float:
        """Higher is better; Eqn. (3) restricted to density terms.

        The outlier term uses the paper's product form σ_total · oh_total.
        """
        return (
            -self.alpha_sigma * sigma_sum / self.beta_sigma
            - self.alpha_line * line_sum / self.beta_line
            - self.alpha_outlier * (sigma_sum * outlier_sum) / self.beta_outlier
        )


@dataclass
class LayerPlan:
    """Planning result for one layer."""

    layer_number: int
    td: float
    target: np.ndarray  # clamp(td, l, u) per window — Eqn. (5)
    case: str  # "I" or "II"

    def target_fill_area(
        self, lower: np.ndarray, window_area: np.ndarray
    ) -> np.ndarray:
        """Fill area each window must gain to hit its target."""
        return np.maximum(0.0, self.target - lower) * window_area


@dataclass
class DensityPlan:
    """Planning result for a whole layout."""

    layers: Dict[int, LayerPlan]
    score: float

    def td(self, layer_number: int) -> float:
        return self.layers[layer_number].td

    def target(self, layer_number: int) -> np.ndarray:
        return self.layers[layer_number].target


def _clamped_map(ld: LayerDensity, td: float) -> np.ndarray:
    """Eqn. (5): window density under target ``td``."""
    return np.clip(td, ld.lower, ld.upper)


def _candidate_tds(ld: LayerDensity, step: float) -> List[float]:
    """Case II search grid between min u(k,n) and max l(k,n) (§3.1)."""
    hi = ld.max_lower
    lo = min(ld.min_upper, hi)
    if hi - lo < step:
        return [lo, hi] if hi > lo else [hi]
    count = int((hi - lo) / step) + 1
    tds = [lo + k * step for k in range(count)]
    if tds[-1] < hi:
        tds.append(hi)
    return tds


def _evaluate(ld: LayerDensity, td: float) -> Tuple[float, float, float]:
    d = _clamped_map(ld, td)
    return variation(d), line_hotspots(d), outlier_hotspots(d)


def plan_targets(
    analysis: Mapping[int, LayerDensity],
    objective: Optional[PlannerObjective] = None,
    td_step: float = 0.02,
) -> DensityPlan:
    """Choose a target density per layer maximising the density score.

    Layers whose windows all admit ``max l(k,n)`` take the Case I
    closed form directly; the remaining layers are searched jointly
    (their scores couple through the summed-σ and σ·oh terms of
    Eqn. (3)).  The joint search is capped at a combination budget by
    coarsening the step, preserving the paper's "small steps" behaviour
    on realistic layer counts.
    """
    if objective is None:
        objective = PlannerObjective()
    if not analysis:
        raise ValueError("no layers to plan")

    numbers = sorted(analysis)
    options: Dict[int, List[Tuple[float, float, float, float]]] = {}
    cases: Dict[int, str] = {}
    for n in numbers:
        ld = analysis[n]
        if not ld.has_constrained_window:
            cases[n] = "I"
            td = ld.max_lower  # Eqn. (6): uniform at the largest wire density
            sigma, line, outlier = _evaluate(ld, td)
            options[n] = [(td, sigma, line, outlier)]
        else:
            cases[n] = "II"
            tds = _candidate_tds(ld, td_step)
            options[n] = [(td,) + _evaluate(ld, td) for td in tds]

    # Coarsen if the joint grid explodes (many constrained layers).
    while _combination_count(options) > _MAX_COMBINATIONS:
        for n in numbers:
            if len(options[n]) > 2:
                options[n] = options[n][::2]

    best_combo: Optional[Tuple[Tuple[float, float, float, float], ...]] = None
    best_score = -np.inf
    combinations = 0
    for combo in itertools.product(*(options[n] for n in numbers)):
        combinations += 1
        sigma_sum = sum(c[1] for c in combo)
        line_sum = sum(c[2] for c in combo)
        outlier_sum = sum(c[3] for c in combo)
        score = objective.score(sigma_sum, line_sum, outlier_sum)
        if score > best_score:
            best_score = score
            best_combo = combo
    assert best_combo is not None
    obs.metrics.counter("planner.combinations").inc(combinations)
    obs.metrics.counter("planner.case2_layers").inc(
        sum(1 for c in cases.values() if c == "II")
    )
    obs.count("planner.combinations", combinations)

    layers = {}
    for n, choice in zip(numbers, best_combo):
        td = choice[0]
        layers[n] = LayerPlan(
            layer_number=n,
            td=td,
            target=_clamped_map(analysis[n], td),
            case=cases[n],
        )
    return DensityPlan(layers=layers, score=float(best_score))


def _combination_count(options: Mapping[int, Sequence]) -> int:
    total = 1
    for opts in options.values():
        total *= max(1, len(opts))
    return total
