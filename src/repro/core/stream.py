"""Out-of-core streaming fill: bounded-memory end-to-end flow.

The in-memory engine (:mod:`repro.core.engine`) loads the whole layout,
so peak RSS grows with die size.  This driver runs the same Fig. 3 flow
without ever materialising the layout: shapes stream from the GDSII
record iterator (:mod:`repro.gdsii.stream`) into per-band spill files
(:mod:`repro.layout.spill`), every engine stage sweeps the bands one at
a time with only one band's geometry resident, and the output streams
through the incremental writers (:class:`~repro.gdsii.GdsiiStreamWriter`
/ :class:`~repro.oasis.OasisStreamWriter`).

Output parity is exact, not approximate: each stage reuses the
in-memory engine's own per-window bodies
(:func:`repro.density.analysis._analyze_window`,
:func:`repro.core.candidates._generate_shard`,
:func:`repro.core.sizing._size_shard`) on band-local wire indexes whose
query answers are identical to a global index — bands carry a routing
halo equal to the widest query reach, and band-local insertion order is
the input order restricted to the band.  Windows are visited in grid
order (bands are contiguous column ranges), so the streamed GDSII and
OASIS bytes equal the in-memory path's bytes at any worker count.

The one deliberate divergence is DRC: violations are checked per band
(owned fills against band wires), which sees every fill-to-wire pair
but not fill-to-fill pairs whose owners land in different bands.  The
window-margin construction keeps independently generated fills legal
across window (hence band) boundaries, so the streamed check is only
blind to pre-existing cross-band fill conflicts in the *input*.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass, field
from itertools import chain
from typing import (
    BinaryIO,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from .. import obs
from ..contracts import check_density, check_drc_params, check_rect
from ..density.analysis import LayerDensity, _analyze_window, window_area_map
from ..density.scoring import ScoreWeights
from ..gdsii import (
    DIE_LAYER,
    FILL_DATATYPE,
    WIRE_DATATYPE,
    GdsiiStreamReader,
    GdsiiStreamWriter,
)
from ..geometry import GridIndex, Rect, bounding_box
from ..layout import (
    BandPlan,
    DrcRules,
    DrcViolation,
    LayerSpool,
    ShapeSpill,
    WindowGrid,
    check_fills,
)
from ..netflow import release_solver_caches
from ..oasis import OasisStreamWriter
from .candidates import _SharedState, _WindowTask, _generate_shard
from .config import FillConfig
from .planner import DensityPlan, PlannerObjective, plan_targets
from .sizing import SizingStats, _SharedSizing, _SizingTask, _size_shard

__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "StreamReport",
    "resolve_bands",
    "stream_fill",
]

WindowKey = Tuple[int, int]

#: default spill budget when neither the call nor the config names one
DEFAULT_MEMORY_BUDGET = 256 * 1024 * 1024

#: rough resident footprint of one shape across index + task state —
#: deliberately pessimistic so the band estimate errs toward more,
#: smaller bands rather than blowing the budget
_BYTES_PER_SHAPE = 512

#: resident cost of one *buffered* (not yet flushed) spill record: the
#: packed bytes object plus its list slot dwarf the 24-byte payload
_BYTES_PER_BUFFERED_RECORD = 128

_FORMATS = ("gdsii", "oasis")


def _flush_records(memory_budget: Optional[int]) -> int:
    """Spool buffer length honouring the byte budget.

    The spools default to flushing every 4096 records, which on small
    budgets would keep more geometry resident in write buffers than the
    bands themselves hold; scale the buffer down so all spools together
    stay a small fraction of the budget.
    """
    budget = DEFAULT_MEMORY_BUDGET if memory_budget is None else memory_budget
    return max(16, min(4096, budget // (16 * _BYTES_PER_BUFFERED_RECORD)))


@dataclass
class StreamReport:
    """Everything the streaming driver learned during one run."""

    num_wires: int
    kept_fills: int
    removed_fills: int
    num_candidates: int
    num_fills: int
    bands: int
    bytes_spilled: int
    chunks: int
    bytes_written: int
    initial_plan: Optional[DensityPlan]
    final_plan: Optional[DensityPlan]
    sizing: SizingStats
    violations: List[DrcViolation] = field(default_factory=list)
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def summary(self) -> str:
        stages = ", ".join(
            f"{name}={secs:.2f}s" for name, secs in self.stage_seconds.items()
        )
        return (
            f"fills={self.num_fills} (from {self.num_candidates} candidates), "
            f"kept={self.kept_fills}, removed={self.removed_fills}, "
            f"bands={self.bands}, spilled {self.bytes_spilled} bytes "
            f"in {self.chunks} chunks; {stages}"
        )


def resolve_bands(
    num_shapes: int,
    cols: int,
    memory_budget: Optional[int] = None,
    bands: Optional[int] = None,
) -> int:
    """Number of window-column bands for a run.

    An explicit ``bands`` wins (clamped to the column count — a band is
    at least one window column).  Otherwise the count is sized so one
    band's estimated resident footprint
    (``num_shapes x _BYTES_PER_SHAPE / bands``) fits the byte budget.
    """
    if cols < 1:
        raise ValueError("grid must have at least one column")
    if bands is not None:
        if bands < 1:
            raise ValueError("bands must be at least 1")
        return min(bands, cols)
    budget = DEFAULT_MEMORY_BUDGET if memory_budget is None else memory_budget
    if budget < 1:
        raise ValueError("memory budget must be a positive byte count")
    estimated = max(1, num_shapes) * _BYTES_PER_SHAPE
    return max(1, min(cols, -(-estimated // budget)))


def _band_wires(
    spill: ShapeSpill, band: int, numbers: Sequence[int]
) -> Dict[int, List[Rect]]:
    """The band's wires per layer, in spill (= input) order."""
    per: Dict[int, List[Rect]] = {n: [] for n in numbers}
    for layer, _datatype, rect in spill.read(band):
        per[layer].append(rect)
    return per


def _band_indexes(
    per: Mapping[int, List[Rect]], die: Rect
) -> Dict[int, GridIndex[int]]:
    """Band-local per-layer wire indexes.

    Same cell size and insertion order as the global indexes the
    in-memory stages build, so every in-band query returns the same
    hits in the same order.
    """
    cell = max(64, min(die.width, die.height) // 16)
    out: Dict[int, GridIndex[int]] = {}
    for n, rects in per.items():
        index: GridIndex[int] = GridIndex(cell)
        for k, rect in enumerate(rects):
            index.insert(rect, k)
        out[n] = index
    return out


def _band_window_keys(
    plan: BandPlan, band: int, affected: Optional[Set[WindowKey]]
) -> Iterator[WindowKey]:
    """The band's window keys in grid order, restricted to ``affected``."""
    for i in plan.columns(band):
        for j in range(plan.grid.rows):
            key = (i, j)
            if affected is not None and key not in affected:
                continue
            yield key


def stream_fill(
    source: Union[str, "os.PathLike[str]", bytes, bytearray, BinaryIO],
    output: Union[str, "os.PathLike[str]", BinaryIO],
    rules: DrcRules,
    *,
    cols: int,
    rows: int,
    config: Optional[FillConfig] = None,
    objective: Optional[PlannerObjective] = None,
    weights: Optional[ScoreWeights] = None,
    memory_budget: Optional[int] = None,
    bands: Optional[int] = None,
    eco_wires: Optional[Mapping[int, Sequence[Rect]]] = None,
    output_format: str = "gdsii",
    include_wires: bool = True,
    work_dir: Optional[str] = None,
) -> StreamReport:
    """Run the full fill flow out-of-core; bounded peak memory.

    ``source`` is a GDSII path, byte string or binary stream;
    ``output`` a path or binary stream for the filled layout in
    ``output_format`` (``"gdsii"`` or ``"oasis"``).  ``cols``/``rows``
    give the window dissection (the die comes from the stream, so the
    grid cannot be built by the caller).  ``memory_budget`` (bytes) or
    an explicit ``bands`` count controls how many window-column bands
    the die is swept in; each sweep keeps only one band's geometry
    resident.  ``eco_wires`` switches to the incremental ECO mode:
    the wires are committed, fills in dirtied windows are ripped up,
    and only those windows are re-filled — mirroring
    :func:`repro.eco.apply_eco` byte for byte.

    Note the OASIS writer buffers one (layer, datatype) group at a
    time for repetition extraction, so only the GDSII format is fully
    streaming on the output side.
    """
    if config is None:
        config = FillConfig()
    if output_format not in _FORMATS:
        raise ValueError(f"output_format must be one of {_FORMATS}")
    if objective is None:
        objective = (
            PlannerObjective.from_score_weights(weights)
            if weights is not None
            else PlannerObjective()
        )
    rules = check_drc_params(rules, name="rules")
    if memory_budget is None:
        memory_budget = config.memory_budget

    workdir = work_dir if work_dir is not None else tempfile.mkdtemp(
        prefix="repro-stream-"
    )
    if work_dir is not None:
        os.makedirs(workdir, exist_ok=True)
    try:
        with obs.span("stream.run") as run_span:
            report = _stream_fill(
                source,
                output,
                rules,
                cols=cols,
                rows=rows,
                config=config,
                objective=objective,
                memory_budget=memory_budget,
                bands=bands,
                eco_wires=eco_wires,
                output_format=output_format,
                include_wires=include_wires,
                workdir=workdir,
            )
        report.stage_seconds = {c.name: c.seconds for c in run_span.children}
        return report
    finally:
        if work_dir is None:
            shutil.rmtree(workdir, ignore_errors=True)


def _stream_fill(
    source: Union[str, "os.PathLike[str]", bytes, bytearray, BinaryIO],
    output: Union[str, "os.PathLike[str]", BinaryIO],
    rules: DrcRules,
    *,
    cols: int,
    rows: int,
    config: FillConfig,
    objective: PlannerObjective,
    memory_budget: Optional[int],
    bands: Optional[int],
    eco_wires: Optional[Mapping[int, Sequence[Rect]]],
    output_format: str,
    include_wires: bool,
    workdir: str,
) -> StreamReport:
    flush = _flush_records(memory_budget)
    # ------------------------------------------------------------------
    # Pass 1 — scan: die, layer count, per-layer spools in input order.
    with obs.span("scan"):
        spool = LayerSpool(workdir, "shapes", flush_records=flush)
        die_rects: List[Rect] = []
        everything: List[Rect] = []  # only grown via bounding_box; O(1)
        max_layer = 0
        num_shapes = 0
        num_wires = 0
        with GdsiiStreamReader(source) as reader:
            for layer, datatype, rect in reader.shapes():
                num_shapes += 1
                box = bounding_box(everything + [rect])
                everything = [box] if box is not None else []
                if layer == DIE_LAYER:
                    if datatype == WIRE_DATATYPE:
                        die_rects.append(rect)
                    continue
                max_layer = max(max_layer, layer)
                if datatype in (WIRE_DATATYPE, FILL_DATATYPE):
                    spool.add(layer, datatype, rect)
                    if datatype == WIRE_DATATYPE:
                        num_wires += 1

        if die_rects:
            die = die_rects[0]
            if len(die_rects) > 1:
                box = bounding_box(die_rects)
                assert box is not None
                die = box
                obs.events.emit(
                    "gdsii.multiple_die_outlines",
                    level="warning",
                    count=len(die_rects),
                    die=str(die),
                )
        else:
            box = bounding_box(everything)
            if box is None:
                raise ValueError("GDSII stream contains no geometry")
            die = box
        num_layers = max_layer if max_layer else 1
        numbers = tuple(range(1, num_layers + 1))
        grid = WindowGrid(die, cols, rows)

        # ECO mode: commit the new wires (append to the wire spools in
        # sorted layer order, exactly as apply_eco commits them) and
        # work out which windows they dirty.
        affected: Optional[Set[WindowKey]] = None
        if eco_wires is not None:
            from ..eco import affected_windows

            for number in sorted(eco_wires, key=int):
                if number not in numbers:
                    raise KeyError(
                        f"layer {number} not in layout (has {list(numbers)})"
                    )
                for rect in eco_wires[number]:
                    if not die.contains(rect):
                        raise ValueError(f"new wire {rect} escapes the die")
                    spool.add(number, WIRE_DATATYPE, rect)
                    num_wires += 1
            eco_halo = rules.min_spacing + config.effective_margin(
                rules.min_spacing
            )
            affected = affected_windows(grid, eco_wires, eco_halo)
        spool.finish()
        obs.count("stream.shapes", num_shapes)

    # Re-fill runs unless this is an ECO whose wires dirty nothing.
    run_pipeline = eco_wires is None or bool(affected)
    rip_up = eco_wires is not None and bool(affected)

    num_bands = resolve_bands(num_shapes, grid.cols, memory_budget, bands)
    plan = BandPlan(grid, num_bands)
    obs.count("stream.bands", plan.num_bands)

    # The widest query reach of any stage: candidate generation looks
    # ``min_spacing`` around a window, sizing ``min_spacing + step``.
    halo = rules.min_spacing + config.effective_step(
        rules.max_fill_width, rules.max_fill_height
    )
    margin = config.effective_margin(rules.min_spacing)

    # ------------------------------------------------------------------
    # Pass 2 — bucket: route wires into halo'd band chunks; decide each
    # input fill's fate (ECO rip-up) and accumulate kept-fill area.
    with obs.span("bucket"):
        wires_spill = ShapeSpill(plan, workdir, "wires", flush_records=flush)
        owned_spill = ShapeSpill(
            plan, workdir, "ownedfills", flush_records=flush
        )
        kept_spool = LayerSpool(workdir, "kept", flush_records=flush)
        kept_area: Dict[int, np.ndarray] = {}
        kept_counts: Dict[int, int] = {n: 0 for n in numbers}
        kept_fills = 0
        removed_fills = 0
        for n in numbers:
            for rect in spool.read(n, WIRE_DATATYPE):
                wires_spill.route(n, WIRE_DATATYPE, rect, halo)
            for rect in spool.read(n, FILL_DATATYPE):
                if rip_up:
                    assert affected is not None
                    # expanded(1) turns the rip-up's closed-box window
                    # touch into the positive overlap windows_touching
                    # tests — identical on integer coordinates.
                    doomed = any(
                        key in affected
                        for key in grid.windows_touching(rect.expanded(1))
                    )
                    if doomed:
                        removed_fills += 1
                        continue
                kept_spool.add(n, FILL_DATATYPE, rect)
                owned_spill.add(
                    plan.band_of_x(rect.xl), n, FILL_DATATYPE, rect
                )
                kept_fills += 1
                kept_counts[n] += 1
                area = kept_area.setdefault(
                    n, np.zeros((grid.cols, grid.rows), dtype=np.int64)
                )
                for i, j in grid.windows_touching(rect):
                    area[i, j] += rect.intersection_area(grid.window(i, j))
        wires_spill.finish()
        owned_spill.finish()
        kept_spool.finish()

    initial_plan: Optional[DensityPlan] = None
    final_plan: Optional[DensityPlan] = None
    total_sizing = SizingStats()
    num_candidates = 0
    num_fills = 0
    new_spools: List[LayerSpool] = []
    workers = config.effective_workers()

    if run_pipeline:
        # --------------------------------------------------------------
        # Sweep A — density analysis, band by band into global maps.
        with obs.span("analysis"):
            lower = {
                n: np.zeros((grid.cols, grid.rows), dtype=np.float64)
                for n in numbers
            }
            upper = {
                n: np.zeros((grid.cols, grid.rows), dtype=np.float64)
                for n in numbers
            }
            for band in range(plan.num_bands):
                indexes = _band_indexes(
                    _band_wires(wires_spill, band, numbers), die
                )
                for i in plan.columns(band):
                    for j in range(grid.rows):
                        win = grid.window(i, j)
                        win_area = grid.window_area(i, j)
                        for n in numbers:
                            lo, up, _ = _analyze_window(
                                indexes[n], win, win_area, rules, margin
                            )
                            lower[n][i, j] = lo
                            upper[n][i, j] = up
            for n in numbers:
                check_density(
                    lower[n], name=f"layer {n} lower density l(i,j)"
                )
                check_density(
                    upper[n], name=f"layer {n} upper density u(i,j)"
                )
            analysis = {
                n: LayerDensity(n, lower[n], upper[n], {}) for n in numbers
            }
            obs.count("engine.layers", len(analysis))
            obs.count("engine.windows", grid.num_windows)

        with obs.span("planning"):
            initial_plan = plan_targets(
                analysis, objective, td_step=config.td_step
            )

        # --------------------------------------------------------------
        # Sweep B — candidate generation (Alg. 1) per band; candidate
        # area feeds the replan, the candidates themselves spill to
        # disk until the sizing sweep needs them.
        with obs.span("candidates"):
            cand_area = {
                n: np.zeros((grid.cols, grid.rows), dtype=np.float64)
                for n in numbers
            }
            cand_paths: List[str] = []
            windows_selected = 0
            for band in range(plan.num_bands):
                indexes = _band_indexes(
                    _band_wires(wires_spill, band, numbers), die
                )
                shared = _SharedState(
                    rules=rules,
                    config=config,
                    numbers=numbers,
                    num_layers=num_layers,
                    wire_indexes=indexes,
                )
                tasks: List[_WindowTask] = []
                for i, j in _band_window_keys(plan, band, affected):
                    win = grid.window(i, j)
                    win_area = grid.window_area(i, j)
                    regions: Dict[int, List[Rect]] = {}
                    for n in numbers:
                        _, _, region = _analyze_window(
                            indexes[n], win, win_area, rules, margin
                        )
                        regions[n] = region
                    tasks.append(
                        _WindowTask(
                            key=(i, j),
                            window=win,
                            area=win_area,
                            regions=regions,
                            wire_density={
                                n: float(lower[n][i, j]) for n in numbers
                            },
                            targets={
                                n: float(initial_plan.target(n)[i, j])
                                for n in numbers
                            },
                        )
                    )
                windows_selected += len(tasks)
                if workers == 1 or len(tasks) <= 1:
                    pairs = _generate_shard(shared, tasks)
                else:
                    from ..parallel import run_sharded, shard_items

                    shards = shard_items(tasks, workers)
                    pairs = [
                        pair
                        for shard_pairs in run_sharded(
                            _generate_shard,
                            shared,
                            shards,
                            workers=workers,
                            backend=config.parallel,
                            label="candidates.shard",
                            sanitize=config.sanitize,
                        )
                        for pair in shard_pairs
                    ]
                band_cands = dict(pairs)
                for (i, j), per_layer in band_cands.items():
                    for n, rects in per_layer.items():
                        cand_area[n][i, j] = float(
                            sum(r.area for r in rects)
                        )
                        num_candidates += len(rects)
                path = os.path.join(workdir, f"cands-band{band:04d}.pkl")
                with open(path, "wb") as handle:
                    pickle.dump(
                        band_cands, handle, protocol=pickle.HIGHEST_PROTOCOL
                    )
                cand_paths.append(path)
            obs.count("candidates.windows_selected", windows_selected)
            obs.count("engine.candidates", num_candidates)

        # --------------------------------------------------------------
        # Replanning — candidate-limited upper bounds, as _replan does:
        # kept fill counts as deliverable density in untouched windows.
        with obs.span("replanning"):
            warea_int = window_area_map(grid)
            warea = warea_int.astype(np.float64)
            updated: Dict[int, LayerDensity] = {}
            for n, ld in analysis.items():
                existing = (
                    kept_area[n] / warea_int if kept_counts[n] else 0.0
                )
                up = np.minimum(
                    1.0, ld.lower + existing + cand_area[n] / warea
                )
                updated[n] = LayerDensity(
                    layer_number=n,
                    lower=ld.lower,
                    upper=up,
                    fill_regions=ld.fill_regions,
                )
            final_plan = plan_targets(
                updated, objective, td_step=config.td_step
            )
            per_layer_target = {
                n: np.maximum(0.0, final_plan.target(n) - analysis[n].lower)
                * warea_int
                for n in numbers
            }

        # --------------------------------------------------------------
        # Sweep C — sizing per band; new fills spill per band per layer
        # in grid order, which is exactly the insertion order of the
        # in-memory engine.
        with obs.span("sizing"):
            sizing_margin = halo
            for band in range(plan.num_bands):
                with open(cand_paths[band], "rb") as handle:
                    band_cands = pickle.load(handle)
                indexes = _band_indexes(
                    _band_wires(wires_spill, band, numbers), die
                )
                shared_sizing = _SharedSizing(
                    rules=rules,
                    config=config,
                    margin=sizing_margin,
                    layer_numbers=numbers,
                    wire_indexes=indexes,
                )
                sizing_tasks: List[_SizingTask] = []
                for key in _band_window_keys(plan, band, None):
                    cands = band_cands.get(key, {})
                    if not any(cands.values()):
                        continue
                    i, j = key
                    sizing_tasks.append(
                        _SizingTask(
                            key=key,
                            window=grid.window(i, j),
                            candidates=cands,
                            targets={
                                n: float(per_layer_target[n][i, j])
                                for n in numbers
                            },
                        )
                    )
                if workers == 1 or len(sizing_tasks) <= 1:
                    triples = _size_shard(shared_sizing, sizing_tasks)
                else:
                    from ..parallel import run_sharded, shard_items

                    shards = shard_items(sizing_tasks, workers)
                    triples = [
                        triple
                        for shard_triples in run_sharded(
                            _size_shard,
                            shared_sizing,
                            shards,
                            workers=workers,
                            backend=config.parallel,
                            label="sizing.shard",
                            sanitize=config.sanitize,
                        )
                        for triple in shard_triples
                    ]
                sized_by_key: Dict[WindowKey, Dict[int, List[Rect]]] = {}
                for key, sized, stats in triples:
                    sized_by_key[key] = sized
                    total_sizing.merge(stats)
                band_spool = LayerSpool(
                    workdir, f"new-band{band:04d}", flush_records=flush
                )
                for key in _band_window_keys(plan, band, None):
                    sized = sized_by_key.get(key)
                    if not sized:
                        continue
                    for n, rects in sized.items():
                        for rect in rects:
                            band_spool.add(
                                n,
                                FILL_DATATYPE,
                                check_rect(
                                    rect, name=f"fill on layer {n}"
                                ),
                            )
                        num_fills += len(rects)
                band_spool.finish()
                new_spools.append(band_spool)
                release_solver_caches()
            obs.metrics.counter("sizing.dropped_fills").inc(
                total_sizing.dropped_fills
            )
            obs.count("engine.lp_solves", total_sizing.lp_solves)
            obs.count("engine.dropped_fills", total_sizing.dropped_fills)
            obs.count("engine.fills", num_fills)

    # ------------------------------------------------------------------
    # DRC — per band: every fill the band owns against the band's wires.
    with obs.span("drc"):
        violations: List[DrcViolation] = []
        for band in range(plan.num_bands):
            band_wires = _band_wires(wires_spill, band, numbers)
            owned: Dict[int, List[Rect]] = {n: [] for n in numbers}
            for n, _datatype, rect in owned_spill.read(band):
                owned[n].append(rect)
            for n in numbers:
                fills = owned[n]
                if new_spools:
                    fills = fills + list(
                        new_spools[band].read(n, FILL_DATATYPE)
                    )
                if not fills:
                    continue
                violations.extend(
                    check_fills(fills, band_wires[n], rules)
                )

    # ------------------------------------------------------------------
    # Write — stream the filled layout out: die outline, then per layer
    # wires (input order, ECO wires appended), kept fills (input
    # order), new fills (grid order via ascending bands).
    with obs.span("io.write"):
        own_stream = isinstance(output, (str, os.PathLike))
        stream: BinaryIO = (
            open(output, "wb") if own_stream else output  # type: ignore[arg-type]
        )
        try:
            if output_format == "gdsii":
                writer = GdsiiStreamWriter(stream)
                writer.boundary(DIE_LAYER, WIRE_DATATYPE, die)
                for n in numbers:
                    if include_wires:
                        for rect in spool.read(n, WIRE_DATATYPE):
                            writer.boundary(n, WIRE_DATATYPE, rect)
                    for rect in kept_spool.read(n, FILL_DATATYPE):
                        writer.boundary(n, FILL_DATATYPE, rect)
                    for band_spool in new_spools:
                        for rect in band_spool.read(n, FILL_DATATYPE):
                            writer.boundary(n, FILL_DATATYPE, rect)
                bytes_written = writer.close()
            else:
                oasis_writer = OasisStreamWriter(stream)
                oasis_writer.rectangle(DIE_LAYER, WIRE_DATATYPE, die)
                for n in numbers:
                    if include_wires:
                        oasis_writer.rectangles(
                            n, WIRE_DATATYPE, spool.read(n, WIRE_DATATYPE)
                        )
                    oasis_writer.rectangles(
                        n,
                        FILL_DATATYPE,
                        chain(
                            kept_spool.read(n, FILL_DATATYPE),
                            *(
                                band_spool.read(n, FILL_DATATYPE)
                                for band_spool in new_spools
                            ),
                        ),
                    )
                bytes_written = oasis_writer.close()
        finally:
            if own_stream:
                stream.close()

    bytes_spilled = (
        spool.bytes_spilled
        + wires_spill.bytes_spilled
        + owned_spill.bytes_spilled
        + kept_spool.bytes_spilled
        + sum(s.bytes_spilled for s in new_spools)
    )
    chunks = (
        spool.chunks
        + wires_spill.chunks
        + owned_spill.chunks
        + kept_spool.chunks
        + sum(s.chunks for s in new_spools)
    )
    obs.metrics.counter("stream.bytes_spilled").inc(bytes_spilled)
    obs.metrics.counter("stream.chunks").inc(chunks)

    return StreamReport(
        num_wires=num_wires,
        kept_fills=kept_fills,
        removed_fills=removed_fills,
        num_candidates=num_candidates,
        num_fills=num_fills,
        bands=plan.num_bands,
        bytes_spilled=bytes_spilled,
        chunks=chunks,
        bytes_written=bytes_written,
        initial_plan=initial_plan,
        final_plan=final_plan,
        sizing=total_sizing,
        violations=violations,
    )
