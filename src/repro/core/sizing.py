"""Dummy fill sizing (paper §3.3).

Shrinks the candidate fills of each window to minimise

    Σ_l dg(l) + η · Σ_l ov(l, l+1)                     (Eqn. (9a))

under the DRC constraints (min width, min area, min spacing), by the
paper's relaxation strategy:

* the non-convex problem is split into alternating **horizontal** and
  **vertical** passes (§3.3.2) — in each pass the orthogonal dimension
  is frozen, turning the objective into a linear function of the fill
  edge coordinates,
* each pass is a differential-constraint LP (Eqn. (14)): variables are
  the edge coordinates, constraints are the merged width/area rule
  (Eqn. (12)) and pairwise spacing (Eqn. (13)), bounds are shrink-only
  trust regions ("variables are bounded to a certain range"),
* the LP is solved through its dual min-cost flow (§3.3.3) or, for the
  runtime baseline, scipy's LP solver,
* the absolute value in dg is removed by sign tracking: while a layer
  sits above its target the pass shrinks with a step budget sized to
  land on the target ("reducing the shrinking steps ... in each
  iteration"); once below, the density term resists further shrinking
  and only overlay pressure can pay for it.

Fills only ever shrink, so same-layer spacing legality is monotone:
once the pre-legalisation pass and the spacing constraints have
resolved the candidate-stage violations, no pass can create new ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..contracts import check_drc_params
from ..geometry import GridIndex, Rect
from ..layout import DrcRules, Layout, WindowGrid
from ..netflow import DifferentialLP, LPInfeasibleError, solve_dual_mcf, solve_linprog
from .candidates import CandidatePlan
from .config import FillConfig

__all__ = ["SizingStats", "size_window", "size_fills"]

WindowKey = Tuple[int, int]


@dataclass
class SizingStats:
    """Bookkeeping of one sizing run (reported by the engine)."""

    lp_solves: int = 0
    variables: int = 0
    constraints: int = 0
    dropped_fills: int = 0
    windows: int = 0

    def merge(self, other: "SizingStats") -> None:
        self.lp_solves += other.lp_solves
        self.variables += other.variables
        self.constraints += other.constraints
        self.dropped_fills += other.dropped_fills
        self.windows += other.windows


def _transpose(rect: Rect) -> Rect:
    """Swap the axes of a rectangle (vertical pass = transposed horizontal)."""
    return Rect(rect.yl, rect.xl, rect.yh, rect.xh)


@dataclass
class _Fill:
    """Mutable working copy of one fill during sizing."""

    layer: int
    rect: Rect
    alive: bool = True


def _solver_fn(solver: str) -> Callable[[DifferentialLP], object]:
    if solver == "mcf-ssp":
        return lambda lp: solve_dual_mcf(lp, "ssp")
    if solver == "mcf-simplex":
        return lambda lp: solve_dual_mcf(lp, "simplex")
    if solver == "mcf-costscaling":
        return lambda lp: solve_dual_mcf(lp, "cost-scaling")
    if solver == "lp":
        return solve_linprog
    raise ValueError(f"unknown solver {solver!r}")


# ----------------------------------------------------------------------
# pre-legalisation: drop fills whose spacing can never be repaired
# ----------------------------------------------------------------------
def _achievable_gap_x(a: Rect, b: Rect, rules: DrcRules) -> int:
    """Largest horizontal gap reachable by shrinking ``a`` and ``b``."""
    left, right = (a, b) if a.xl <= b.xl else (b, a)
    min_w_left = rules.min_width_for_height(left.height)
    min_w_right = rules.min_width_for_height(right.height)
    return (right.xh - min_w_right) - (left.xl + min_w_left)


def _prelegalize(fills: List[_Fill], rules: DrcRules) -> int:
    """Drop the smaller fill of every unrepairable close pair.

    A pair is unrepairable when neither axis can reach the minimum
    spacing even if both fills shrink to their minimum legal size.
    Returns the number of dropped fills.
    """
    dropped, _ = _prelegalize_and_pairs(fills, rules)
    return dropped


def _prelegalize_and_pairs(
    fills: List[_Fill], rules: DrcRules
) -> Tuple[int, Dict[int, List[Tuple[int, int]]]]:
    """Pre-legalise and collect the surviving close pairs in one scan.

    Fills only ever shrink, so every gap measure is monotone
    non-decreasing over the passes: a pair beyond the minimum spacing
    now can never come within it later.  The close pairs of the
    surviving (post-drop) fills are therefore a valid superset for
    every subsequent pass and for the final spacing sweep — in either
    axis orientation, since transposition preserves distances.  The
    pairs come out in the exact order a fresh per-pass index scan over
    the survivors would visit them (lexicographic by survivor
    position: survivors keep their relative order, and the index
    returns hits in insertion order), because the constraint order
    feeds the flow network's arc order and must not change.
    """
    dropped = 0
    sm = rules.min_spacing
    by_layer: Dict[int, List[Tuple[int, _Fill]]] = {}
    for g, f in enumerate(fills):
        by_layer.setdefault(f.layer, []).append((g, f))
    raw_pairs: List[Tuple[int, int]] = []
    for layer_fills in by_layer.values():
        index: GridIndex[Tuple[int, _Fill]] = GridIndex(
            max(64, rules.max_fill_width + sm)
        )
        for entry in layer_fills:
            index.insert(entry[1].rect, entry)
        seen = set()
        for g, f in layer_fills:
            if not f.alive:
                continue
            for rect, (h, other) in index.query_within(f.rect, sm):
                if other is f or not other.alive or not f.alive:
                    continue
                if f.rect.euclidean_gap(other.rect) >= sm:
                    continue
                key = (g, h) if g < h else (h, g)
                if key not in seen:
                    seen.add(key)
                    raw_pairs.append(key)
                if f.rect.overlaps(other.rect):
                    # Same-layer overlap: no pass owns a repair axis for
                    # it, so resolve it here outright.
                    victim = f if f.rect.area <= other.rect.area else other
                    victim.alive = False
                    dropped += 1
                    continue
                gap_x = _achievable_gap_x(f.rect, other.rect, rules)
                gap_y = _achievable_gap_x(
                    _transpose(f.rect), _transpose(other.rect), rules
                )
                if gap_x < sm and gap_y < sm:
                    victim = f if f.rect.area <= other.rect.area else other
                    victim.alive = False
                    dropped += 1
    # Map the surviving pairs onto positions in the post-drop live
    # list (the variable numbering every pass uses).
    live_pos: Dict[int, int] = {}
    pos = 0
    for g, f in enumerate(fills):
        if f.alive:
            live_pos[g] = pos
            pos += 1
    close_pairs: Dict[int, List[Tuple[int, int]]] = {
        layer: [] for layer in by_layer
    }
    for g, h in raw_pairs:
        if fills[g].alive and fills[h].alive:
            close_pairs[fills[g].layer].append((live_pos[g], live_pos[h]))
    return dropped, close_pairs


# ----------------------------------------------------------------------
# one directional pass (horizontal; the vertical pass transposes)
# ----------------------------------------------------------------------
def _overlay_slopes(
    fill: Rect, neighbors: Sequence[Rect]
) -> Tuple[int, int]:
    """Marginal overlay height at the left and right edges of ``fill``.

    The slope at an edge is the total neighbor height whose overlap
    width would shrink if that edge moved inward — the left derivative,
    valid for the shrink-only trust region.
    """
    slope_left = 0
    slope_right = 0
    for s in neighbors:
        h_ov = min(fill.yh, s.yh) - max(fill.yl, s.yl)
        if h_ov <= 0:
            continue
        w_ov = min(fill.xh, s.xh) - max(fill.xl, s.xl)
        if w_ov <= 0:
            continue
        if fill.xh <= s.xh:
            slope_right += h_ov
        if fill.xl >= s.xl:
            slope_left += h_ov
    return slope_left, slope_right


#: per-layer neighbor wire coordinates, prepacked as int64 arrays
#: (xl, xh, yl, yh) — built once per window per axis by
#: :func:`size_window` and reused across every pass of that axis.
_WireArrays = Mapping[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]


def _pack_rects(rects: Sequence[Rect]) -> Tuple[
    np.ndarray, np.ndarray, np.ndarray, np.ndarray
]:
    """Coordinate arrays of a rect list (the slope-matrix operands)."""
    m = len(rects)
    return (
        np.fromiter((s.xl for s in rects), np.int64, m),
        np.fromiter((s.xh for s in rects), np.int64, m),
        np.fromiter((s.yl for s in rects), np.int64, m),
        np.fromiter((s.yh for s in rects), np.int64, m),
    )


def _batch_overlay_slopes(
    live: Sequence["_Fill"],
    wire_arrays: _WireArrays,
    fill_neighbors: Mapping[int, Sequence[Rect]],
) -> List[Tuple[int, int]]:
    """:func:`_overlay_slopes` for every live fill at once.

    One fills x neighbors coordinate matrix per layer replaces the
    per-fill Python scan over the neighbor list; the summed int64
    heights are the exact integers the scalar routine accumulates
    (which keeps :func:`_overlay_slopes` as its oracle in the tests).
    The neighbor set is split into frozen wires (prepacked arrays,
    shared by all passes of an axis) and the adjacent layers' live
    fills (repacked per pass, since they shrink); the sums are
    order-independent, so the split changes no value.
    """
    out: List[Tuple[int, int]] = [(0, 0)] * len(live)
    by_layer: Dict[int, List[int]] = {}
    for k, f in enumerate(live):
        by_layer.setdefault(f.layer, []).append(k)
    for layer, idxs in by_layer.items():
        wires = wire_arrays.get(layer)
        fill_neigh = fill_neighbors.get(layer, ())
        if fill_neigh:
            fxl_n, fxh_n, fyl_n, fyh_n = _pack_rects(fill_neigh)
            if wires is not None and len(wires[0]):
                nxl = np.concatenate([wires[0], fxl_n])
                nxh = np.concatenate([wires[1], fxh_n])
                nyl = np.concatenate([wires[2], fyl_n])
                nyh = np.concatenate([wires[3], fyh_n])
            else:
                nxl, nxh, nyl, nyh = fxl_n, fxh_n, fyl_n, fyh_n
        elif wires is not None and len(wires[0]):
            nxl, nxh, nyl, nyh = wires
        else:
            continue
        n = len(idxs)
        fxl = np.fromiter((live[k].rect.xl for k in idxs), np.int64, n)
        fxh = np.fromiter((live[k].rect.xh for k in idxs), np.int64, n)
        fyl = np.fromiter((live[k].rect.yl for k in idxs), np.int64, n)
        fyh = np.fromiter((live[k].rect.yh for k in idxs), np.int64, n)
        h_ov = np.minimum(fyh[:, None], nyh[None, :]) - np.maximum(
            fyl[:, None], nyl[None, :]
        )
        w_ov = np.minimum(fxh[:, None], nxh[None, :]) - np.maximum(
            fxl[:, None], nxl[None, :]
        )
        height = np.where((h_ov > 0) & (w_ov > 0), h_ov, 0)
        right = (height * (fxh[:, None] <= nxh[None, :])).sum(axis=1)
        left = (height * (fxl[:, None] >= nxl[None, :])).sum(axis=1)
        for pos, k in enumerate(idxs):
            out[k] = (int(left[pos]), int(right[pos]))
    return out


def _horizontal_pass(
    fills: List[_Fill],
    wire_arrays: _WireArrays,
    fill_neighbors: Mapping[int, Sequence[Rect]],
    close_pairs: Mapping[int, Sequence[Tuple[int, int]]],
    excess_area: Mapping[int, float],
    layer_height_sum: Mapping[int, int],
    rules: DrcRules,
    config: FillConfig,
    solve: Callable[[DifferentialLP], object],
    stats: SizingStats,
) -> bool:
    """One Eqn. (14) pass over the x coordinates of all live fills.

    Returns whether any fill coordinate actually moved — the signal
    :func:`size_window` uses to stop iterating once a whole x+y round
    is a fixed point (every later round would see identical inputs and
    produce the identical no-op solution).
    """
    live = [f for f in fills if f.alive]
    if not live:
        return False
    step = config.effective_step(rules.max_fill_width, rules.max_fill_height)
    lp = DifferentialLP()
    var_lo: List[int] = []
    var_hi: List[int] = []

    # Per-layer density shrink budget ("reducing the shrinking steps").
    budget: Dict[int, int] = {}
    for layer, excess in excess_area.items():
        if excess > 0:
            total_h = max(1, layer_height_sum.get(layer, 1))
            budget[layer] = max(1, min(step, int(-(-excess // total_h))))

    slopes = _batch_overlay_slopes(live, wire_arrays, fill_neighbors)
    trivial = True
    for k, f in enumerate(live):
        r = f.rect
        h0 = r.height
        min_w = rules.min_width_for_height(h0)
        excess = excess_area.get(f.layer, 0.0)
        sign = 1 if excess > 0 else -1
        move = budget.get(f.layer, step) if sign > 0 else step
        sl, sr = slopes[k]
        eta = config.eta
        # Coefficients are doubled and biased by one unit toward keeping
        # the current size: when the density loss of shrinking exactly
        # cancels the overlay gain (a fill fully covered by neighbor
        # metal, s·h0 + η·slope == 0) the LP must not resolve the tie by
        # shrinking, or covered fills erode to nothing over the passes.
        c_xl = int(round(2 * (-sign * h0 - eta * sl))) + 1
        c_xh = int(round(2 * (sign * h0 + eta * sr))) - 1
        # Shrink-only trust region: xl may move up, xh down, each by at
        # most `move`, never tighter than the minimum width allows.
        ub_xl = max(r.xl, min(r.xl + move, r.xh - min_w))
        lb_xh = min(r.xh, max(r.xh - move, r.xl + min_w))
        i_xl = lp.add_variable(c_xl, r.xl, ub_xl)
        i_xh = lp.add_variable(c_xh, lb_xh, r.xh)
        # Eqn. (12): xh - xl >= max(wm, am/h0).
        lp.add_constraint(i_xh, i_xl, min_w)
        var_lo.append(i_xl)
        var_hi.append(i_xh)
        if c_xl <= 0 or c_xh >= 0:
            trivial = False

    # Eqn. (13): spacing constraints for close pairs, per layer.  The
    # pair lists were computed once per window (`_prelegalize_and_pairs`)
    # and only the current-geometry gap needs re-checking here.
    for pairs in close_pairs.values():
        for k, m in pairs:
            fk = live[k].rect
            fm = live[m].rect
            if fk.euclidean_gap(fm) >= rules.min_spacing:
                continue
            # Repair along the axis where the pair does NOT overlap:
            # a pair stacked with overlapping x-spans separates
            # naturally in y (the transposed pass), and forcing an
            # x-separation instead would carve a whole fill width
            # out of both fills.
            x_overlap = min(fk.xh, fm.xh) - max(fk.xl, fm.xl)
            if x_overlap > 0:
                continue  # the vertical pass owns this pair
            if fk.gap_y(fm) > 0 and _achievable_gap_x(fk, fm, rules) < rules.min_spacing:
                continue  # diagonal pair, only repairable in y
            left, right = (k, m) if fk.xl <= fm.xl else (m, k)
            # x_l(right) - x_h(left) >= sm; widen the trust region of
            # the two variables so the repair is feasible this pass.
            need = rules.min_spacing - (live[right].rect.xl - live[left].rect.xh)
            if need > 0:
                _widen_for_repair(
                    lp, var_hi[left], need, rules, live[left].rect
                )
                _widen_for_repair_up(
                    lp, var_lo[right], need, rules, live[right].rect
                )
            lp.add_constraint(var_lo[right], var_hi[left], rules.min_spacing)

    if trivial and lp.num_constraints == len(live):
        # Every cost pair is (positive, negative) — each x_lo's unique
        # optimum is its lower bound (the current left edge) and each
        # x_hi's its upper bound (the current right edge) — and with no
        # spacing constraints every component is one fill whose width
        # constraint already holds at those bounds.  The solver would
        # return the current coordinates verbatim; skip it.
        return False

    stats.lp_solves += 1
    stats.variables += lp.num_variables
    stats.constraints += lp.num_constraints
    obs.metrics.counter("sizing.lp_solves").inc()
    obs.metrics.histogram("sizing.lp.variables").observe(lp.num_variables)
    obs.metrics.histogram("sizing.lp.constraints").observe(lp.num_constraints)
    try:
        solution = solve(lp)
    except LPInfeasibleError:
        # Extremely rare residue of diagonal pairs; keep current sizes —
        # the vertical pass or the final cleanup resolves the conflict.
        return False
    x = list(solution.x)
    changed = False
    for k, f in enumerate(live):
        r = f.rect
        new_xl = x[var_lo[k]]
        new_xh = x[var_hi[k]]
        if new_xl != r.xl or new_xh != r.xh:
            f.rect = Rect(new_xl, r.yl, new_xh, r.yh)
            changed = True
    return changed


def _widen_for_repair(
    lp: DifferentialLP, var_hi: int, need: int, rules: DrcRules, rect: Rect
) -> None:
    """Lower the trust bound of a left fill's right edge by ``need``."""
    min_w = rules.min_width_for_height(rect.height)
    lp.lowers[var_hi] = min(lp.lowers[var_hi], max(rect.xl + min_w, rect.xh - need))


def _widen_for_repair_up(
    lp: DifferentialLP, var_lo: int, need: int, rules: DrcRules, rect: Rect
) -> None:
    """Raise the trust bound of a right fill's left edge by ``need``."""
    min_w = rules.min_width_for_height(rect.height)
    lp.uppers[var_lo] = max(lp.uppers[var_lo], min(rect.xh - min_w, rect.xl + need))


# ----------------------------------------------------------------------
# window-level driver
# ----------------------------------------------------------------------
def size_window(
    window: Rect,
    candidates: Mapping[int, Sequence[Rect]],
    wires_nearby: Mapping[int, Sequence[Rect]],
    target_fill_area: Mapping[int, float],
    rules: DrcRules,
    config: Optional[FillConfig] = None,
) -> Tuple[Dict[int, List[Rect]], SizingStats]:
    """Size the candidate fills of one window (Eqn. (9) relaxation).

    ``wires_nearby`` maps each layer to its wire rectangles clipped
    around the window (used for cross-layer overlay);
    ``target_fill_area`` maps each layer to the fill area (dbu²) the
    density plan asks of this window — ``dt(l) · aw`` of Eqn. (9b).
    Returns the final fills per layer plus solver statistics.
    """
    if config is None:
        config = FillConfig()
    stats = SizingStats(windows=1)
    fills: List[_Fill] = [
        _Fill(layer, rect)
        for layer, rects in sorted(candidates.items())
        for rect in rects
    ]
    # The live-fill list is stable across all passes (fills die only in
    # pre-legalisation here and in the post-pass cull below), so the
    # close-pair positions stay valid for the whole iteration loop.
    dropped, close_pairs = _prelegalize_and_pairs(fills, rules)
    stats.dropped_fills += dropped
    live0 = [f for f in fills if f.alive]
    solve = _solver_fn(config.solver)
    layer_numbers = sorted(candidates.keys())

    # Cross-layer neighbor *wires*, frozen for the whole window: packed
    # into coordinate arrays once per axis and reused by every pass.
    # Each Eqn. (9c) overlay term ov(l, l+1) must be priced exactly
    # once: fill-vs-wire overlay is charged to the fill's own layer,
    # while fill-vs-fill overlay is charged to the even layer of the
    # pair only (the layer whose candidates Alg. 1 chose against the
    # odd layers).  Charging both sides would double η and make
    # stacked layers shrink-chase each other.
    wire_arrays_by_axis: Dict[str, Dict[int, Tuple[np.ndarray, ...]]] = {}
    for axis in ("x", "y"):
        per_layer: Dict[int, Tuple[np.ndarray, ...]] = {}
        for l in layer_numbers:
            wires: List[Rect] = []
            for adj in (l - 1, l + 1):
                if adj in candidates or adj in wires_nearby:
                    wires.extend(wires_nearby.get(adj, ()))
            if axis == "y":
                wires = [_transpose(w) for w in wires]
            per_layer[l] = _pack_rects(wires)
        wire_arrays_by_axis[axis] = per_layer

    for _ in range(config.sizing_iterations):
        iteration_changed = False
        for axis in ("x", "y"):
            live = [f for f in fills if f.alive]
            if not live:
                break
            if axis == "y":
                for f in live:
                    f.rect = _transpose(f.rect)
            # One bucketing scan over the live fills feeds both the
            # per-layer area/height totals and (for even layers) the
            # adjacent layers' fill rects for the overlay slopes.
            # Summation order per layer is the live order, exactly as
            # the per-layer generator sums produced.
            rects_by_layer: Dict[int, List[Rect]] = {}
            area_sum: Dict[int, int] = {}
            h_sum: Dict[int, int] = {}
            for f in live:
                r = f.rect
                rects_by_layer.setdefault(f.layer, []).append(r)
                area_sum[f.layer] = area_sum.get(f.layer, 0) + r.area
                h_sum[f.layer] = h_sum.get(f.layer, 0) + 2 * r.height
            # A layer's live fills exist only when that layer has
            # candidates, so the adjacency guard of the wire gathering
            # above is vacuous here.
            fill_neighbors: Dict[int, List[Rect]] = {
                l: list(rects_by_layer.get(l - 1, ()))
                + list(rects_by_layer.get(l + 1, ()))
                for l in layer_numbers
                if l % 2 == 0
            }
            excess: Dict[int, float] = {}
            height_sum: Dict[int, int] = {}
            for l in layer_numbers:
                excess[l] = area_sum.get(l, 0) - float(
                    target_fill_area.get(l, 0.0)
                )
                height_sum[l] = h_sum.get(l, 0)
            iteration_changed |= _horizontal_pass(
                fills,
                wire_arrays_by_axis[axis],
                fill_neighbors,
                close_pairs,
                excess,
                height_sum,
                rules,
                config,
                solve,
                stats,
            )
            if axis == "y":
                for f in fills:
                    if f.alive:
                        f.rect = _transpose(f.rect)
        # A full x+y round that moved nothing is a fixed point: every
        # remaining round would rebuild the identical LPs and return
        # the identical no-op solutions.  Skip them.
        if not iteration_changed:
            break

    # Post-sizing cull: where a layer still exceeds its target (the λ
    # over-generation margin of Alg. 1), deleting whole small fills both
    # closes the density gap and removes GDSII boundary records — the
    # file-size objective of Eqn. (3) at zero density cost.
    for l in layer_numbers:
        live = sorted(
            (f for f in fills if f.alive and f.layer == l),
            key=lambda f: f.rect.area,
        )
        excess = sum(f.rect.area for f in live) - float(
            target_fill_area.get(l, 0.0)
        )
        for f in live:
            if f.rect.area > excess:
                break
            f.alive = False
            excess -= f.rect.area
            stats.dropped_fills += 1

    # Final cleanup: defensive legality filter, then a spacing sweep
    # that drops the smaller fill of any pair the passes left
    # unresolved (possible only for diagonal pairs neither axis could
    # repair within the iteration budget).
    for f in fills:
        if f.alive and not rules.is_legal_fill(f.rect):
            f.alive = False
            stats.dropped_fills += 1
    stats.dropped_fills += _strict_sweep_pairs(live0, close_pairs, rules)
    result: Dict[int, List[Rect]] = {l: [] for l in layer_numbers}
    for f in fills:
        if f.alive:
            result[f.layer].append(f.rect)
    return result, stats


def _strict_sweep_pairs(
    live0: Sequence[_Fill],
    close_pairs: Mapping[int, Sequence[Tuple[int, int]]],
    rules: DrcRules,
) -> int:
    """:func:`_prelegalize_strict` replayed over the close-pair lists.

    Gaps only grow, so the still-close pairs at the end of sizing are a
    subset of the pairs collected up front; visiting them in list order
    reproduces the index scan's first-visit order (and hence the same
    victim cascade) without rebuilding any spatial index.
    """
    dropped = 0
    sm = rules.min_spacing
    for pairs in close_pairs.values():
        for a, b in pairs:
            f = live0[a]
            other = live0[b]
            if not f.alive or not other.alive:
                continue
            if f.rect.euclidean_gap(other.rect) < sm:
                victim = f if f.rect.area <= other.rect.area else other
                victim.alive = False
                dropped += 1
    return dropped


def _prelegalize_strict(fills: List[_Fill], rules: DrcRules) -> int:
    """Drop the smaller fill of every remaining close pair.

    The index-scan oracle for :func:`_strict_sweep_pairs` (kept for the
    equivalence tests; the sizing path replays the precomputed pair
    lists instead of rebuilding an index here).
    """
    dropped = 0
    by_layer: Dict[int, List[_Fill]] = {}
    for f in fills:
        if f.alive:
            by_layer.setdefault(f.layer, []).append(f)
    for layer_fills in by_layer.values():
        index: GridIndex[_Fill] = GridIndex(
            max(64, rules.max_fill_width + rules.min_spacing)
        )
        for f in layer_fills:
            index.insert(f.rect, f)
        for f in layer_fills:
            if not f.alive:
                continue
            for rect, other in index.query_within(f.rect, rules.min_spacing):
                if other is f or not other.alive or not f.alive:
                    continue
                if f.rect.euclidean_gap(other.rect) < rules.min_spacing:
                    victim = f if f.rect.area <= other.rect.area else other
                    victim.alive = False
                    dropped += 1
    return dropped


@dataclass(frozen=True)
class _SharedSizing:
    """Read-only inputs every sizing window shares.

    Shipped to parallel workers once per worker (pool initializer);
    the per-layer wire indexes answer the "wires near this window"
    query without rescanning the layer per window.
    """

    rules: DrcRules
    config: FillConfig
    margin: int
    layer_numbers: Tuple[int, ...]
    wire_indexes: Dict[int, GridIndex[int]]


@dataclass(frozen=True)
class _SizingTask:
    """One window's sizing problem — a unit of shard work."""

    key: WindowKey
    window: Rect
    candidates: Dict[int, List[Rect]]
    targets: Dict[int, float]


def _size_shard(
    shared: _SharedSizing, tasks: Sequence[_SizingTask]
) -> List[Tuple[WindowKey, Dict[int, List[Rect]], SizingStats]]:
    """Worker entry point: size one shard of windows, in order."""
    out: List[Tuple[WindowKey, Dict[int, List[Rect]], SizingStats]] = []
    for task in tasks:
        obs.metrics.counter("sizing.windows").inc()
        wires_nearby = {
            n: [
                r
                for r, _ in shared.wire_indexes[n].query_within(
                    task.window, shared.margin
                )
            ]
            for n in shared.layer_numbers
        }
        sized, stats = size_window(
            task.window,
            task.candidates,
            wires_nearby,
            task.targets,
            shared.rules,
            shared.config,
        )
        out.append((task.key, sized, stats))
    return out


def size_fills(
    layout: Layout,
    grid: WindowGrid,
    candidates: CandidatePlan,
    target_fill_area: Mapping[WindowKey, Mapping[int, float]],
    config: Optional[FillConfig] = None,
) -> Tuple[Dict[WindowKey, Dict[int, List[Rect]]], SizingStats]:
    """Size candidates across all windows of a layout.

    Windows are independent problems (the paper sizes per window),
    processed in deterministic order.  With ``config.workers != 1``
    the non-empty windows are sharded contiguously in grid order onto
    the :mod:`repro.parallel` backend; per-window results and solver
    statistics merge in shard order, so the outcome is identical for
    every worker count.
    """
    if config is None:
        config = FillConfig()
    rules = check_drc_params(layout.rules, name="layout.rules")
    margin = rules.min_spacing + config.effective_step(
        rules.max_fill_width, rules.max_fill_height
    )
    total = SizingStats()

    cell = max(64, min(layout.die.width, layout.die.height) // 16)
    wire_indexes: Dict[int, GridIndex[int]] = {}
    for layer in layout.layers:
        idx: GridIndex[int] = GridIndex(cell)
        for k, w in enumerate(layer.wires):
            idx.insert(w, k)
        wire_indexes[layer.number] = idx

    shared = _SharedSizing(
        rules=rules,
        config=config,
        margin=margin,
        layer_numbers=tuple(layout.layer_numbers),
        wire_indexes=wire_indexes,
    )
    tasks: List[_SizingTask] = []
    for i, j, window in grid:
        key = (i, j)
        cands = candidates.get(key, {})
        if not any(cands.values()):
            continue
        tasks.append(
            _SizingTask(
                key=key,
                window=window,
                candidates=cands,
                targets=dict(target_fill_area.get(key, {})),
            )
        )

    workers = config.effective_workers()
    if workers == 1 or len(tasks) <= 1:
        triples = _size_shard(shared, tasks)
    else:
        from ..parallel import run_sharded, shard_items

        shards = shard_items(tasks, workers)
        triples = [
            triple
            for shard_triples in run_sharded(
                _size_shard,
                shared,
                shards,
                workers=workers,
                backend=config.parallel,
                label="sizing.shard",
                sanitize=config.sanitize,
            )
            for triple in shard_triples
        ]
    sized_by_key: Dict[WindowKey, Dict[int, List[Rect]]] = {}
    for key, sized, stats in triples:
        sized_by_key[key] = sized
        total.merge(stats)
    # Assemble in grid iteration order (empty and sized windows
    # interleaved exactly as the serial loop produced them), so the
    # downstream fill insertion order — and hence the GDSII byte
    # stream — is independent of the sharding.
    result: Dict[WindowKey, Dict[int, List[Rect]]] = {}
    for i, j, _ in grid:
        key = (i, j)
        if key in sized_by_key:
            result[key] = sized_by_key[key]
        else:
            result[key] = {l: [] for l in candidates.get(key, {})}
    obs.metrics.counter("sizing.dropped_fills").inc(total.dropped_fills)
    return result, total
