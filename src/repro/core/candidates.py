"""Candidate fill region generation (paper §3.2, Alg. 1).

Given per-window fill regions and target densities, generate candidate
dummy fills so that every window reaches at least ``λ · td`` — an upper
bound the sizing stage (§3.3) later shrinks.

The multi-layer strategy follows Alg. 1:

* **odd layers first** — when the region free on *both* layer ``l`` and
  ``l+1`` (``intersect(fr(l), fr(l+1))``, Region 3 of Figs. 4/5) is
  large enough for both layers' density gaps, fills are steered into it
  (the Case I zero-overlay arrangement); otherwise candidates are taken
  largest-area first,
* **even layers second** — candidates are ranked by the quality score of
  Eqn. (8), ``q = −overlay/area + γ·area/aw``, where overlay is
  measured against the adjacent layers' wires and the already-chosen
  odd-layer candidates.

Candidate geometry itself is a maximal grid of fill cells inside each
free rectangle at legal pitch (fill size capped by the DRC deck); even
layers' grids are phase-shifted by half a pitch so fills on adjacent
layers interleave instead of stacking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..density.analysis import LayerDensity
from ..geometry import GridIndex, Rect, intersection_area, rect_set_intersect
from ..geometry.interval import normalize as _iv_normalize
from ..layout import DrcRules, Layout, WindowGrid
from .config import FillConfig
from .planner import DensityPlan

__all__ = [
    "grid_candidates",
    "quality_score",
    "CandidatePlan",
    "build_wire_indexes",
    "generate_candidates",
    "candidate_area_maps",
]

WindowKey = Tuple[int, int]
#: candidates[window][layer] -> list of candidate fill rects
CandidatePlan = Dict[WindowKey, Dict[int, List[Rect]]]


def grid_candidates(
    region: Sequence[Rect],
    rules: DrcRules,
    *,
    stagger: bool = False,
    anchor: Optional[Rect] = None,
    prefer: Optional[Sequence[Rect]] = None,
) -> List[Rect]:
    """Generate candidate fills on a global tile grid over a free region.

    The plane is cut into tiles of the DRC maximum fill size at legal
    pitch (cell + min spacing), anchored at ``anchor`` (the window; the
    region's bounding box when omitted).  Each tile contributes at most
    **one** candidate: the largest legal rectangle of the free region
    inside it.  Consequences, by construction:

    * candidates on one layer are pairwise at legal spacing (distinct
      tiles are a pitch apart, and each tile holds one rectangle),
    * a completely free tile yields one maximal fill cell — the "few
      large fills" property that gives the geometric approach its
      file-size advantage,
    * with ``stagger=True`` the grid is phase-shifted by half a pitch
      so even-layer candidates interleave with odd-layer ones (the
      Fig. 4(b) zero-overlay arrangement),
    * with ``prefer`` set (the doubly-free Region 3 of Figs. 4/5), each
      tile first looks for a legal candidate inside the preferred
      region and only falls back to the full free region when none
      exists — candidates are *shaped* to dodge the neighbour layers'
      wires, not merely re-ordered.
    """
    rects = [r for r in region if not r.is_degenerate]
    if not rects:
        return []
    from ..geometry import bounding_box

    preferred = (
        [r for r in prefer if not r.is_degenerate] if prefer else None
    )
    frame = anchor if anchor is not None else bounding_box(rects)
    sm = rules.min_spacing
    pitch_x = rules.max_fill_width + sm
    pitch_y = rules.max_fill_height + sm
    off_x = pitch_x // 2 if stagger else 0
    off_y = pitch_y // 2 if stagger else 0
    out: List[Rect] = []
    x = frame.xl - (pitch_x - off_x) % pitch_x
    while x < frame.xh:
        y = frame.yl - (pitch_y - off_y) % pitch_y
        while y < frame.yh:
            tile = Rect(x, y, x + rules.max_fill_width, y + rules.max_fill_height)
            best = None
            if preferred is not None:
                best = _best_piece(preferred, tile, rules)
            if best is None:
                best = _best_piece(rects, tile, rules)
            if best is not None:
                out.append(best)
            y += pitch_y
        x += pitch_x
    return out


def _best_piece(
    region: Sequence[Rect], tile: Rect, rules: DrcRules
) -> Optional[Rect]:
    """Largest legal rectangle of ``region`` inside ``tile``, if any.

    Region rects that don't overlap the tile cannot contribute to the
    intersection, and the canonical form of a region is unique, so
    dropping them up front leaves the scanline output unchanged while
    skipping most of the sweep for large regions.
    """
    touching = [
        r
        for r in region
        if r.xl < tile.xh and r.xh > tile.xl and r.yl < tile.yh and r.yh > tile.yl
    ]
    if not touching:
        return None
    if len(touching) == 1:
        # One overlapping region rect: the intersection is a single
        # rectangle (already canonical), so the sweep is pure overhead.
        # This is the common fully-open-area case where the tile sits
        # inside one maximal free slab.
        piece = touching[0].intersection(tile)
        assert piece is not None  # touching guarantees positive overlap
        return piece if rules.is_legal_fill(piece) else None
    clips = [r.intersection(tile) for r in touching]
    best = _largest_clip_piece(clips)  # type: ignore[arg-type]
    return best if rules.is_legal_fill(best) else None


def _largest_clip_piece(clips: Sequence[Rect]) -> Rect:
    """Largest canonical piece of a union of tile-clipped rectangles.

    The canonical decomposition of a rectilinear region — the output of
    :func:`repro.geometry.rect_set_intersect` — is a geometric
    invariant: maximal vertical runs of constant x-cross-section.  This
    computes the same pieces directly from the clipped rects (slab per
    y-edge interval, normalised x-spans, runs merged while the span
    repeats), so the selected maximum matches the sweep's result
    exactly while touching an order of magnitude fewer objects for the
    few-rect sets a tile produces.
    """
    ys = sorted({v for c in clips for v in (c.yl, c.yh)})
    best: Optional[Rect] = None
    best_key = (0, 0, 0)

    def close(xl: int, xh: int, ylo: int, yhi: int) -> None:
        nonlocal best, best_key
        piece = Rect(xl, ylo, xh, yhi)
        key = (piece.area, xl, ylo)
        if best is None or key > best_key:
            best = piece
            best_key = key

    runs: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for ylo, yhi in zip(ys, ys[1:]):
        spans = _iv_normalize(
            (c.xl, c.xh) for c in clips if c.yl <= ylo and c.yh >= yhi
        )
        nxt: Dict[Tuple[int, int], Tuple[int, int]] = {}
        for span in spans:
            old = runs.pop(span, None)
            if old is not None and old[1] == ylo:
                nxt[span] = (old[0], yhi)
            else:
                if old is not None:
                    close(span[0], span[1], old[0], old[1])
                nxt[span] = (ylo, yhi)
        for span, run in runs.items():
            close(span[0], span[1], run[0], run[1])
        runs = nxt
    for span, run in runs.items():
        close(span[0], span[1], run[0], run[1])
    assert best is not None  # clips are non-empty with positive area
    return best


def quality_score(
    fill: Rect,
    neighbor_shapes: Sequence[Rect],
    window_area: int,
    gamma: float,
) -> float:
    """Eqn. (8): q = −overlay/area + γ · area/aw.

    ``neighbor_shapes`` is the metal (wires plus already-selected
    candidates) on the layers directly above and below.
    """
    if fill.area <= 0:
        raise ValueError("quality score of a degenerate fill")
    overlay = sum(fill.intersection_area(s) for s in neighbor_shapes)
    return -overlay / fill.area + gamma * fill.area / window_area


@dataclass(frozen=True)
class _SharedState:
    """Read-only inputs every window of a generation run shares.

    Built once per :func:`generate_candidates` call and shipped to
    parallel workers once per worker (pool initializer), so the
    per-layer wire indexes — which replace the old per-window
    O(windows x wires) rescan of :func:`_neighbor_shapes` — are
    constructed and pickled exactly once.
    """

    rules: DrcRules
    config: FillConfig
    numbers: Tuple[int, ...]
    num_layers: int
    wire_indexes: Dict[int, GridIndex[int]]


@dataclass(frozen=True)
class _WindowTask:
    """One window's slice of the analysis/plan — a unit of shard work."""

    key: WindowKey
    window: Rect
    area: int
    regions: Dict[int, List[Rect]]  # fr(l)
    wire_density: Dict[int, float]  # dw(l)
    targets: Dict[int, float]  # dt(l)


@dataclass
class _WindowContext:
    """Per-window working state shared across layers during Alg. 1."""

    key: WindowKey
    area: int
    regions: Dict[int, List[Rect]]  # fr(l)
    wire_density: Dict[int, float]  # dw(l)
    targets: Dict[int, float]  # dt(l)
    selected: Dict[int, List[Rect]]  # chosen candidates per layer


def _covered(candidate: Rect, region: Sequence[Rect]) -> bool:
    """True when the candidate lies entirely inside the region union."""
    return intersection_area([candidate], list(region)) == candidate.area


def _select_until(
    candidates: List[Rect],
    need_area: float,
    window: Optional[Rect] = None,
) -> List[Rect]:
    """Take candidates in ranked order until their area reaches
    ``need_area``, spread across the window's quadrants.

    Pure rank order concentrates the selection wherever free space (or
    quality) clusters, leaving intra-window density gradients that the
    fixed dissection cannot see but a sliding-window (multi-phase)
    audit flags immediately.  With a window given, selection
    round-robins over the four quadrants, taking each quadrant's
    candidates in rank order — same candidates, spatially balanced.
    """
    if window is None:
        ordered = candidates
    else:
        cx, cy = window.center
        buckets: List[List[Rect]] = [[], [], [], []]
        for cand in candidates:
            fx, fy = cand.center
            buckets[(fx >= cx) * 2 + (fy >= cy)].append(cand)
        ordered = []
        cursors = [0] * 4
        while len(ordered) < len(candidates):
            for q in range(4):
                if cursors[q] < len(buckets[q]):
                    ordered.append(buckets[q][cursors[q]])
                    cursors[q] += 1
    out: List[Rect] = []
    acc = 0
    for cand in ordered:
        if acc >= need_area:
            break
        out.append(cand)
        acc += cand.area
    return out


def _neighbor_shapes(
    shared: _SharedState,
    ctx: _WindowContext,
    layer_number: int,
    window: Rect,
    margin: int,
) -> List[Rect]:
    """Wires and selected candidates on layers l−1 and l+1 near a window.

    Wires come from the per-layer :class:`GridIndex` built once per
    run, not a scan of the whole layer: the index query returns
    exactly the wires whose closed box touches the expanded window —
    the same set (in the same insertion order) whose intersection with
    it is non-``None``.
    """
    shapes: List[Rect] = []
    frame = window.expanded(margin)
    for adj in (layer_number - 1, layer_number + 1):
        if adj < 1 or adj > shared.num_layers:
            continue
        for wire, _ in shared.wire_indexes[adj].query(frame):
            clipped = wire.intersection(frame)
            if clipped is not None:
                shapes.append(clipped)
        shapes.extend(ctx.selected.get(adj, []))
    return shapes


def _window_candidates(
    shared: _SharedState, task: _WindowTask
) -> Dict[int, List[Rect]]:
    """Run Alg. 1 for one window; the unit of (possibly sharded) work."""
    rules = shared.rules
    config = shared.config
    lam = config.lambda_factor
    numbers = shared.numbers
    window = task.window
    ctx = _WindowContext(
        key=task.key,
        area=task.area,
        regions=task.regions,
        wire_density=task.wire_density,
        targets=task.targets,
        selected={n: [] for n in numbers},
    )
    # --- odd layers (Alg. 1 lines 9-19) -------------------------------
    for l in (n for n in numbers if n % 2 == 1):
        dt = ctx.targets[l]
        dw = ctx.wire_density[l]
        need = max(0.0, lam * dt - dw) * ctx.area
        if need <= 0:
            continue
        # Region 3: free on this layer AND on every existing
        # adjacent layer.  Alg. 1 writes intersect(fr(l), fr(l+1));
        # for the top odd layer of an odd stack the relevant
        # neighbour is l-1 instead.
        shared_region = ctx.regions[l]
        dg_sum = max(0.0, dt - dw)
        has_neighbor = False
        for adj in (l + 1, l - 1):
            if adj in ctx.regions and adj >= 1:
                shared_region = rect_set_intersect(
                    shared_region, ctx.regions[adj]
                )
                dg_sum += max(
                    0.0, ctx.targets[adj] - ctx.wire_density[adj]
                )
                has_neighbor = True
        if not has_neighbor:
            shared_region = []
        shared_area = sum(r.area for r in shared_region)
        case_one = (
            config.case1_steering
            and bool(shared_region)
            and shared_area >= dg_sum * ctx.area
        )
        # Case I (Alg. 1 line 13): both gaps fit in the doubly-free
        # region — shape candidates inside it (Fig. 4(b)) and take
        # the shaped ones first.  Case II: largest fills first
        # (Alg. 1 line 16).
        cands = grid_candidates(
            ctx.regions[l],
            rules,
            anchor=window,
            prefer=shared_region if case_one else None,
        )
        if not cands:
            continue
        if case_one:
            cands.sort(key=lambda c: (not _covered(c, shared_region), -c.area))
        else:
            cands.sort(key=lambda c: -c.area)
        ctx.selected[l] = _select_until(cands, need, window)
    # --- even layers (Alg. 1 lines 20-24) -----------------------------
    for l in (n for n in numbers if n % 2 == 0):
        dt = ctx.targets[l]
        dw = ctx.wire_density[l]
        need = max(0.0, lam * dt - dw) * ctx.area
        if need <= 0:
            continue
        # Grid phase: when the free space left over by the adjacent
        # layers' fills can host this layer's need, an *aligned*
        # grid lets the quality score pick exactly the empty tiles
        # (the Fig. 4(b) interleaving -> zero fill-fill overlay).
        # Only when the layers must fill nearly everything does a
        # half-pitch stagger reduce the unavoidable per-pair overlap.
        region_area = sum(r.area for r in ctx.regions[l])
        adj_fill_area = sum(
            r.area
            for adj in (l - 1, l + 1)
            if adj in ctx.selected
            for r in ctx.selected[adj]
        )
        use_stagger = config.stagger_even_layers and need > max(
            0, region_area - adj_fill_area
        )
        cands = grid_candidates(
            ctx.regions[l],
            rules,
            stagger=use_stagger,
            anchor=window,
        )
        if not cands:
            continue
        neighbors = _neighbor_shapes(
            shared, ctx, l, window, rules.min_spacing
        )
        if config.kernel == "raster":
            # One occupancy raster of the neighbour metal, one batched
            # integral-image query for every candidate's overlay.  The
            # box sum counts multiplicity, which is exactly the
            # per-shape intersection sum of Eqn. (8); the score
            # arithmetic below repeats quality_score() operand for
            # operand, so the floats (and the ranking) are identical.
            from ..geometry import Raster

            ras = Raster.from_rects(neighbors)
            n = len(cands)
            ov = ras.weighted_area_sums(
                np.fromiter((c.xl for c in cands), np.int64, n),
                np.fromiter((c.yl for c in cands), np.int64, n),
                np.fromiter((c.xh for c in cands), np.int64, n),
                np.fromiter((c.yh for c in cands), np.int64, n),
            )
            scored = [
                (-int(o) / c.area + config.gamma * c.area / ctx.area, c)
                for o, c in zip(ov, cands)
            ]
        else:
            index: GridIndex[int] = GridIndex(
                max(64, rules.max_fill_width + rules.min_spacing)
            )
            for k, s in enumerate(neighbors):
                index.insert(s, k)
            scored = [
                (
                    quality_score(
                        c,
                        [r for r, _ in index.query_overlapping(c)],
                        ctx.area,
                        config.gamma,
                    ),
                    c,
                )
                for c in cands
            ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        # No quadrant spread here: the quality ranking itself must
        # decide (a spread would pull overlay-heavy candidates in
        # ahead of clean ones); the odd layers' spread already
        # balances where the empty tiles are.
        ctx.selected[l] = _select_until([c for _, c in scored], need)
    return ctx.selected


def _generate_shard(
    shared: _SharedState, tasks: Sequence[_WindowTask]
) -> List[Tuple[WindowKey, Dict[int, List[Rect]]]]:
    """Worker entry point: Alg. 1 over one shard of windows, in order."""
    out: List[Tuple[WindowKey, Dict[int, List[Rect]]]] = []
    for task in tasks:
        selected = _window_candidates(shared, task)
        out.append((task.key, selected))
        obs.metrics.counter("candidates.windows").inc()
        for l, chosen in selected.items():
            if chosen:
                round_name = "odd" if l % 2 == 1 else "even"
                obs.metrics.counter(f"candidates.round.{round_name}").inc(
                    len(chosen)
                )
    return out


def build_wire_indexes(layout: Layout) -> Dict[int, GridIndex[int]]:
    """One spatial index per layer over its wires, built up front.

    Replaces the per-window full-layer wire scans; shared read-only
    with parallel workers (pickled once per worker).  Also the cache a
    :class:`repro.service` session keeps alive across requests — pass
    it back into :func:`generate_candidates` (or
    :meth:`repro.core.DummyFillEngine.run`) via ``wire_indexes`` to
    skip the rebuild.  Insertion order is the layer's wire order, so a
    cached index extended in wire-commit order stays identical to a
    rebuild.
    """
    cell = max(64, min(layout.die.width, layout.die.height) // 16)
    out: Dict[int, GridIndex[int]] = {}
    for layer in layout.layers:
        index: GridIndex[int] = GridIndex(cell)
        for k, wire in enumerate(layer.wires):
            index.insert(wire, k)
        out[layer.number] = index
    return out


def generate_candidates(
    layout: Layout,
    grid: WindowGrid,
    plan: DensityPlan,
    analysis: Mapping[int, LayerDensity],
    config: Optional[FillConfig] = None,
    windows: Optional[Sequence[WindowKey]] = None,
    *,
    wire_indexes: Optional[Dict[int, GridIndex[int]]] = None,
) -> CandidatePlan:
    """Run Alg. 1 over every window of the layout.

    Returns the candidate plan: per window, per layer, the list of
    candidate fill rectangles whose total density is at least
    ``λ · td`` (when the free space allows it).

    ``windows`` restricts generation to the given window keys (the ECO
    flow re-fills only the windows a change touched).
    ``wire_indexes`` supplies prebuilt per-layer wire indexes (see
    :func:`build_wire_indexes`); they must cover exactly the layout's
    current wires.

    Windows are independent by construction, so with
    ``config.workers != 1`` the window list is sharded contiguously in
    grid order and the shards run on the :mod:`repro.parallel`
    backend; results (and worker spans/metrics) merge in shard order,
    making the output identical for every worker count.
    """
    if config is None:
        config = FillConfig()
    numbers = tuple(layout.layer_numbers)
    if wire_indexes is None:
        wire_indexes = build_wire_indexes(layout)
    else:
        for layer in layout.layers:
            index = wire_indexes.get(layer.number)
            if index is None or len(index) != layer.num_wires:
                have = "missing" if index is None else f"{len(index)} wires"
                raise ValueError(
                    f"stale wire index for layer {layer.number}: {have}, "
                    f"layer has {layer.num_wires}"
                )
    shared = _SharedState(
        rules=layout.rules,
        config=config,
        numbers=numbers,
        num_layers=layout.num_layers,
        wire_indexes=wire_indexes,
    )
    selected_windows = set(windows) if windows is not None else None
    tasks: List[_WindowTask] = []
    for i, j, window in grid:
        key = (i, j)
        if selected_windows is not None and key not in selected_windows:
            continue
        tasks.append(
            _WindowTask(
                key=key,
                window=window,
                area=grid.window_area(i, j),
                regions={
                    n: analysis[n].fill_regions.get(key, []) for n in numbers
                },
                wire_density={
                    n: float(analysis[n].lower[i, j]) for n in numbers
                },
                targets={n: float(plan.target(n)[i, j]) for n in numbers},
            )
        )

    obs.count("candidates.windows_selected", len(tasks))
    workers = config.effective_workers()
    if workers == 1 or len(tasks) <= 1:
        pairs = _generate_shard(shared, tasks)
    else:
        from ..parallel import run_sharded, shard_items

        shards = shard_items(tasks, workers)
        pairs = [
            pair
            for shard_pairs in run_sharded(
                _generate_shard,
                shared,
                shards,
                workers=workers,
                backend=config.parallel,
                label="candidates.shard",
                sanitize=config.sanitize,
            )
            for pair in shard_pairs
        ]
    return dict(pairs)


def candidate_area_maps(
    candidates: CandidatePlan, grid: WindowGrid, layer_numbers: Sequence[int]
) -> Dict[int, np.ndarray]:
    """Total candidate fill area per window per layer.

    Feeds the second density-planning round (Fig. 3): after candidate
    generation the achievable upper bound of each window is the wire
    density plus what the candidates can actually deliver.
    """
    maps = {
        n: np.zeros((grid.cols, grid.rows), dtype=np.float64)
        for n in layer_numbers
    }
    for (i, j), per_layer in candidates.items():
        for n, rects in per_layer.items():
            maps[n][i, j] = float(sum(r.area for r in rects))
    return maps
