"""Configuration for the fill insertion framework.

Collects every tunable the paper names — λ (Alg. 1 over-generation),
γ (Eqn. (8) quality weight), η (Eqn. (9a) overlay weight) — plus the
engineering knobs of the iterative sizing loop (§3.3.2): the number of
alternating horizontal/vertical passes, the per-iteration trust-region
step, and which LP backend solves each pass.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Optional

__all__ = ["FillConfig"]

_SOLVERS = ("mcf-ssp", "mcf-simplex", "mcf-costscaling", "lp")
_BACKENDS = ("process", "thread", "serial")
_KERNELS = ("rect", "raster")


@dataclass(frozen=True)
class FillConfig:
    """Knobs of the fill insertion flow (Fig. 3).

    Parameters
    ----------
    lambda_factor:
        λ of Alg. 1 — candidate fills are generated until the window
        density reaches ``λ · td``.  Must be ≥ 1: candidates are an
        upper bound the sizing stage only shrinks.
    gamma:
        γ of Eqn. (8) — weight of the area term in the candidate
        quality score.  The paper uses 1.
    eta:
        η of Eqn. (9a) — weight of overlay against density gap in the
        sizing objective.  The paper uses 1.
    td_step:
        Grid-search resolution for Case II target-density planning
        (§3.1: "search all combinations ... with small steps").
    sizing_iterations:
        Alternating horizontal/vertical LP rounds (§3.3.2).  Each round
        runs one horizontal and one vertical pass.
    sizing_step:
        Trust-region bound per edge per pass, in dbu ("variables are
        bounded to a certain range"); ``None`` derives it from the DRC
        maximum fill size.
    solver:
        ``"mcf-ssp"`` (dual min-cost flow via successive shortest paths,
        the paper's fast path), ``"mcf-simplex"`` (dual MCF via network
        simplex), ``"mcf-costscaling"`` (dual MCF via Goldberg-Tarjan
        cost scaling), or ``"lp"`` (scipy HiGHS — the §3.3.2 reference).
    window_margin:
        Inset applied to each window when extracting fill regions so
        fills in adjacent windows keep legal spacing across window
        boundaries; ``None`` derives ``ceil(sm / 2)`` from the rules.
    stagger_even_layers:
        Offset even layers' candidate grids by half a pitch so fills on
        adjacent layers interleave instead of stacking (the Fig. 4(b)
        zero-overlay arrangement).
    case1_steering:
        When a window's doubly-free region (Region 3 of Figs. 4/5) can
        host both layers' density gaps, shape odd-layer candidates
        inside it (Alg. 1 Case I).  Disable to measure the overlay cost
        of ignoring the neighbour layers during candidate generation.
    workers:
        Worker count for the sharded engine stages: density analysis
        (sharded over layers, which are independent by construction)
        and candidate generation and sizing (sharded over windows,
        likewise independent).  ``1`` (the default) runs serially and
        is bit-identical to the pre-parallel engine; ``0`` means one
        worker per available core; any ``N > 1`` shards the work list
        over ``N`` workers and merges deterministically, so the
        output is identical for every worker count.
    parallel:
        Execution backend used when ``workers != 1``: ``"process"``
        (a process pool — the fast path for the pure-Python shard
        bodies), ``"thread"`` (a thread pool; GIL-bound but cheap to
        start), or ``"serial"`` (shard and merge without any pool —
        the reference the determinism tests compare against).
    sanitize:
        Arm the runtime shard sanitizer: pickle-digest the shared state
        around every shard worker and fail loudly
        (:class:`repro.parallel.ShardMutationError`) if a worker
        mutates it.  ``None`` (the default) defers to
        ``REPRO_SANITIZE=shard`` in the environment; ``False`` forces
        it off.  Costs one pickle round per shard when armed, nothing
        when off.
    kernel:
        Geometry/density kernel for the per-window hot paths:
        ``"rect"`` (the scanline rect-set oracle) or ``"raster"``
        (coordinate-compressed numpy occupancy grids + integral images,
        :mod:`repro.density.raster`).  Both produce bit-identical
        GDSII — the raster kernel is exact, not an approximation — so
        this is purely a speed knob; the rect path stays as the oracle
        the CI kernel-parity gate compares against.
    memory_budget:
        Byte budget for the out-of-core streaming driver
        (:func:`repro.core.stream.stream_fill`): the die is swept in
        enough window-column bands that one band's estimated resident
        geometry fits the budget.  ``None`` (the default) defers to
        the driver's own default; the in-memory engine ignores it.
    """

    lambda_factor: float = 1.1
    gamma: float = 1.0
    eta: float = 1.0
    td_step: float = 0.02
    sizing_iterations: int = 3
    sizing_step: Optional[int] = None
    solver: str = "mcf-ssp"
    window_margin: Optional[int] = None
    stagger_even_layers: bool = True
    case1_steering: bool = True
    workers: int = 1
    parallel: str = "process"
    sanitize: Optional[bool] = None
    kernel: str = "rect"
    memory_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lambda_factor < 1.0:
            raise ValueError("lambda_factor must be >= 1 (Alg. 1: λ ≥ 1)")
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if self.eta < 0:
            raise ValueError("eta must be non-negative")
        if not (0 < self.td_step <= 0.5):
            raise ValueError("td_step must lie in (0, 0.5]")
        if self.sizing_iterations < 0:
            raise ValueError("sizing_iterations cannot be negative")
        if self.sizing_step is not None and self.sizing_step < 1:
            raise ValueError("sizing_step must be at least 1 dbu")
        if self.solver not in _SOLVERS:
            raise ValueError(f"solver must be one of {_SOLVERS}")
        if self.window_margin is not None and self.window_margin < 0:
            raise ValueError("window_margin cannot be negative")
        if self.workers < 0:
            raise ValueError("workers cannot be negative (0 means one per core)")
        if self.parallel not in _BACKENDS:
            raise ValueError(f"parallel must be one of {_BACKENDS}")
        if self.kernel not in _KERNELS:
            raise ValueError(f"kernel must be one of {_KERNELS}")
        if self.memory_budget is not None and self.memory_budget < 1:
            raise ValueError("memory_budget must be a positive byte count")

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "FillConfig":
        """Build a config from a plain dict (a JSON request body).

        Unknown keys raise ``ValueError`` — a misspelled knob in a
        service request must fail the request, not silently run with
        defaults.  Values pass through ``__post_init__`` validation
        exactly like keyword construction.
        """
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValueError(
                f"unknown config keys {unknown} (known: {sorted(known)})"
            )
        return cls(**dict(mapping))

    def as_mapping(self) -> Dict[str, Any]:
        """The config as a JSON-ready dict; inverse of :meth:`from_mapping`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def effective_margin(self, min_spacing: int) -> int:
        """Window-edge inset: explicit value or ``ceil(sm / 2)``."""
        if self.window_margin is not None:
            return self.window_margin
        return -(-min_spacing // 2)

    def effective_step(self, max_fill_width: int, max_fill_height: int) -> int:
        """Trust-region step: explicit value or a quarter of the fill size."""
        if self.sizing_step is not None:
            return self.sizing_step
        return max(2, min(max_fill_width, max_fill_height) // 4)

    def effective_workers(self) -> int:
        """Resolved worker count: ``0`` maps to one per available core.

        Delegates to :func:`repro.parallel.resolve_workers` so the
        config, CLI, and executor share one resolution rule (imported
        lazily: this module must stay importable without pulling in the
        execution layer).
        """
        from ..parallel import resolve_workers

        return resolve_workers(self.workers)
