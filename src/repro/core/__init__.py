"""The paper's primary contribution: planning, candidates, sizing, engine."""

from .candidates import (
    CandidatePlan,
    build_wire_indexes,
    candidate_area_maps,
    generate_candidates,
    grid_candidates,
    quality_score,
)
from .config import FillConfig
from .engine import DummyFillEngine, FillReport, insert_fills
from .planner import DensityPlan, LayerPlan, PlannerObjective, plan_targets
from .sizing import SizingStats, size_fills, size_window
from .stream import StreamReport, resolve_bands, stream_fill

__all__ = [
    "CandidatePlan",
    "build_wire_indexes",
    "candidate_area_maps",
    "generate_candidates",
    "grid_candidates",
    "quality_score",
    "FillConfig",
    "DummyFillEngine",
    "FillReport",
    "insert_fills",
    "DensityPlan",
    "LayerPlan",
    "PlannerObjective",
    "plan_targets",
    "SizingStats",
    "size_fills",
    "size_window",
    "StreamReport",
    "resolve_bands",
    "stream_fill",
]
