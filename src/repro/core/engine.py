"""End-to-end dummy fill insertion engine (paper Fig. 3).

Runs the full flow on a layout:

1. **density analysis** — wire densities, feasible fill regions and
   density bounds per window (§2.2, §3.1 preliminaries),
2. **density planning** — per-layer target density td (§3.1),
3. **candidate fill generation** — Alg. 1 (§3.2),
4. **density planning, second round** — re-plan against what the
   candidates can actually deliver ("another round of density planning
   is performed due to the inconsistency between candidate fills and
   initial plans"),
5. **dummy fill insertion** — shrink candidates to final sizes via the
   alternating LP / dual-MCF relaxation (§3.3) and commit them to the
   layout.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..contracts import check_drc_params, check_rect
from ..density.analysis import LayerDensity, analyze_layout
from ..density.scoring import ScoreWeights
from ..geometry import GridIndex
from ..layout import Layout, WindowGrid
from .candidates import CandidatePlan, candidate_area_maps, generate_candidates
from .config import FillConfig
from .planner import DensityPlan, PlannerObjective, plan_targets
from .sizing import SizingStats, size_fills

__all__ = ["FillReport", "DummyFillEngine", "insert_fills"]

logger = logging.getLogger(__name__)

WindowKey = Tuple[int, int]


@dataclass
class FillReport:
    """Everything the engine learned while filling a layout."""

    initial_plan: DensityPlan
    final_plan: DensityPlan
    num_candidates: int
    num_fills: int
    sizing: SizingStats
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def summary(self) -> str:
        stages = ", ".join(
            f"{name}={secs:.2f}s" for name, secs in self.stage_seconds.items()
        )
        return (
            f"fills={self.num_fills} (from {self.num_candidates} candidates), "
            f"LP solves={self.sizing.lp_solves}, dropped={self.sizing.dropped_fills}; "
            f"{stages}"
        )


class DummyFillEngine:
    """The high-performance fill insertion framework of the paper.

    Construct with a :class:`~repro.core.config.FillConfig` (and
    optionally the benchmark's :class:`~repro.density.ScoreWeights`,
    which tune the density planner's objective), then call :meth:`run`
    on a layout.  The engine mutates the layout by adding fills and
    returns a :class:`FillReport`.
    """

    def __init__(
        self,
        config: Optional[FillConfig] = None,
        weights: Optional[ScoreWeights] = None,
    ):
        self.config = config if config is not None else FillConfig()
        self.objective = (
            PlannerObjective.from_score_weights(weights)
            if weights is not None
            else PlannerObjective()
        )

    def run(
        self,
        layout: Layout,
        grid: WindowGrid,
        windows: Optional[Sequence[WindowKey]] = None,
        *,
        analysis: Optional[Mapping[int, LayerDensity]] = None,
        wire_indexes: Optional[Mapping[int, "GridIndex[int]"]] = None,
    ) -> FillReport:
        """Execute the Fig. 3 flow; fills are committed to ``layout``.

        ``windows`` restricts candidate generation, sizing and
        insertion to the given window keys while density analysis and
        target planning stay global — the incremental mode the ECO
        flow (:mod:`repro.eco`) uses to re-fill only changed windows.

        ``analysis`` supplies a precomputed global density analysis
        (one that matches the layout's wires and this config's
        ``effective_margin``) and skips the analysis stage entirely;
        ``wire_indexes`` supplies prebuilt per-layer wire indexes for
        candidate generation.  Both are the session-reuse hooks of
        :mod:`repro.service` — with valid caches the output is
        bit-identical to a cold run.
        """
        config = self.config
        check_drc_params(layout.rules, name="layout.rules")
        collector = obs.profile.active_collector()

        with obs.span("engine.run") as run_span:
            if collector is not None:
                run_span.annotate(profile_period_ms=collector.period_ms)
            with obs.span("analysis") as analysis_span:
                if analysis is None:
                    margin = config.effective_margin(layout.rules.min_spacing)
                    analysis = analyze_layout(
                        layout,
                        grid,
                        window_margin=margin,
                        workers=config.effective_workers(),
                        parallel=config.parallel,
                        sanitize=config.sanitize,
                        kernel=config.kernel,
                    )
                else:
                    analysis_span.annotate(reused=True)
                obs.count("engine.layers", len(analysis))
                obs.count("engine.windows", grid.num_windows)

            with obs.span("planning"):
                initial_plan = plan_targets(
                    analysis, self.objective, td_step=config.td_step
                )
            logger.info(
                "planned targets: %s",
                {n: round(p.td, 3) for n, p in initial_plan.layers.items()},
            )

            with obs.span("candidates"):
                candidates = generate_candidates(
                    layout,
                    grid,
                    initial_plan,
                    analysis,
                    config,
                    windows=windows,
                    wire_indexes=dict(wire_indexes) if wire_indexes else None,
                )
                num_candidates = sum(
                    len(rects)
                    for per_layer in candidates.values()
                    for rects in per_layer.values()
                )
                obs.count("engine.candidates", num_candidates)

            with obs.span("replanning"):
                final_plan = self._replan(layout, grid, analysis, candidates)
                targets = self._target_fill_areas(grid, analysis, final_plan)

            logger.info("generated %d candidate fills", num_candidates)

            with obs.span("sizing"):
                sized, stats = size_fills(layout, grid, candidates, targets, config)
                obs.count("engine.lp_solves", stats.lp_solves)
                obs.count("engine.dropped_fills", stats.dropped_fills)
            logger.info(
                "sizing: %d LP solves, %d fills dropped",
                stats.lp_solves,
                stats.dropped_fills,
            )

            with obs.span("insertion"):
                num_fills = 0
                for per_layer in sized.values():
                    for layer_number, rects in per_layer.items():
                        layout.layer(layer_number).add_fills(
                            check_rect(r, name=f"fill on layer {layer_number}")
                            for r in rects
                        )
                        num_fills += len(rects)
                obs.count("engine.fills", num_fills)

        if collector is not None:
            # CPU attribution next to the wall time: how many profiler
            # samples landed inside each stage (incl. shard workers)
            per_stage = collector.stage_sample_counts("engine.run")
            for child in run_span.children:
                child.annotate(profile_samples=per_stage.get(child.name, 0))

        return FillReport(
            initial_plan=initial_plan,
            final_plan=final_plan,
            num_candidates=num_candidates,
            num_fills=num_fills,
            sizing=stats,
            stage_seconds={c.name: c.seconds for c in run_span.children},
        )

    # ------------------------------------------------------------------
    def run_streaming(
        self,
        source,
        output,
        rules,
        *,
        cols: int,
        rows: int,
        memory_budget: Optional[int] = None,
        bands: Optional[int] = None,
        eco_wires=None,
        output_format: str = "gdsii",
        include_wires: bool = True,
        work_dir: Optional[str] = None,
    ):
        """Run the flow out-of-core on a GDSII stream (bounded memory).

        The streaming counterpart of :meth:`run`: ``source`` is a
        GDSII path/bytes/stream rather than a loaded layout, the die
        is swept in window-column bands sized to ``memory_budget``
        (or an explicit ``bands`` count), and the filled layout is
        written straight to ``output``.  Output bytes are identical
        to loading the layout, calling :meth:`run` and serialising —
        see :func:`repro.core.stream.stream_fill` for the contract.
        """
        from .stream import stream_fill

        return stream_fill(
            source,
            output,
            rules,
            cols=cols,
            rows=rows,
            config=self.config,
            objective=self.objective,
            memory_budget=memory_budget,
            bands=bands,
            eco_wires=eco_wires,
            output_format=output_format,
            include_wires=include_wires,
            work_dir=work_dir,
        )

    # ------------------------------------------------------------------
    def _replan(
        self,
        layout: Layout,
        grid: WindowGrid,
        analysis: Mapping[int, LayerDensity],
        candidates: CandidatePlan,
    ) -> DensityPlan:
        """Second planning round with candidate-limited upper bounds.

        A window can deliver its candidates *plus* any fill already
        committed to it — the latter matters in the window-restricted
        (ECO) mode, where untouched windows carry their existing fill
        and must not read as zero-capacity, which would drag the
        re-planned target below the surrounding density.
        """
        from ..density.analysis import fill_density_map, window_area_map

        cand_area = candidate_area_maps(candidates, grid, layout.layer_numbers)
        window_area = window_area_map(grid).astype(np.float64)
        updated: Dict[int, LayerDensity] = {}
        for n, ld in analysis.items():
            existing = (
                fill_density_map(layout.layer(n), grid, kernel=self.config.kernel)
                if layout.layer(n).num_fills
                else 0.0
            )
            upper = np.minimum(
                1.0, ld.lower + existing + cand_area[n] / window_area
            )
            updated[n] = LayerDensity(
                layer_number=n,
                lower=ld.lower,
                upper=upper,
                fill_regions=ld.fill_regions,
            )
        return plan_targets(updated, self.objective, td_step=self.config.td_step)

    def _target_fill_areas(
        self,
        grid: WindowGrid,
        analysis: Mapping[int, LayerDensity],
        plan: DensityPlan,
    ) -> Dict[WindowKey, Dict[int, float]]:
        """dt(l)·aw of Eqn. (9b) per window: the fill area to keep.

        Vectorized: one ``max(0, dt − l) · aw`` array op per layer
        instead of a Python loop over windows × layers; the per-window
        dict view the sizing stage consumes is built off the arrays.
        """
        from ..density.analysis import window_area_map

        area = window_area_map(grid)
        per_layer = {
            n: np.maximum(0.0, plan.target(n) - analysis[n].lower) * area
            for n in analysis
        }
        out: Dict[WindowKey, Dict[int, float]] = {}
        for i, j, _ in grid:
            out[(i, j)] = {n: float(per_layer[n][i, j]) for n in analysis}
        return out


def insert_fills(
    layout: Layout,
    grid: WindowGrid,
    config: Optional[FillConfig] = None,
    weights: Optional[ScoreWeights] = None,
) -> FillReport:
    """One-call convenience API: fill ``layout`` in place."""
    return DummyFillEngine(config, weights).run(layout, grid)
