"""Command-line interface: ``python -m repro <command>``.

The contest tools were command-line binaries (GDSII in, GDSII out);
this CLI exposes the same workflow:

* ``generate`` — synthesise a benchmark layout and write it as GDSII,
* ``info``     — print a GDSII file's layers, shape counts, densities,
* ``fill``     — insert dummy fill into a GDSII file (the main tool),
* ``score``    — score a filled GDSII against contest-style weights,
* ``drc``      — check the fills of a GDSII for rule violations,
* ``eco``      — commit new wires to a filled GDSII and incrementally
  re-fill only the windows the change dirtied (:mod:`repro.eco`),
* ``serve``    — run the persistent fill service: sessions, batch job
  queue, NDJSON socket protocol (:mod:`repro.service`),
* ``trace``    — render/diff/export run records written by
  ``--trace-out`` (forwards to ``python -m repro.obs``),
* ``bench``    — record and gate benchmark score/perf trajectories
  (forwards to ``python -m repro.bench``).

Every command reads and writes real GDSII byte streams, so the CLI
composes with any external layout tooling.  ``generate``, ``fill``,
``score``, ``drc`` and ``eco`` accept ``--trace-out PATH`` to write a
:mod:`repro.obs` run record (JSONL) of the command, ``--log-level`` /
``--events PATH`` to tune the structured event log, and ``--profile``
(``--profile-ms MS``) to attach the sampling profiler, whose folded
stacks land in the run record for
``repro trace export --format folded``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import Iterator, Optional, Sequence

from . import obs
from .bench.generator import LayoutSpec, generate_layout
from .bench.suite import calibrate_weights
from .core import DummyFillEngine, FillConfig
from .density import compute_metrics, metal_density_map, score_layout, wire_density_map
from .gdsii import file_size_mb, gdsii_bytes, layout_from_gdsii
from .layout import DrcRules, Layout, WindowGrid

__all__ = ["main", "build_parser"]


def _add_rules_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("DRC rules")
    group.add_argument("--min-spacing", type=int, default=10)
    group.add_argument("--min-width", type=int, default=10)
    group.add_argument("--min-area", type=int, default=400)
    group.add_argument("--max-fill", type=int, default=150, help="max fill edge")


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("engine")
    group.add_argument("--eta", type=float, default=0.2, help="overlay weight")
    group.add_argument("--lambda", dest="lambda_factor", type=float, default=1.1)
    group.add_argument("--gamma", type=float, default=1.0)
    group.add_argument(
        "--solver",
        choices=("mcf-ssp", "mcf-simplex", "mcf-costscaling", "lp"),
        default="mcf-ssp",
    )
    group.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel workers for the sharded engine stages — density "
        "analysis (per layer), candidate generation and sizing (per "
        "window) (1 = serial, 0 = one per core; output is identical "
        "for any N)",
    )
    group.add_argument(
        "--parallel",
        choices=("process", "thread", "serial"),
        default="process",
        help="execution backend when --workers != 1 (default: process)",
    )
    group.add_argument(
        "--sanitize",
        action="store_true",
        default=None,
        help="arm the shard sanitizer: digest shared state around every "
        "shard worker and fail loudly if a worker mutates it (default: "
        "follow REPRO_SANITIZE=shard in the environment)",
    )
    group.add_argument(
        "--kernel",
        choices=("rect", "raster"),
        default="rect",
        help="geometry/density kernel for the per-window hot paths: "
        "'rect' (scanline rect sets, the oracle) or 'raster' "
        "(vectorized occupancy grids + integral images); both produce "
        "byte-identical GDSII — raster is purely faster",
    )


def _config_from(args: argparse.Namespace) -> "FillConfig":
    return FillConfig(
        eta=args.eta,
        lambda_factor=args.lambda_factor,
        gamma=args.gamma,
        solver=args.solver,
        workers=args.workers,
        parallel=args.parallel,
        sanitize=args.sanitize,
        kernel=args.kernel,
        memory_budget=getattr(args, "memory_budget", None),
    )


def _parse_size(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (powers of 1024)."""
    raw = text.strip().lower()
    multiplier = 1
    for suffix, value in (("k", 1024), ("m", 1024**2), ("g", 1024**3)):
        if raw.endswith(suffix):
            multiplier = value
            raw = raw[: -len(suffix)]
            break
    try:
        count = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (expected e.g. 268435456, 256M, 1G)"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError("size must be positive")
    return count * multiplier


def _add_stream_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("streaming")
    group.add_argument(
        "--stream",
        action="store_true",
        help="run out-of-core: stream the GDSII through per-band spill "
        "files and fill one window-column band at a time (bounded "
        "peak memory; output bytes identical to the in-memory path)",
    )
    group.add_argument(
        "--memory-budget",
        type=_parse_size,
        default=None,
        metavar="SIZE",
        help="byte budget for --stream, with optional K/M/G suffix "
        "(default: 256M); sizes the number of bands",
    )
    group.add_argument(
        "--bands",
        type=int,
        default=None,
        metavar="N",
        help="explicit band count for --stream (overrides the budget)",
    )
    group.add_argument(
        "--format",
        choices=("gdsii", "oasis"),
        default="gdsii",
        help="output format (default: gdsii)",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace-out",
        type=Path,
        metavar="PATH",
        help="write a run record (JSONL spans, metrics, peak RSS) to PATH",
    )
    group.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="event-log verbosity (default: warning)",
    )
    group.add_argument(
        "--events",
        type=Path,
        metavar="PATH",
        help="append structured JSON event lines to PATH instead of stderr",
    )


def _add_profile_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("profiling")
    group.add_argument(
        "--profile",
        action="store_true",
        help="attach the sampling profiler for the command; folded "
        "stacks land in the run record (--trace-out) for "
        "`repro trace export --format folded`",
    )
    group.add_argument(
        "--profile-ms",
        type=float,
        default=10.0,
        metavar="MS",
        help="sampling period in milliseconds (default: 10.0)",
    )


@contextlib.contextmanager
def _observed(args: argparse.Namespace, label: str) -> Iterator[None]:
    """Apply the observability/profiling flags around one command.

    Event-log level and destination come from ``--log-level`` /
    ``--events`` (all diagnostics flow through ``repro.obs.events``;
    stdlib ``repro.*`` loggers are bridged in).  ``--trace-out``
    records the command; ``--profile`` arms the sampling profiler
    *inside* the recorded region so the profile publishes onto the
    record's tracer before the record closes.
    """
    obs.events.configure(
        level=args.log_level,
        path=str(args.events) if getattr(args, "events", None) else None,
    )
    with contextlib.ExitStack() as stack:
        if args.trace_out is not None:
            stack.enter_context(obs.record_run(args.trace_out, label=label))
        if getattr(args, "profile", False):
            stack.enter_context(obs.profiled(period_ms=args.profile_ms))
        yield
    if args.trace_out is not None:
        print(f"wrote run record {args.trace_out}")


def _rules_from(args: argparse.Namespace) -> DrcRules:
    return DrcRules(
        min_spacing=args.min_spacing,
        min_width=args.min_width,
        min_area=args.min_area,
        max_fill_width=args.max_fill,
        max_fill_height=args.max_fill,
    )


def _grid_from(args: argparse.Namespace, layout: Layout) -> WindowGrid:
    return WindowGrid(layout.die, args.windows, args.windows)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dummy fill insertion with coupling and uniformity "
        "constraints (DAC 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="synthesise a benchmark layout")
    gen.add_argument("output", type=Path, help="output GDSII path")
    gen.add_argument("--die", type=int, default=4000, help="die edge in dbu")
    gen.add_argument("--layers", type=int, default=3)
    gen.add_argument("--seed", type=int, default=2014)
    gen.add_argument("--wires", type=int, default=450, help="cell rects per layer")
    _add_rules_args(gen)
    _add_obs_args(gen)
    _add_profile_args(gen)

    info = sub.add_parser("info", help="inspect a GDSII layout")
    info.add_argument("input", type=Path)
    info.add_argument("--windows", type=int, default=8, help="grid edge count")
    _add_rules_args(info)

    fill = sub.add_parser("fill", help="insert dummy fill into a GDSII")
    fill.add_argument("input", type=Path)
    fill.add_argument("output", type=Path)
    fill.add_argument("--windows", type=int, default=8)
    _add_engine_args(fill)
    fill.add_argument(
        "--report",
        type=Path,
        help="write a markdown run report to this path",
    )
    _add_stream_args(fill)
    _add_rules_args(fill)
    _add_obs_args(fill)
    _add_profile_args(fill)

    score = sub.add_parser("score", help="score a filled GDSII")
    score.add_argument("input", type=Path, help="filled layout")
    score.add_argument(
        "--reference",
        type=Path,
        help="unfilled layout used to calibrate the score weights "
        "(defaults to the input with fills stripped)",
    )
    score.add_argument("--windows", type=int, default=8)
    _add_rules_args(score)
    _add_obs_args(score)
    _add_profile_args(score)

    drc = sub.add_parser("drc", help="check fills against the rule deck")
    drc.add_argument("input", type=Path)
    _add_rules_args(drc)
    _add_obs_args(drc)
    _add_profile_args(drc)

    eco = sub.add_parser(
        "eco",
        help="commit new wires to a filled GDSII and re-fill only the "
        "dirtied windows",
    )
    eco.add_argument("input", type=Path, help="filled GDSII")
    eco.add_argument(
        "wires",
        type=Path,
        help='JSON wire spec: {"<layer>": [[xl, yl, xh, yh], ...], ...}',
    )
    eco.add_argument("output", type=Path, help="patched GDSII path")
    eco.add_argument("--windows", type=int, default=8)
    _add_engine_args(eco)
    _add_stream_args(eco)
    _add_rules_args(eco)
    _add_obs_args(eco)
    _add_profile_args(eco)

    serve = sub.add_parser(
        "serve",
        help="run the persistent fill service (NDJSON over a local socket)",
    )
    from .service.cli import configure_parser as _configure_serve

    _configure_serve(serve)
    _add_obs_args(serve)

    trace = sub.add_parser(
        "trace",
        help="render or diff run records (see `repro trace --help`)",
        add_help=False,
    )
    trace.add_argument(
        "trace_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to `python -m repro.obs`",
    )

    bench = sub.add_parser(
        "bench",
        help="record/gate benchmark trajectories (see `repro bench --help`)",
        add_help=False,
    )
    bench.add_argument(
        "bench_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to `python -m repro.bench`",
    )

    return parser


# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    with _observed(args, label="repro generate"):
        spec = LayoutSpec(
            name=args.output.stem,
            die_size=args.die,
            num_layers=args.layers,
            seed=args.seed,
            num_cell_rects=args.wires,
            rules=_rules_from(args),
        )
        with obs.span("generate"):
            layout = generate_layout(spec)
        with obs.span("io.write"):
            args.output.write_bytes(gdsii_bytes(layout))
        print(
            f"wrote {args.output}: {layout.num_wires} wires on "
            f"{layout.num_layers} layers, {args.output.stat().st_size} bytes"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    layout = layout_from_gdsii(args.input.read_bytes(), _rules_from(args))
    grid = _grid_from(args, layout)
    print(f"{args.input}: die {layout.die}, {layout.num_layers} layers")
    for layer in layout.layers:
        wires = compute_metrics(wire_density_map(layer, grid))
        total = compute_metrics(metal_density_map(layer, grid))
        print(
            f"  layer {layer.number}: {layer.num_wires} wires, "
            f"{layer.num_fills} fills; wire density {wires.mean:.3f} "
            f"(sigma {wires.sigma:.4f}), total {total.mean:.3f} "
            f"(sigma {total.sigma:.4f})"
        )
    return 0


def _cmd_fill(args: argparse.Namespace) -> int:
    if args.stream:
        if args.report is not None:
            print("--report is not supported with --stream", file=sys.stderr)
            return 2
        with _observed(args, label="repro fill"):
            report = DummyFillEngine(_config_from(args)).run_streaming(
                str(args.input),
                str(args.output),
                _rules_from(args),
                cols=args.windows,
                rows=args.windows,
                memory_budget=args.memory_budget,
                bands=args.bands,
                output_format=args.format,
            )
            print(report.summary())
            print(
                f"wrote {args.output}: {report.num_fills} fills, "
                f"{args.output.stat().st_size} bytes, "
                f"{len(report.violations)} DRC violations"
            )
        return 0 if not report.violations else 2
    with _observed(args, label="repro fill"):
        with obs.span("io.read"):
            layout = layout_from_gdsii(args.input.read_bytes(), _rules_from(args))
        grid = _grid_from(args, layout)
        report = DummyFillEngine(_config_from(args)).run(layout, grid)
        with obs.span("drc"):
            violations = layout.check_drc()
        with obs.span("io.write"):
            args.output.write_bytes(_serialised(layout, args.format))
        print(report.summary())
        if args.report is not None:
            from .report import render_report

            args.report.write_text(render_report(layout, grid, report))
            print(f"wrote report {args.report}")
        print(
            f"wrote {args.output}: {layout.num_fills} fills, "
            f"{args.output.stat().st_size} bytes, {len(violations)} DRC violations"
        )
    return 0 if not violations else 2


def _serialised(layout: Layout, output_format: str) -> bytes:
    if output_format == "oasis":
        from .oasis import oasis_bytes

        return oasis_bytes(layout)
    return gdsii_bytes(layout)


def _cmd_score(args: argparse.Namespace) -> int:
    with _observed(args, label="repro score"):
        with obs.span("io.read"):
            layout = layout_from_gdsii(args.input.read_bytes(), _rules_from(args))
        grid = _grid_from(args, layout)
        if args.reference is not None:
            reference = layout_from_gdsii(
                args.reference.read_bytes(), _rules_from(args)
            )
        else:
            reference = layout.copy_without_fills()
        ref_grid = WindowGrid(reference.die, args.windows, args.windows)
        with obs.span("calibrate"):
            weights = calibrate_weights(reference, ref_grid, 60.0, 1024.0)
        size = file_size_mb(args.input.stat().st_size)
        with obs.span("score"):
            card = score_layout(layout, grid, weights, file_size=size)
        for name, value in card.as_row().items():
            print(f"  {name:<10} {value:.3f}")
    return 0


def _cmd_drc(args: argparse.Namespace) -> int:
    with _observed(args, label="repro drc"):
        with obs.span("io.read"):
            layout = layout_from_gdsii(args.input.read_bytes(), _rules_from(args))
        with obs.span("drc"):
            violations = layout.check_drc()
        for v in violations[:50]:
            print(f"  {v}")
        print(f"{len(violations)} violations")
    return 0 if not violations else 2


def _cmd_eco(args: argparse.Namespace) -> int:
    if args.stream:
        from .eco import wires_from_json

        new_wires = wires_from_json(json.loads(args.wires.read_text()))
        with _observed(args, label="repro eco"):
            report = DummyFillEngine(_config_from(args)).run_streaming(
                str(args.input),
                str(args.output),
                _rules_from(args),
                cols=args.windows,
                rows=args.windows,
                memory_budget=args.memory_budget,
                bands=args.bands,
                eco_wires=new_wires,
                output_format=args.format,
            )
            print(report.summary())
            print(
                f"wrote {args.output}: kept {report.kept_fills} + "
                f"{report.num_fills} new fills, "
                f"{args.output.stat().st_size} bytes, "
                f"{len(report.violations)} DRC violations"
            )
        return 0 if not report.violations else 2
    with _observed(args, label="repro eco"):
        from .eco import apply_eco, wires_from_json

        with obs.span("io.read"):
            layout = layout_from_gdsii(args.input.read_bytes(), _rules_from(args))
            new_wires = wires_from_json(json.loads(args.wires.read_text()))
        grid = _grid_from(args, layout)
        report = apply_eco(layout, grid, new_wires, _config_from(args))
        with obs.span("drc"):
            violations = layout.check_drc()
        with obs.span("io.write"):
            args.output.write_bytes(_serialised(layout, args.format))
        print(report.summary())
        print(
            f"wrote {args.output}: {layout.num_fills} fills, "
            f"{args.output.stat().st_size} bytes, {len(violations)} DRC violations"
        )
    return 0 if not violations else 2


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service.cli import run_serve

    with _observed(args, label="repro serve"):
        return run_serve(args)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.cli import main as obs_main

    return obs_main(args.trace_args)


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench.cli import main as bench_main

    return bench_main(args.bench_args)


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "fill": _cmd_fill,
    "score": _cmd_score,
    "drc": _cmd_drc,
    "eco": _cmd_eco,
    "serve": _cmd_serve,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
