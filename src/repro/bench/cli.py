"""Benchmark trajectory CLI: ``python -m repro.bench`` / ``repro bench``.

Subcommands:

* ``run --set NAME`` — execute a named benchmark set under full obs
  instrumentation, append one :class:`~repro.bench.tracker.BenchRecord`
  per benchmark to its ``BENCH_<name>.json`` trajectory file, and print
  a summary table.
* ``gate TRAJECTORY...`` — compare the newest record of each trajectory
  against a baseline record (``--baseline``) or the previous entry,
  with per-metric relative thresholds (``--threshold seconds=0.25``)
  and optional per-stage thresholds (``--threshold stage.sizing=0.40``);
  a runtime regression is attributed to the ``stage_seconds`` entries
  that grew.
* ``prune TRAJECTORY... --keep N`` — cap each trajectory at the newest
  N records per config hash (the per-configuration baselines survive).

Exit codes: ``0`` ok, ``1`` regression detected, ``2`` usage or
unreadable inputs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .tracker import (
    BENCH_SETS,
    BenchRecord,
    GateResult,
    TrajectoryError,
    append_record,
    format_gate,
    gate_records,
    load_trajectory,
    prune_trajectory,
    run_benchmark,
    trajectory_path,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Record and gate benchmark score/perf trajectories.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run a benchmark set and append trajectory records"
    )
    run.add_argument(
        "--set",
        dest="bench_set",
        choices=sorted(BENCH_SETS),
        default="smoke",
        help="named benchmark set to execute (default: smoke)",
    )
    run.add_argument(
        "--out",
        type=Path,
        default=Path("."),
        help="directory for BENCH_<name>.json trajectory files",
    )
    run.add_argument(
        "--worst-k",
        type=int,
        default=5,
        help="windows per attribution list (default: 5)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="parallel workers for the sharded engine stages "
        "(recorded in the config hash; default: 1)",
    )
    run.add_argument(
        "--parallel",
        choices=("process", "thread", "serial"),
        default="process",
        help="execution backend when --workers != 1 (default: process)",
    )
    run.add_argument(
        "--kernel",
        choices=("rect", "raster"),
        default="rect",
        help="geometry/density kernel for the engine hot paths "
        "(recorded in the config hash; default: rect)",
    )

    gate = sub.add_parser(
        "gate", help="fail when the newest record regressed past thresholds"
    )
    gate.add_argument(
        "trajectories",
        nargs="+",
        type=Path,
        metavar="TRAJECTORY",
        help="BENCH_<name>.json trajectory file(s)",
    )
    gate.add_argument(
        "--baseline",
        type=Path,
        help="trajectory whose newest record is the baseline "
        "(default: the previous entry of each trajectory)",
    )
    gate.add_argument(
        "--threshold",
        action="append",
        default=[],
        metavar="METRIC=PCT",
        help="override a relative threshold, e.g. seconds=0.25 "
        "(repeatable)",
    )
    gate.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )

    prune = sub.add_parser(
        "prune", help="cap trajectories at N records per config hash"
    )
    prune.add_argument(
        "trajectories",
        nargs="+",
        type=Path,
        metavar="TRAJECTORY",
        help="BENCH_<name>.json trajectory file(s) to prune in place",
    )
    prune.add_argument(
        "--keep",
        type=int,
        default=20,
        help="newest records to keep per config hash (default: 20)",
    )

    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    from ..core import FillConfig
    from .contest import CONTEST_ETA

    config = FillConfig(
        eta=CONTEST_ETA,
        workers=args.workers,
        parallel=args.parallel,
        kernel=args.kernel,
    )
    header = f"{'bench':<8}{'score':>8}{'quality':>9}{'seconds':>9}{'rss MB':>8}{'fills':>8}"
    print(header)
    print("-" * len(header))
    for name in BENCH_SETS[args.bench_set]:
        record = run_benchmark(name, config=config, worst_k=args.worst_k)
        path = trajectory_path(args.out, name)
        length = append_record(path, record)
        print(
            f"{name:<8}{record.scores['score']:>8.4f}"
            f"{record.scores['quality']:>9.4f}{record.seconds:>9.2f}"
            f"{record.peak_rss_mb:>8.1f}{record.num_fills:>8d}"
            f"   -> {path} (record {length})"
        )
    return 0


def _parse_thresholds(pairs: Sequence[str]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for pair in pairs:
        metric, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(
                f"repro.bench: bad --threshold {pair!r} (expected METRIC=PCT)"
            )
        try:
            out[metric] = float(value)
        except ValueError:
            raise SystemExit(
                f"repro.bench: bad --threshold value {value!r}"
            ) from None
    return out


def _newest(path: Path) -> BenchRecord:
    records = load_trajectory(path)
    if not records:
        raise TrajectoryError(f"{path}: trajectory has no records")
    return records[-1]


def _cmd_gate(args: argparse.Namespace) -> int:
    thresholds = _parse_thresholds(args.threshold)
    baseline_record: Optional[BenchRecord] = None
    if args.baseline is not None:
        baseline_record = _newest(args.baseline)
    results: List[GateResult] = []
    skipped: List[str] = []
    for path in args.trajectories:
        records = load_trajectory(path)
        if not records:
            raise TrajectoryError(f"{path}: trajectory has no records")
        current = records[-1]
        baseline = baseline_record
        if baseline is None:
            if len(records) < 2:
                skipped.append(
                    f"{path}: single record, nothing to gate against"
                )
                continue
            baseline = records[-2]
        results.append(gate_records(baseline, current, thresholds))
    regressed = any(r.regressed for r in results)
    if args.format == "json":
        print(
            json.dumps(
                {
                    "regressed": regressed,
                    "results": [r.to_dict() for r in results],
                    "skipped": skipped,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for note in skipped:
            print(note)
        for result in results:
            print(format_gate(result))
            print()
    return 1 if regressed else 0


def _cmd_prune(args: argparse.Namespace) -> int:
    for path in args.trajectories:
        kept, removed = prune_trajectory(path, args.keep)
        print(f"{path}: kept {kept} record(s), removed {removed}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "prune":
            return _cmd_prune(args)
        return _cmd_gate(args)
    except (OSError, TrajectoryError) as exc:
        print(f"repro.bench: {exc}", file=sys.stderr)
        return 2
    except SystemExit as exc:
        if exc.code and not isinstance(exc.code, int):
            print(exc.code, file=sys.stderr)
            return 2
        raise
