"""The scaled benchmark suite: ``s``, ``b``, ``m`` (Table 2 substitute).

The ICCAD 2014 benchmarks have 382K / 8.1M / 31.8M polygons; the scaled
suite keeps the three-point size progression, the 3-layer stack and the
structural features (buses, macros, gradients, hotspot stripes, cold
windows) at sizes a laptop-scale pure-Python run can sweep (see
DESIGN.md §3 for the substitution rationale).

β coefficients are *calibrated* per benchmark the way the contest
organisers did — against reference measurements — so every score lands
in a meaningful (0, 1) band:

* ``β_variation`` / ``β_line`` — the metrics of the **unfilled** layout
  (each score reads as the fraction of raw non-uniformity removed),
* ``β_outlier`` — a quarter of the unfilled σ (outlier mass at which
  the score reaches zero),
* ``β_overlay`` — the expected overlay of *random* fill placement at
  the Case I target density (overlay-aware placement scores by how far
  below random it lands),
* ``β_size`` — the bytes of a reference dense solution (input plus a
  maximal-cell packing of the free space),
* ``β_runtime`` / ``β_memory`` — generous per-size budgets for the
  pure-Python engine.

The α weights are the contest's (Table 2): 0.2/0.2/0.2/0.15/0.05 for
quality and 0.15/0.05 for runtime/memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..density.analysis import metal_density_map
from ..density.metrics import compute_metrics
from ..density.scoring import ScoreWeights
from ..gdsii import file_size_mb, measure_file_size, predict_fill_bytes
from ..layout import DrcRules, Layout, WindowGrid
from .generator import LayoutSpec, generate_layout

__all__ = [
    "Benchmark",
    "SUITE_SPECS",
    "load_benchmark",
    "benchmark_names",
    "calibrate_weights",
]

_RULES = DrcRules(
    min_spacing=10,
    min_width=10,
    min_area=400,
    max_fill_width=150,
    max_fill_height=150,
)

#: Scaled stand-ins for the contest `s` / `b` / `m` benchmarks.
SUITE_SPECS: Dict[str, Tuple[LayoutSpec, Tuple[int, int], float, float]] = {
    # name: (layout spec, (cols, rows) windows, runtime beta s, memory beta MB)
    "s": (
        LayoutSpec(
            name="s",
            die_size=4000,
            seed=20141,
            num_cell_rects=450,
            num_bus_bundles=3,
            num_macros=1,
            hotspot_columns=(0.25,),
            cold_windows=1,
            rules=_RULES,
        ),
        (8, 8),
        60.0,
        1024.0,
    ),
    "b": (
        LayoutSpec(
            name="b",
            die_size=8000,
            seed=20142,
            num_cell_rects=1800,
            num_bus_bundles=6,
            num_macros=3,
            hotspot_columns=(0.2, 0.6),
            cold_windows=2,
            rules=_RULES,
        ),
        (16, 16),
        600.0,
        2048.0,
    ),
    "m": (
        LayoutSpec(
            name="m",
            die_size=12000,
            seed=20143,
            num_cell_rects=4200,
            num_bus_bundles=9,
            num_macros=5,
            hotspot_columns=(0.15, 0.5, 0.8),
            cold_windows=3,
            rules=_RULES,
        ),
        (24, 24),
        1200.0,
        4096.0,
    ),
}

@dataclass
class Benchmark:
    """A loaded benchmark: layout, windows, calibrated score weights."""

    name: str
    layout: Layout
    grid: WindowGrid
    weights: ScoreWeights
    input_size_mb: float

    @property
    def num_wires(self) -> int:
        return self.layout.num_wires

    def fresh_layout(self) -> Layout:
        """An unfilled copy — each filler gets its own."""
        return self.layout.copy_without_fills()


def calibrate_weights(
    layout: Layout,
    grid: WindowGrid,
    runtime_beta: float,
    memory_beta: float,
) -> ScoreWeights:
    """Derive per-benchmark β coefficients from the unfilled layout.

    * density βs: the unfilled layout's own metrics, so every density
      score reads as "fraction of the raw non-uniformity removed";
    * overlay β: the expected overlay of *random* fill placement at
      the Case I target density — Σ over adjacent pairs of
      ``t_l · t_{l+1} · die_area`` with ``t_l = max wire density``;
      overlay-aware placement scores by how far below random it lands;
    * size β: the bytes of a reference dense solution (input plus two
      maximal fill cells per free-area quantum), so compact geometric
      solutions score high and tile-style fill floods score near zero.
    """
    sigma_sum = line_sum = 0.0
    targets = []
    means = []
    for layer in layout.layers:
        density = metal_density_map(layer, grid)
        m = compute_metrics(density)
        sigma_sum += m.sigma
        line_sum += m.line
        targets.append(float(density.max()))
        means.append(m.mean)
    die_area = layout.die.area
    overlay_beta = sum(
        targets[k] * targets[k + 1] * die_area for k in range(len(targets) - 1)
    )
    input_bytes = measure_file_size(layout)
    # Fill volume reference: the free space at mean density, packed with
    # maximal cells; the factor 3 covers sliver fills and window-edge
    # partial cells of realistic solutions.
    free_area = sum(max(0.0, 1.0 - mean) * die_area for mean in means)
    max_cell = layout.rules.max_fill_width * layout.rules.max_fill_height
    reference_fills = int(3 * free_area / max_cell)
    size_beta_mb = file_size_mb(
        input_bytes + predict_fill_bytes(reference_fills)
    )
    return ScoreWeights(
        beta_overlay=max(overlay_beta, 1.0),
        beta_variation=max(sigma_sum, 1e-9),
        beta_line=max(line_sum, 1e-9),
        # The filled layout's σ is small, so its 3σ band is tight and
        # unreachable windows surface as outliers; a quarter of the raw
        # σ is the outlier mass at which the score hits zero.
        beta_outlier=max(0.25 * sigma_sum, 1e-9),
        beta_size=max(size_beta_mb, 1e-6),
        beta_runtime=runtime_beta,
        beta_memory=memory_beta,
    )


def load_benchmark(name: str) -> Benchmark:
    """Generate a suite benchmark and calibrate its score weights."""
    try:
        spec, (cols, rows), runtime_beta, memory_beta = SUITE_SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from None
    layout = generate_layout(spec)
    grid = WindowGrid(layout.die, cols, rows)
    weights = calibrate_weights(layout, grid, runtime_beta, memory_beta)
    size_mb = file_size_mb(measure_file_size(layout))
    return Benchmark(
        name=name,
        layout=layout,
        grid=grid,
        weights=weights,
        input_size_mb=size_mb,
    )


def benchmark_names() -> Tuple[str, ...]:
    return tuple(SUITE_SPECS)
