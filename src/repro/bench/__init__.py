"""Benchmark generation, the scaled s/b/m suite, and the contest harness."""

from .contest import (
    TEAMS,
    ContestEntry,
    format_table,
    headline,
    run_contest,
    run_team,
)
from .generator import LayoutSpec, generate_layout
from .suite import (
    SUITE_SPECS,
    Benchmark,
    benchmark_names,
    calibrate_weights,
    load_benchmark,
)

__all__ = [
    "TEAMS",
    "ContestEntry",
    "format_table",
    "headline",
    "run_contest",
    "run_team",
    "LayoutSpec",
    "generate_layout",
    "SUITE_SPECS",
    "Benchmark",
    "benchmark_names",
    "calibrate_weights",
    "load_benchmark",
]
