"""Benchmark generation, the scaled s/b/m suite, contest harness, tracker."""

from .contest import (
    TEAMS,
    ContestEntry,
    format_table,
    headline,
    run_contest,
    run_team,
)
from .generator import LayoutSpec, generate_layout
from .suite import (
    SUITE_SPECS,
    Benchmark,
    benchmark_names,
    calibrate_weights,
    load_benchmark,
)
from .tracker import (
    BENCH_SETS,
    BenchRecord,
    Column,
    GateResult,
    MetricDelta,
    TableArtifact,
    TrajectoryError,
    append_record,
    bench_set_names,
    format_gate,
    gate_records,
    load_trajectory,
    run_benchmark,
    trajectory_path,
)

__all__ = [
    "TEAMS",
    "ContestEntry",
    "format_table",
    "headline",
    "run_contest",
    "run_team",
    "LayoutSpec",
    "generate_layout",
    "SUITE_SPECS",
    "Benchmark",
    "benchmark_names",
    "calibrate_weights",
    "load_benchmark",
    "BENCH_SETS",
    "BenchRecord",
    "Column",
    "GateResult",
    "MetricDelta",
    "TableArtifact",
    "TrajectoryError",
    "append_record",
    "bench_set_names",
    "format_gate",
    "gate_records",
    "load_trajectory",
    "run_benchmark",
    "trajectory_path",
]
