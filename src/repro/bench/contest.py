"""Contest harness: run fillers, score them, print Table 3.

For each benchmark and each "team" (our engine, the three contest-team
stand-ins, and the coupling-constrained prior art [11, 12]), the
harness:

1. takes a fresh unfilled copy of the benchmark layout,
2. runs the filler under a wall clock and a peak-memory tracer,
3. writes the solution GDSII (file I/O is part of the measured runtime,
   as in the contest — the paper notes 40% of total runtime on
   benchmark ``b`` is file I/O),
4. computes every Eqn. (3) component with the benchmark's calibrated
   α/β and assembles the Table 3 row (Overlay*, Variation*, Line*,
   Outlier*, Size*, Run-time*, Memory*, Testcase Quality, Testcase
   Score).

:func:`format_table` renders the same layout as the paper's Table 3;
:func:`headline` computes the paper's summary claim (quality / score
improvement of ours over the best baseline).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .. import obs
from ..baselines import greedy_fill, monte_carlo_fill, tile_lp_fill
from ..core import DummyFillEngine, FillConfig
from ..density.scoring import ScoreCard, score_layout
from ..gdsii import file_size_mb, write_gdsii
from ..layout import Layout, WindowGrid
from .suite import Benchmark

__all__ = [
    "ContestEntry",
    "TEAMS",
    "run_team",
    "run_contest",
    "format_table",
    "headline",
]


@dataclass
class ContestEntry:
    """One Table 3 row: a team's scored run on one benchmark."""

    benchmark: str
    team: str
    card: ScoreCard
    num_fills: int
    seconds: float
    memory_mb: float
    file_size_mb: float

    def row(self) -> Dict[str, float]:
        return self.card.as_row()


#: η used for contest runs.  The paper's η=1 equates one dbu² of overlay
#: with one dbu² of density gap under its own normalisation; under the
#: calibrated contest β of this suite, density is worth several times
#: more per unit area, so the engine runs with the contest-tuned value
#: (the A3 ablation benchmark sweeps this trade-off).
CONTEST_ETA = 0.2


def _run_ours(layout: Layout, grid: WindowGrid, benchmark: Benchmark) -> None:
    engine = DummyFillEngine(
        FillConfig(eta=CONTEST_ETA), weights=benchmark.weights
    )
    engine.run(layout, grid)


def _run_greedy(layout: Layout, grid: WindowGrid, benchmark: Benchmark) -> None:
    greedy_fill(layout, grid)


def _run_tile_lp(layout: Layout, grid: WindowGrid, benchmark: Benchmark) -> None:
    tile_lp_fill(layout, grid, r=4)


def _run_monte_carlo(layout: Layout, grid: WindowGrid, benchmark: Benchmark) -> None:
    monte_carlo_fill(layout, grid)


def _run_coupling_lp(layout: Layout, grid: WindowGrid, benchmark: Benchmark) -> None:
    from ..baselines import coupling_lp_fill

    coupling_lp_fill(layout, grid)


#: Registered teams: our engine, the three contest-team stand-ins (see
#: DESIGN.md §3 for which team each baseline models), plus the
#: coupling-constrained prior art of refs. [11, 12] as extra context.
TEAMS: Dict[str, Callable[[Layout, WindowGrid, Benchmark], None]] = {
    "greedy(T1)": _run_greedy,
    "tile-lp(T2)": _run_tile_lp,
    "mc(T3)": _run_monte_carlo,
    "cpl[11]": _run_coupling_lp,
    "ours": _run_ours,
}


def run_team(
    benchmark: Benchmark,
    team: str,
    *,
    trace_memory: bool = True,
    precise_memory: bool = False,
) -> ContestEntry:
    """Run one team on one benchmark and score the result.

    Timing and peak-memory measurement delegate to
    :func:`repro.obs.measure`: ``trace_memory`` samples peak RSS on a
    background thread (cheap, default); ``precise_memory`` switches to
    tracemalloc's exact Python-heap peak (~6x slower — do not combine
    with runtime comparisons).
    """
    filler = TEAMS[team]
    layout = benchmark.fresh_layout()
    with obs.measure(
        sample_rss=trace_memory, precise_memory=precise_memory
    ) as measured, obs.span(f"contest.{team}", benchmark=benchmark.name):
        filler(layout, benchmark.grid, benchmark)
        # Solution file I/O is part of the measured runtime.
        buf = io.BytesIO()
        size_bytes = write_gdsii(layout, buf)
    seconds = measured.seconds
    memory_mb = measured.peak_rss_mb
    size_mb = file_size_mb(size_bytes)
    card = score_layout(
        layout,
        benchmark.grid,
        benchmark.weights,
        file_size=size_mb,
        runtime=seconds,
        memory=memory_mb,
    )
    return ContestEntry(
        benchmark=benchmark.name,
        team=team,
        card=card,
        num_fills=layout.num_fills,
        seconds=seconds,
        memory_mb=memory_mb,
        file_size_mb=size_mb,
    )


def run_contest(
    benchmark: Benchmark,
    teams: Optional[Sequence[str]] = None,
    *,
    trace_memory: bool = True,
) -> Dict[str, ContestEntry]:
    """Run all (or selected) teams on one benchmark."""
    names = list(teams) if teams is not None else list(TEAMS)
    return {
        name: run_team(benchmark, name, trace_memory=trace_memory)
        for name in names
    }


_COLUMNS = (
    "overlay",
    "variation",
    "line",
    "outlier",
    "size",
    "runtime",
    "memory",
    "quality",
    "score",
)


def format_table(results: Mapping[str, Mapping[str, ContestEntry]]) -> str:
    """Render contest results in the layout of the paper's Table 3."""
    header = (
        f"{'Design':<8}{'Team':<12}"
        + "".join(f"{c.capitalize() + '*':>11}" for c in _COLUMNS[:7])
        + f"{'Quality':>11}{'Score':>11}{'#Fills':>9}"
    )
    lines = [header, "-" * len(header)]
    for bench_name, teams in results.items():
        for team, entry in teams.items():
            row = entry.row()
            cells = "".join(f"{row[c]:>11.3f}" for c in _COLUMNS)
            lines.append(
                f"{bench_name:<8}{team:<12}{cells}{entry.num_fills:>9}"
            )
        lines.append("-" * len(header))
    return "\n".join(lines)


def headline(
    results: Mapping[str, Mapping[str, ContestEntry]],
    ours: str = "ours",
) -> Tuple[float, float]:
    """The paper's summary claim, measured on these results.

    Returns ``(quality_gain, score_gain)``: the average relative margin
    of our quality / overall score over the best baseline per
    benchmark.  The paper reports 13% and 10%.
    """
    quality_gains: List[float] = []
    score_gains: List[float] = []
    for teams in results.values():
        our = teams[ours]
        others = [e for name, e in teams.items() if name != ours]
        if not others:
            continue
        best_quality = max(e.card.quality for e in others)
        best_score = max(e.card.total for e in others)
        if best_quality > 0:
            quality_gains.append(our.card.quality / best_quality - 1.0)
        if best_score > 0:
            score_gains.append(our.card.total / best_score - 1.0)
    avg = lambda xs: sum(xs) / len(xs) if xs else 0.0
    return avg(quality_gains), avg(score_gains)
