"""Synthetic ICCAD-2014-style benchmark generator.

The contest benchmarks (industrial layouts of 0.4M–32M polygons) are
not redistributable, so this module synthesises layouts with the same
*structure* at laptop scale (DESIGN.md §3):

* horizontal/vertical **bus bundles** — the long parallel wires whose
  coupling the overlay score protects,
* **macro blocks** — large blockages that cap the density upper bound
  of their windows (forcing the planner's Case II),
* **standard-cell clutter** — small scattered rectangles,
* a lateral **density gradient** plus deliberately dense **stripe
  columns** (line-hotspot generators) and near-empty **cold windows**
  (outlier generators).

Everything is driven by a seeded RNG: the same spec always produces
byte-identical layouts, which the benchmark suite relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..geometry import Rect
from ..layout import DrcRules, Layout

__all__ = ["LayoutSpec", "generate_layout"]


@dataclass(frozen=True)
class LayoutSpec:
    """Parameters of one synthetic benchmark layout."""

    name: str
    die_size: int  # square die edge in dbu
    num_layers: int = 3
    seed: int = 2014
    # wire population per layer
    num_cell_rects: int = 600
    num_bus_bundles: int = 4
    bus_wires_per_bundle: int = 8
    num_macros: int = 2
    # structure controls
    density_gradient: float = 0.5  # 0 = uniform, 1 = strong left-dense
    hotspot_columns: Tuple[float, ...] = (0.25,)  # die-relative x of dense stripes
    cold_windows: int = 1  # near-empty regions per layer
    rules: DrcRules = field(default_factory=DrcRules)

    def __post_init__(self) -> None:
        if self.die_size <= 0:
            raise ValueError("die_size must be positive")
        if not (0.0 <= self.density_gradient <= 1.0):
            raise ValueError("density_gradient must lie in [0, 1]")


def _add_cell_clutter(
    layout: Layout, spec: LayoutSpec, rng: random.Random, layer_number: int
) -> None:
    """Scattered standard-cell-like rectangles with a lateral gradient."""
    die = layout.die
    layer = layout.layer(layer_number)
    horizontal = layer_number % 2 == 1  # preferred routing direction
    for _ in range(spec.num_cell_rects):
        # Rejection-sample x for the density gradient (denser on the left).
        for _ in range(4):
            x = rng.randrange(die.xl, die.xh)
            keep_prob = 1.0 - spec.density_gradient * (x - die.xl) / die.width
            if rng.random() <= keep_prob:
                break
        y = rng.randrange(die.yl, die.yh)
        if horizontal:
            w = rng.randrange(60, 400)
            h = rng.randrange(16, 60)
        else:
            w = rng.randrange(16, 60)
            h = rng.randrange(60, 400)
        rect = Rect(x, y, min(die.xh, x + w), min(die.yh, y + h))
        if not rect.is_degenerate:
            layer.add_wire(rect)


def _add_bus_bundles(
    layout: Layout, spec: LayoutSpec, rng: random.Random, layer_number: int
) -> None:
    """Bundles of long parallel wires (the coupling-critical pattern)."""
    die = layout.die
    layer = layout.layer(layer_number)
    horizontal = layer_number % 2 == 1
    pitch = 3 * spec.rules.min_width
    width = 2 * spec.rules.min_width
    for _ in range(spec.num_bus_bundles):
        span_lo = die.xl + rng.randrange(0, die.width // 4)
        span_hi = die.xh - rng.randrange(0, die.width // 4)
        base = rng.randrange(die.yl, die.yh - spec.bus_wires_per_bundle * pitch)
        for k in range(spec.bus_wires_per_bundle):
            offset = base + k * pitch
            if horizontal:
                rect = Rect(span_lo, offset, span_hi, offset + width)
            else:
                rect = Rect(offset, span_lo, offset + width, span_hi)
            clipped = rect.intersection(die)
            if clipped is not None and not clipped.is_degenerate:
                layer.add_wire(clipped)


def _add_macros(
    layout: Layout, spec: LayoutSpec, rng: random.Random, layer_number: int
) -> None:
    """Hatched macro blocks that constrain window upper bounds.

    Real macros are not solid metal on routing layers; they present as
    dense stripe patterns (power straps, internal routing) at roughly
    half density.  A solid block would drive the window's wire density
    toward 1.0 and, through the planner's Case I target (max l(k,n)),
    force the whole die to that density — unrepresentative of the
    contest layouts.
    """
    die = layout.die
    layer = layout.layer(layer_number)
    for _ in range(spec.num_macros):
        w = rng.randrange(die.width // 10, die.width // 5)
        h = rng.randrange(die.height // 10, die.height // 5)
        x = rng.randrange(die.xl, die.xh - w)
        y = rng.randrange(die.yl, die.yh - h)
        stripe = max(2 * spec.rules.min_width, h // 16)
        yy = y
        while yy + stripe <= y + h:
            layer.add_wire(Rect(x, yy, x + w, yy + stripe))
            yy += 2 * stripe


def _add_hotspot_stripes(
    layout: Layout, spec: LayoutSpec, rng: random.Random, layer_number: int
) -> None:
    """Dense vertical stripes: column-density gradients = line hotspots."""
    die = layout.die
    layer = layout.layer(layer_number)
    stripe_w = die.width // 40
    for rel_x in spec.hotspot_columns:
        x0 = die.xl + int(rel_x * die.width)
        n = 20
        for _ in range(n):
            y = rng.randrange(die.yl, die.yh - 100)
            layer.add_wire(
                Rect(x0, y, min(die.xh, x0 + stripe_w), min(die.yh, y + 100))
            )


def _cold_window_keepouts(
    spec: LayoutSpec, rng: random.Random
) -> List[Rect]:
    """Regions kept (almost) empty of wires: density outliers."""
    out = []
    size = spec.die_size // 8
    for _ in range(spec.cold_windows):
        x = rng.randrange(0, spec.die_size - size)
        y = rng.randrange(0, spec.die_size - size)
        out.append(Rect(x, y, x + size, y + size))
    return out


def generate_layout(spec: LayoutSpec) -> Layout:
    """Generate the deterministic synthetic layout for ``spec``."""
    die = Rect(0, 0, spec.die_size, spec.die_size)
    layout = Layout(die, spec.num_layers, spec.rules, name=spec.name)
    rng = random.Random(spec.seed)
    keepouts = _cold_window_keepouts(spec, rng)
    for layer_number in layout.layer_numbers:
        layer_rng = random.Random(spec.seed * 1000003 + layer_number)
        _add_cell_clutter(layout, spec, layer_rng, layer_number)
        _add_bus_bundles(layout, spec, layer_rng, layer_number)
        _add_macros(layout, spec, layer_rng, layer_number)
        _add_hotspot_stripes(layout, spec, layer_rng, layer_number)
        # Apply cold-window keepouts: delete wires mostly inside them.
        layout.layer(layer_number).filter_wires(
            lambda w: not any(
                k.intersection_area(w) > w.area // 2 for k in keepouts
            )
        )
    return layout
