"""Benchmark trajectory records and the perf/quality regression gate.

The paper's headline claims are quantitative — Table 3 quality/score,
the Fig. 4-6 runtime and memory curves — so the repo needs more than a
text table per run: it needs a machine-readable *trajectory* of those
numbers over time, and a gate that fails a PR when one of them slides.
This module turns the :mod:`repro.obs` primitives (spans, metrics, run
records, the RSS sampler) into exactly that:

* :func:`run_benchmark` executes one named benchmark under a full
  :func:`repro.obs.record_run` and distils the result into a
  schema-versioned :class:`BenchRecord`: git sha, config hash, every
  Eqn. (3) :class:`~repro.density.scoring.ScoreCard` component,
  per-stage wall-clock read off the ``engine.run`` span tree, peak RSS
  from the sampler thread, fill count, GDSII bytes — plus the K worst
  windows by density deviation and by overlay contribution
  (:func:`repro.density.scoring.worst_windows`), so a regression points
  at a window and a stage, not just a number.
* :func:`append_record` / :func:`load_trajectory` maintain one
  ``BENCH_<name>.json`` trajectory file per benchmark (newest record
  last).
* :func:`gate_records` compares two records metric by metric with
  per-metric relative thresholds (:data:`GATE_METRICS`) and reports
  which ones regressed; ``repro bench gate`` turns that into an exit
  code for CI.
* :class:`TableArtifact` is the structured form of every
  ``benchmarks/bench_*.py`` reproduction table: the ``results/*.txt``
  files are its :meth:`~TableArtifact.render` output and the
  ``results/BENCH_*.json`` files its :meth:`~TableArtifact.to_dict`
  output — one record, two renderings.

See ``docs/OBSERVABILITY.md`` ("Benchmark trajectory") for the record
schema and the CI workflow.
"""

from __future__ import annotations

import hashlib
import io
import json
import re
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .. import obs
from ..core import DummyFillEngine, FillConfig, stream_fill
from ..density.scoring import score_layout, worst_windows
from ..gdsii import file_size_mb, gdsii_bytes, layout_from_gdsii
from ..layout import Layout, WindowGrid
from ..obs.record import _git_sha
from .generator import LayoutSpec, generate_layout
from .suite import SUITE_SPECS, calibrate_weights, load_benchmark

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "TrajectoryError",
    "BenchRecord",
    "BENCH_SETS",
    "bench_set_names",
    "run_benchmark",
    "trajectory_path",
    "load_trajectory",
    "append_record",
    "prune_records",
    "prune_trajectory",
    "GATE_METRICS",
    "MetricDelta",
    "StageDelta",
    "GateResult",
    "gate_records",
    "format_gate",
    "Column",
    "TableArtifact",
]

#: version of the BENCH_*.json record layout; bump on breaking change
BENCH_SCHEMA_VERSION = 1


class TrajectoryError(ValueError):
    """A trajectory file is malformed, or two records are incomparable."""


# ----------------------------------------------------------------------
# the record
# ----------------------------------------------------------------------
@dataclass
class BenchRecord:
    """One benchmark run, distilled to its trajectory-worthy numbers."""

    bench: str
    git_sha: Optional[str]
    created_at: str
    config: Dict[str, Any]
    config_hash: str
    #: every ScoreCard component plus quality/score (Table 3 row)
    scores: Dict[str, float]
    #: raw (unnormalised) Eqn. (4) inputs
    raw: Dict[str, float]
    #: seconds of each engine stage, read off the engine.run span tree
    stage_seconds: Dict[str, float]
    seconds: float
    peak_rss_mb: float
    num_fills: int
    gds_bytes: int
    #: K worst windows by density deviation / overlay contribution
    worst_windows: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    label: str = ""

    def to_dict(self) -> Dict[str, Any]:
        out = asdict(self)
        out["schema"] = BENCH_SCHEMA_VERSION
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRecord":
        payload = dict(data)
        schema = payload.pop("schema", None)
        if schema != BENCH_SCHEMA_VERSION:
            raise TrajectoryError(
                f"unsupported BENCH record schema {schema!r} "
                f"(expected {BENCH_SCHEMA_VERSION})"
            )
        try:
            return cls(**payload)
        except TypeError as exc:
            raise TrajectoryError(f"malformed BENCH record: {exc}") from exc

    def metric(self, name: str) -> float:
        """A gateable metric by name (score component or run stat)."""
        if name in self.scores:
            return float(self.scores[name])
        if name in ("seconds", "peak_rss_mb", "num_fills", "gds_bytes"):
            return float(getattr(self, name))
        raise KeyError(f"unknown benchmark metric {name!r}")


def _config_digest(config: Mapping[str, Any]) -> str:
    """Stable short hash of a benchmark configuration dict."""
    blob = json.dumps(config, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def _utc_now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


# ----------------------------------------------------------------------
# named benchmarks and sets
# ----------------------------------------------------------------------
#: tiny generated layout for CI: seconds, not minutes (mirrors the
#: trace-smoke job's `repro generate demo.gds --die 1600 --wires 120`)
_SMOKE_SPEC = LayoutSpec(
    name="smoke",
    die_size=1600,
    seed=7,
    num_cell_rects=120,
    num_bus_bundles=1,
    num_macros=1,
    rules=SUITE_SPECS["s"][0].rules,
)
_SMOKE_WINDOWS = (4, 4)
_SMOKE_BETAS = (60.0, 1024.0)
#: bands for the streaming smoke case — >1 so the spill path is exercised
_STREAM_SMOKE_BANDS = 2

#: named benchmark sets `repro bench run --set <name>` executes
BENCH_SETS: Dict[str, Tuple[str, ...]] = {
    "smoke": ("smoke", "stream-smoke"),
    "s": ("s",),
    "suite": ("s", "b"),
    "full": ("s", "b", "m"),
}


def bench_set_names() -> Tuple[str, ...]:
    return tuple(BENCH_SETS)


def _load_case(name: str) -> Tuple[Layout, WindowGrid, Any]:
    """A fresh unfilled layout, its grid and calibrated weights."""
    if name == "smoke":
        layout = generate_layout(_SMOKE_SPEC)
        grid = WindowGrid(layout.die, *_SMOKE_WINDOWS)
        weights = calibrate_weights(layout, grid, *_SMOKE_BETAS)
        return layout, grid, weights
    bench = load_benchmark(name)
    return bench.fresh_layout(), bench.grid, bench.weights


def run_benchmark(
    name: str,
    *,
    config: Optional[FillConfig] = None,
    worst_k: int = 5,
) -> BenchRecord:
    """Run one named benchmark under full obs instrumentation.

    The engine runs inside :func:`repro.obs.record_run` (fresh tracer
    and metrics registry, RSS sampler thread), solution GDSII
    serialization included in the measured time as in the contest; the
    resulting :class:`BenchRecord` carries the Eqn. (3) score card
    computed with the run's own wall clock and peak RSS.
    """
    from .contest import CONTEST_ETA

    if config is None:
        config = FillConfig(eta=CONTEST_ETA)
    if name == "stream-smoke":
        return _run_stream_benchmark(config=config, worst_k=worst_k)
    layout, grid, weights = _load_case(name)
    with obs.record_run(label=f"bench {name}") as recorder:
        DummyFillEngine(config, weights=weights).run(layout, grid)
        with obs.span("io.write"):
            gds = gdsii_bytes(layout)
    record = recorder.record
    assert record is not None
    seconds = float(record.summary["seconds"])
    peak = record.summary.get("peak_rss_mb")
    peak_mb = float(peak) if peak is not None else 0.0
    card = score_layout(
        layout,
        grid,
        weights,
        file_size=file_size_mb(len(gds)),
        runtime=seconds,
        memory=peak_mb,
    )
    config_dict: Dict[str, Any] = {
        **asdict(config),
        "windows": [grid.cols, grid.rows],
        "bench": name,
    }
    return BenchRecord(
        bench=name,
        git_sha=record.meta.get("git_sha"),
        created_at=_utc_now(),
        config=config_dict,
        config_hash=_config_digest(config_dict),
        scores=card.as_row(),
        raw=asdict(card.raw),
        stage_seconds=record.stage_seconds("engine.run"),
        seconds=seconds,
        peak_rss_mb=peak_mb,
        num_fills=layout.num_fills,
        gds_bytes=len(gds),
        worst_windows=worst_windows(layout, grid, k=worst_k),
        label=record.label,
    )


def _run_stream_benchmark(
    *, config: FillConfig, worst_k: int
) -> BenchRecord:
    """The ``stream-smoke`` case: the smoke layout through the
    out-of-core :func:`repro.core.stream_fill` path.

    Same geometry, grid and calibrated weights as ``smoke``, but the
    unfilled layout is serialised to GDSII first and filled via the
    banded streaming pipeline (bands > 1 so the spill path is
    exercised), so the trajectory gates the streamed stage clocks and
    peak RSS alongside the in-memory ones.  Scores are computed on the
    re-parsed streamed output — byte-identical to the in-memory result
    by construction, so quality metrics must match ``smoke`` exactly.
    """
    layout, grid, weights = _load_case("smoke")
    raw = gdsii_bytes(layout)
    rules = _SMOKE_SPEC.rules
    with obs.record_run(label="bench stream-smoke") as recorder:
        out = io.BytesIO()
        stream_fill(
            raw,
            out,
            rules,
            cols=grid.cols,
            rows=grid.rows,
            config=config,
            weights=weights,
            bands=_STREAM_SMOKE_BANDS,
        )
    gds = out.getvalue()
    record = recorder.record
    assert record is not None
    seconds = float(record.summary["seconds"])
    peak = record.summary.get("peak_rss_mb")
    peak_mb = float(peak) if peak is not None else 0.0
    filled = layout_from_gdsii(gds, rules)
    card = score_layout(
        filled,
        grid,
        weights,
        file_size=file_size_mb(len(gds)),
        runtime=seconds,
        memory=peak_mb,
    )
    config_dict: Dict[str, Any] = {
        **asdict(config),
        "windows": [grid.cols, grid.rows],
        "bands": _STREAM_SMOKE_BANDS,
        "bench": "stream-smoke",
    }
    return BenchRecord(
        bench="stream-smoke",
        git_sha=record.meta.get("git_sha"),
        created_at=_utc_now(),
        config=config_dict,
        config_hash=_config_digest(config_dict),
        scores=card.as_row(),
        raw=asdict(card.raw),
        stage_seconds=record.stage_seconds("stream.run"),
        seconds=seconds,
        peak_rss_mb=peak_mb,
        num_fills=filled.num_fills,
        gds_bytes=len(gds),
        worst_windows=worst_windows(filled, grid, k=worst_k),
        label=record.label,
    )


# ----------------------------------------------------------------------
# trajectory files
# ----------------------------------------------------------------------
def trajectory_path(out_dir: Union[str, Path], name: str) -> Path:
    return Path(out_dir) / f"BENCH_{name}.json"


def load_trajectory(path: Union[str, Path]) -> List[BenchRecord]:
    """All records of one trajectory file, oldest first."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TrajectoryError(f"{path}: not JSON: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != "trajectory":
        raise TrajectoryError(f"{path}: not a benchmark trajectory file")
    if data.get("schema") != BENCH_SCHEMA_VERSION:
        raise TrajectoryError(
            f"{path}: unsupported trajectory schema {data.get('schema')!r}"
        )
    records = data.get("records")
    if not isinstance(records, list):
        raise TrajectoryError(f"{path}: missing records list")
    return [BenchRecord.from_dict(r) for r in records]


def _write_trajectory(
    path: Path, bench: str, records: Sequence[BenchRecord]
) -> None:
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": "trajectory",
        "bench": bench,
        "records": [r.to_dict() for r in records],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def append_record(path: Union[str, Path], record: BenchRecord) -> int:
    """Append ``record`` to the trajectory at ``path``; returns its length."""
    path = Path(path)
    records = load_trajectory(path) if path.exists() else []
    records.append(record)
    _write_trajectory(path, record.bench, records)
    return len(records)


def prune_records(
    records: Sequence[BenchRecord], keep: int
) -> List[BenchRecord]:
    """Keep only the newest ``keep`` records *per config hash*.

    Trajectories grow one record per CI run; pruning caps their size
    without losing the per-configuration baselines the gate compares
    against — the newest record of every configuration ever measured
    survives, so ``repro bench gate --baseline`` keeps working after a
    config change.  Relative record order is preserved.
    """
    if keep < 1:
        raise TrajectoryError(f"--keep must be at least 1, got {keep}")
    seen: Dict[str, int] = {}
    keep_flags = [False] * len(records)
    for idx in range(len(records) - 1, -1, -1):
        digest = records[idx].config_hash
        if seen.get(digest, 0) < keep:
            seen[digest] = seen.get(digest, 0) + 1
            keep_flags[idx] = True
    return [r for r, kept in zip(records, keep_flags) if kept]


def prune_trajectory(path: Union[str, Path], keep: int) -> Tuple[int, int]:
    """Prune the trajectory file in place; returns ``(kept, removed)``."""
    path = Path(path)
    records = load_trajectory(path)
    pruned = prune_records(records, keep)
    removed = len(records) - len(pruned)
    if removed:
        bench = pruned[-1].bench if pruned else records[-1].bench
        _write_trajectory(path, bench, pruned)
    return len(pruned), removed


# ----------------------------------------------------------------------
# the gate
# ----------------------------------------------------------------------
#: gated metrics: name -> (direction, default relative threshold).
#: ``higher`` metrics regress when they *drop* by more than the
#: threshold, ``lower`` metrics when they *grow*.  Wall clock and RSS
#: get generous thresholds — CI machines are noisy; the quality scores
#: are deterministic and gated tightly.
GATE_METRICS: Dict[str, Tuple[str, float]] = {
    "score": ("higher", 0.02),
    "quality": ("higher", 0.02),
    "overlay": ("higher", 0.05),
    "variation": ("higher", 0.05),
    "line": ("higher", 0.05),
    "outlier": ("higher", 0.05),
    "size": ("higher", 0.05),
    "seconds": ("lower", 0.50),
    "peak_rss_mb": ("lower", 0.50),
    "gds_bytes": ("lower", 0.10),
}

#: relative-change denominators are floored so near-zero baselines
#: (a 0.02 s smoke run, an RSS sample that caught nothing) do not
#: manufacture infinite regressions
_DENOM_FLOORS: Dict[str, float] = {
    "seconds": 0.5,
    "peak_rss_mb": 16.0,
    "gds_bytes": 4096.0,
}


#: floor for a stage's relative-change denominator: sub-10ms stages on
#: a smoke run would otherwise read as huge regressions from noise
_STAGE_DENOM_FLOOR = 0.05

#: prefix for per-stage threshold overrides (``--threshold stage.sizing=0.4``)
_STAGE_PREFIX = "stage."


@dataclass(frozen=True)
class StageDelta:
    """One ``stage_seconds`` entry compared across two records.

    This is the *attribution* half of the runtime gate: when the
    ``seconds`` metric regresses, the stage deltas say which engine
    stage (analysis, candidates, sizing, ...) the extra wall clock
    landed in.  A stage only *gates* (sets ``regressed``) when an
    explicit ``stage.<name>`` threshold was supplied.
    """

    stage: str
    baseline: float
    current: float
    #: absolute seconds added by this stage (positive = slower)
    delta: float
    #: relative change against the floored baseline
    change: float
    threshold: Optional[float]
    regressed: bool

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _stage_deltas(
    baseline: BenchRecord,
    current: BenchRecord,
    thresholds: Mapping[str, float],
) -> List[StageDelta]:
    names = sorted(set(baseline.stage_seconds) | set(current.stage_seconds))
    deltas: List[StageDelta] = []
    for name in names:
        base = float(baseline.stage_seconds.get(name, 0.0))
        cur = float(current.stage_seconds.get(name, 0.0))
        delta = cur - base
        change = delta / max(base, _STAGE_DENOM_FLOOR)
        threshold = thresholds.get(_STAGE_PREFIX + name)
        deltas.append(
            StageDelta(
                stage=name,
                baseline=base,
                current=cur,
                delta=delta,
                change=change,
                threshold=threshold,
                regressed=threshold is not None and change > threshold,
            )
        )
    deltas.sort(key=lambda d: d.delta, reverse=True)
    return deltas


@dataclass(frozen=True)
class MetricDelta:
    """One gated metric compared across two records."""

    metric: str
    direction: str
    baseline: float
    current: float
    #: relative change, signed so that positive means *degraded*
    change: float
    threshold: float
    regressed: bool

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class GateResult:
    """Outcome of gating one record against a baseline."""

    bench: str
    baseline_sha: Optional[str]
    current_sha: Optional[str]
    config_changed: bool
    deltas: List[MetricDelta]
    #: runtime attribution: stage_seconds compared entry by entry,
    #: largest absolute slowdown first
    stage_deltas: List[StageDelta] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(d.regressed for d in self.deltas) or any(
            d.regressed for d in self.stage_deltas
        )

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def stage_regressions(self) -> List[StageDelta]:
        return [d for d in self.stage_deltas if d.regressed]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "kind": "gate",
            "bench": self.bench,
            "baseline_sha": self.baseline_sha,
            "current_sha": self.current_sha,
            "config_changed": self.config_changed,
            "regressed": self.regressed,
            "deltas": [d.to_dict() for d in self.deltas],
            "stage_deltas": [d.to_dict() for d in self.stage_deltas],
        }


def gate_records(
    baseline: BenchRecord,
    current: BenchRecord,
    thresholds: Optional[Mapping[str, float]] = None,
) -> GateResult:
    """Compare ``current`` against ``baseline`` metric by metric.

    ``thresholds`` overrides the default relative threshold of listed
    metrics (fractions: ``{"seconds": 0.25}`` allows +25%).  Keys of
    the form ``stage.<name>`` gate an individual ``stage_seconds``
    entry instead (``{"stage.sizing": 0.40}`` fails the gate when the
    sizing stage alone slows by more than 40%); without such a key the
    stage deltas are attribution only.  Records of different
    benchmarks are incomparable and raise :class:`TrajectoryError`;
    differing config hashes are allowed but flagged on the result.
    """
    if baseline.bench != current.bench:
        raise TrajectoryError(
            f"cannot gate benchmark {current.bench!r} against "
            f"baseline {baseline.bench!r}"
        )
    overrides = dict(thresholds or {})
    stage_names = set(baseline.stage_seconds) | set(current.stage_seconds)
    known_stage_keys = {_STAGE_PREFIX + name for name in stage_names}
    unknown = set(overrides) - set(GATE_METRICS) - known_stage_keys
    if unknown:
        raise TrajectoryError(
            f"unknown gate metric(s): {', '.join(sorted(unknown))}"
        )
    deltas: List[MetricDelta] = []
    for metric, (direction, default_threshold) in GATE_METRICS.items():
        threshold = float(overrides.get(metric, default_threshold))
        base = baseline.metric(metric)
        cur = current.metric(metric)
        denom = max(abs(base), _DENOM_FLOORS.get(metric, 1e-12))
        degraded = (base - cur) if direction == "higher" else (cur - base)
        change = degraded / denom
        deltas.append(
            MetricDelta(
                metric=metric,
                direction=direction,
                baseline=base,
                current=cur,
                change=change,
                threshold=threshold,
                regressed=change > threshold,
            )
        )
    return GateResult(
        bench=current.bench,
        baseline_sha=baseline.git_sha,
        current_sha=current.git_sha,
        config_changed=baseline.config_hash != current.config_hash,
        deltas=deltas,
        stage_deltas=_stage_deltas(baseline, current, overrides),
    )


def format_gate(result: GateResult) -> str:
    """Human-readable gate report (the text twin of ``to_dict``)."""
    lines = [
        f"bench gate: {result.bench}  "
        f"(baseline git {str(result.baseline_sha or '?')[:10]} -> "
        f"current git {str(result.current_sha or '?')[:10]})"
    ]
    if result.config_changed:
        lines.append(
            "warning: config hash changed between records — "
            "deltas compare different configurations"
        )
    header = (
        f"{'metric':<12}{'baseline':>12}{'current':>12}"
        f"{'change':>9}{'allowed':>9}  status"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for d in result.deltas:
        worse = "-" if d.direction == "higher" else "+"
        lines.append(
            f"{d.metric:<12}{d.baseline:>12.4f}{d.current:>12.4f}"
            f"{d.change:>8.1%}{worse}{d.threshold:>8.0%}{worse}  "
            f"{'REGRESSED' if d.regressed else 'ok'}"
        )
    seconds_regressed = any(
        d.metric == "seconds" and d.regressed for d in result.deltas
    )
    gated_stages = [d for d in result.stage_deltas if d.threshold is not None]
    if result.stage_deltas and (
        seconds_regressed or gated_stages or result.stage_regressions
    ):
        lines.append("runtime attribution (stage_seconds, slowest-growing first):")
        for d in result.stage_deltas:
            allowed = f"{d.threshold:>7.0%}+" if d.threshold is not None else "       -"
            status = "REGRESSED" if d.regressed else "ok"
            lines.append(
                f"  {d.stage:<12}{d.baseline:>10.4f}{d.current:>10.4f}"
                f"{d.delta:>+9.4f}s{d.change:>8.1%}{allowed}  {status}"
            )
    regressed_names = [d.metric for d in result.regressions] + [
        _STAGE_PREFIX + d.stage for d in result.stage_regressions
    ]
    verdict = (
        f"REGRESSION: {', '.join(regressed_names)}"
        if result.regressed
        else "ok: no metric degraded past its threshold"
    )
    lines.append(verdict)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# table artifacts (the bench_*.py reproduction tables)
# ----------------------------------------------------------------------
_WIDTH_RE = re.compile(r"[<>^=]?(\d+)")


@dataclass(frozen=True)
class Column:
    """One column of a :class:`TableArtifact`: key, format, header."""

    key: str
    fmt: str = ">12"
    header: Optional[str] = None

    @property
    def title(self) -> str:
        return self.header if self.header is not None else self.key

    @property
    def align(self) -> str:
        return self.fmt[0] if self.fmt[:1] in ("<", ">", "^") else ">"

    @property
    def width(self) -> int:
        match = _WIDTH_RE.match(self.fmt)
        width = int(match.group(1)) if match and match.group(1) else 0
        return max(width, len(self.title) + 1)


@dataclass
class TableArtifact:
    """A reproduction table as data: rows first, text second.

    Every ``benchmarks/bench_*.py`` report builds one of these; the
    committed ``results/<name>.txt`` is :meth:`render` and the
    machine-readable ``results/BENCH_<name>.json`` is :meth:`to_dict`
    — the text table is a *rendering* of the record, never a separate
    code path.
    """

    name: str
    columns: Sequence[Column]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def _cell(self, value: Any, col: Column) -> str:
        if value is None:
            return format("-", f"{col.align}{col.width}")
        try:
            return format(value, col.fmt)
        except (TypeError, ValueError):
            return format(str(value), f"{col.align}{col.width}")

    def render(self) -> str:
        lines: List[str] = []
        if self.columns:
            header = "".join(
                format(c.title, f"{c.align}{c.width}") for c in self.columns
            )
            lines += [header, "-" * len(header)]
            for row in self.rows:
                lines.append(
                    "".join(self._cell(row.get(c.key), c) for c in self.columns)
                )
        if self.notes:
            if lines:
                lines.append("")
            lines.extend(self.notes)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "kind": "table",
            "name": self.name,
            "git_sha": _git_sha(),
            "created_at": _utc_now(),
            "columns": [
                {"key": c.key, "header": c.title} for c in self.columns
            ],
            "rows": self.rows,
            "notes": self.notes,
        }

    def write(self, results_dir: Union[str, Path]) -> Path:
        """Persist the JSON record; returns its path."""
        path = Path(results_dir) / f"BENCH_{self.name}.json"
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path
