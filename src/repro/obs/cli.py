"""Run-record reader CLI: ``python -m repro.obs`` / ``repro trace``.

Subcommands:

* ``summarize RECORD.jsonl`` — render the stage-tree timing table,
  counters and metric snapshot of one run record,
* ``diff BEFORE.jsonl AFTER.jsonl`` — line two records up span by span
  and metric by metric (the before/after table a perf PR cites).
  ``--fail-on PCT`` additionally exits nonzero when the total wall
  clock, peak RSS or any root span grew by more than PCT percent,
  making the diff usable as a standalone CI step.
* ``export RECORD.jsonl --format chrome|folded`` — convert a record to
  the Chrome ``trace_event`` JSON format for Perfetto/
  ``chrome://tracing``, or to folded stacks for flamegraph.pl (uses
  the record's sampling-profiler counts when present, span-tree self
  times otherwise — see :mod:`repro.obs.export`); ``-o PATH`` writes
  to a file instead of stdout.

Exit codes: ``0`` ok, ``1`` ``--fail-on`` threshold breached, ``2`` on
unreadable or malformed records.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .record import RecordError, RunRecord, read_record
from .summarize import diff_breaches, diff_records, format_record

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.obs",
        description="Read, render and compare repro run records (JSONL).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="render one run record as a stage-tree table"
    )
    summarize.add_argument("record", type=Path, help="run record (JSONL)")

    diff = sub.add_parser("diff", help="compare two run records")
    diff.add_argument("before", type=Path)
    diff.add_argument("after", type=Path)
    diff.add_argument(
        "--fail-on",
        type=float,
        metavar="PCT",
        help="exit 1 when total seconds, peak RSS or a root span "
        "grew by more than PCT percent",
    )

    export = sub.add_parser(
        "export", help="convert a run record for an external trace viewer"
    )
    export.add_argument("record", type=Path, help="run record (JSONL)")
    export.add_argument(
        "--format",
        choices=("chrome", "folded"),
        default="chrome",
        help="output format (chrome = trace_event JSON for Perfetto, "
        "folded = folded stacks for flamegraph.pl)",
    )
    export.add_argument(
        "-o",
        "--output",
        type=Path,
        metavar="PATH",
        help="write here instead of stdout",
    )

    return parser


def _load(path: Path) -> RunRecord:
    try:
        return read_record(path)
    except (OSError, RecordError) as exc:
        raise SystemExit(f"repro.obs: {exc}") from exc


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            print(format_record(_load(args.record)))
        elif args.command == "export":
            from .export import chrome_trace_json, folded_stacks

            record = _load(args.record)
            if args.format == "folded":
                payload = folded_stacks(record).rstrip("\n")
            else:
                payload = chrome_trace_json(record)
            if args.output is not None:
                args.output.write_text(payload + "\n", encoding="utf-8")
                print(f"wrote {args.format} trace {args.output}")
            else:
                print(payload)
        else:
            before, after = _load(args.before), _load(args.after)
            print(diff_records(before, after))
            if args.fail_on is not None:
                breaches = diff_breaches(before, after, args.fail_on / 100.0)
                if breaches:
                    print()
                    for line in breaches:
                        print(f"FAIL {line}")
                    return 1
    except SystemExit as exc:
        if exc.code and not isinstance(exc.code, int):
            print(exc.code, file=sys.stderr)
            return 2
        raise
    except BrokenPipeError:
        # output piped into a pager/head that closed early
        sys.stderr.close()
        return 0
    return 0
