"""Render and compare run records.

:func:`format_record` renders one record as a stage-tree timing table
(indented span tree, seconds, share of the root, counters) followed by
the metric snapshot; :func:`diff_records` lines two records up span by
span and metric by metric — the before/after evidence a performance PR
cites.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .record import RunRecord

__all__ = ["format_record", "format_metrics", "diff_records", "diff_breaches"]

#: histogram snapshot keys that are quantiles (p50, p99, p99.9, ...)
_QUANTILE_KEY = re.compile(r"^p\d+(\.\d+)?$")


def _fmt_counters(counters: Mapping[str, float]) -> str:
    parts = []
    for name in sorted(counters):
        v = counters[name]
        parts.append(f"{name}={int(v) if float(v).is_integer() else round(v, 3)}")
    return " ".join(parts)


def format_record(record: RunRecord) -> str:
    """One record as a stage-tree timing table plus metrics."""
    lines: List[str] = []
    meta = record.meta
    sha = meta.get("git_sha") or "unknown"
    lines.append(f"run record: {record.label}  (git {str(sha)[:12]})")
    summary = record.summary
    peak = summary.get("peak_rss_mb")
    lines.append(
        f"status {summary.get('status', '?')}, "
        f"total {float(summary.get('seconds', 0.0)):.3f}s, "
        f"peak RSS {'n/a' if peak is None else f'{float(peak):.1f} MB'}, "
        f"{len(record.spans)} span(s)"
    )
    lines.append("")
    name_w = max(
        [len("stage")]
        + [2 * int(s.get("depth", 0)) + len(str(s["name"])) for s in record.spans]
    )
    total = sum(
        float(s["seconds"]) for s in record.spans if int(s.get("depth", 0)) == 0
    )
    lines.append(f"{'stage':<{name_w}}  {'seconds':>9}  {'share':>6}  counters")
    lines.append("-" * (name_w + 30))
    for s in record.spans:
        depth = int(s.get("depth", 0))
        seconds = float(s["seconds"])
        share = seconds / total if total > 0 else 0.0
        label = "  " * depth + str(s["name"])
        tag = "" if s.get("status", "ok") == "ok" else f"  !{s.get('error', 'error')}"
        counters = _fmt_counters(s.get("counters", {}))
        lines.append(
            f"{label:<{name_w}}  {seconds:>9.3f}  {share:>5.1%}  {counters}{tag}"
        )
    if record.metrics:
        lines.append("")
        lines.append(format_metrics(record.metrics))
    return "\n".join(lines)


def format_metrics(metrics: Mapping[str, Mapping[str, Any]]) -> str:
    """The metric snapshot as an aligned table."""
    lines = ["metrics:"]
    name_w = max(len(n) for n in metrics)
    for name in sorted(metrics):
        m = metrics[name]
        kind = m.get("kind", "?")
        if kind == "histogram":
            parts = [
                f"count={int(m.get('count', 0))}",
                f"mean={float(m.get('mean', 0)):.3g}",
            ]
            # render whatever quantile keys the histogram carries
            # (p50/p90/p95/p99 by default, any configured set otherwise)
            qkeys = sorted(
                (k for k in m if _QUANTILE_KEY.match(k)),
                key=lambda k: float(k[1:]),
            )
            parts.extend(f"{k}={float(m[k]):.3g}" for k in qkeys)
            parts.append(f"max={float(m.get('max', 0)):.3g}")
            detail = " ".join(parts)
        else:
            value = float(m.get("value", 0.0))
            detail = f"{int(value)}" if value.is_integer() else f"{value:.6g}"
        lines.append(f"  {name:<{name_w}}  [{kind}]  {detail}")
    return "\n".join(lines)


def _span_index(record: RunRecord) -> Dict[Tuple[str, ...], float]:
    """Map each span's tree path to its total seconds (repeats summed)."""
    out: Dict[Tuple[str, ...], float] = {}
    stack: List[str] = []
    for s in record.spans:
        depth = int(s.get("depth", 0))
        del stack[depth:]
        stack.append(str(s["name"]))
        key = tuple(stack)
        out[key] = out.get(key, 0.0) + float(s["seconds"])
    return out


def _fmt_delta(before: Optional[float], after: Optional[float]) -> str:
    if before is None:
        return f"{'—':>9}  {after:>9.3f}   (new)"
    if after is None:
        return f"{before:>9.3f}  {'—':>9}   (gone)"
    delta = after - before
    rel = f" ({delta / before:+.1%})" if before > 0 else ""
    return f"{before:>9.3f}  {after:>9.3f}  {delta:>+9.3f}{rel}"


def diff_records(a: RunRecord, b: RunRecord) -> str:
    """Span-by-span and metric-by-metric comparison of two records."""
    lines: List[str] = []
    lines.append(
        f"diff: {a.label} (git {str(a.meta.get('git_sha') or '?')[:10]})"
        f"  →  {b.label} (git {str(b.meta.get('git_sha') or '?')[:10]})"
    )
    sa = float(a.summary.get("seconds", 0.0))
    sb = float(b.summary.get("seconds", 0.0))
    lines.append(f"total seconds   {_fmt_delta(sa, sb)}")
    pa, pb = a.summary.get("peak_rss_mb"), b.summary.get("peak_rss_mb")
    if pa is not None and pb is not None:
        lines.append(f"peak RSS (MB)   {_fmt_delta(float(pa), float(pb))}")
    lines.append("")

    ia, ib = _span_index(a), _span_index(b)
    keys = sorted(set(ia) | set(ib))
    if keys:
        name_w = max(len("span"), max(len("/".join(k)) for k in keys))
        lines.append(f"{'span':<{name_w}}  {'before':>9}  {'after':>9}  {'delta':>9}")
        lines.append("-" * (name_w + 33))
        for key in keys:
            lines.append(
                f"{'/'.join(key):<{name_w}}  {_fmt_delta(ia.get(key), ib.get(key))}"
            )
        lines.append("")

    names = sorted(set(a.metrics) | set(b.metrics))
    if names:
        name_w = max(len("metric"), max(len(n) for n in names))
        lines.append(f"{'metric':<{name_w}}  {'before':>9}  {'after':>9}  {'delta':>9}")
        lines.append("-" * (name_w + 33))
        for name in names:
            va = _metric_value(a.metrics.get(name))
            vb = _metric_value(b.metrics.get(name))
            lines.append(f"{name:<{name_w}}  {_fmt_delta(va, vb)}")
    return "\n".join(lines)


def _metric_value(m: Optional[Mapping[str, Any]]) -> Optional[float]:
    if m is None:
        return None
    if m.get("kind") == "histogram":
        return float(m.get("total", 0.0))
    return float(m.get("value", 0.0))


#: growth below this many seconds never counts as a breach — tiny spans
#: (and whole sub-second runs) jitter by large fractions run to run
_BREACH_FLOOR_SECONDS = 0.05


def diff_breaches(a: RunRecord, b: RunRecord, pct: float) -> List[str]:
    """Regressions of ``b`` vs ``a`` beyond ``pct`` relative growth.

    Checks the summary wall clock, peak RSS and every root span (the
    stages a run is billed by).  ``pct`` is a fraction: ``0.2`` flags
    anything more than 20% slower/bigger.  Growth below an absolute
    floor of ``0.05 s`` is ignored so that sub-millisecond spans cannot
    breach on scheduler noise.  Returns human-readable breach lines,
    empty when the diff is clean — ``repro trace diff --fail-on`` turns
    a non-empty result into a nonzero exit.
    """
    breaches: List[str] = []

    def check(name: str, before: Optional[float], after: Optional[float],
              floor: float) -> None:
        if before is None or after is None:
            return
        if after - before < floor:
            return
        denom = max(before, floor)
        growth = (after - before) / denom
        if growth > pct:
            breaches.append(
                f"{name}: {before:.3f} -> {after:.3f} "
                f"(+{growth:.1%}, allowed +{pct:.1%})"
            )

    check(
        "total seconds",
        float(a.summary.get("seconds", 0.0)),
        float(b.summary.get("seconds", 0.0)),
        _BREACH_FLOOR_SECONDS,
    )
    pa, pb = a.summary.get("peak_rss_mb"), b.summary.get("peak_rss_mb")
    if pa is not None and pb is not None:
        check("peak RSS (MB)", float(pa), float(pb), 1.0)
    ia, ib = _span_index(a), _span_index(b)
    for key in sorted(set(ia) & set(ib)):
        if len(key) == 1:  # root spans only: the billed stages
            check(
                f"span {'/'.join(key)}",
                ia[key],
                ib[key],
                _BREACH_FLOOR_SECONDS,
            )
    return breaches
