"""Hierarchical tracing spans.

A *span* is one timed region of the flow — an engine stage, a baseline
run, one ECO patch.  Spans nest: entering a span while another is open
makes it a child, so a run record reconstructs the stage tree exactly
as the code executed it.  Each span carries

* its wall-clock duration (``seconds``),
* an outcome (``ok`` or the exception type that escaped it),
* counters and attributes attached mid-span (candidate counts, LP
  solves, windows touched — anything worth reading next to the time).

Usage::

    from repro import obs

    with obs.span("candidates") as sp:
        ...
        obs.count("candidates.generated", n)   # attaches to `sp`
    print(sp.seconds)

    @obs.span("score")                          # decorator form
    def score(...): ...

Spans always work: with no :func:`repro.obs.record.record_run` active
they accumulate on a process-wide default tracer (bounded, oldest
roots dropped), so instrumented library code needs no setup and pays
one ``perf_counter`` call per span.  The tracer is held in a
:class:`contextvars.ContextVar` and the open-span stack is
thread-local, so concurrent runs do not interleave their trees.
"""

from __future__ import annotations

import copy
import functools
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, TypeVar

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "set_tracer",
    "span",
    "count",
    "annotate",
    "current_span",
    "current_offset",
    "adopt",
]

_F = TypeVar("_F", bound=Callable[..., Any])


@dataclass
class Span:
    """One timed, possibly nested region of a run."""

    name: str
    seconds: float = 0.0
    status: str = "open"
    error: Optional[str] = None
    counters: Dict[str, float] = field(default_factory=dict)
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    #: start offset from the tracer epoch, for ordering in the record
    start_offset: float = 0.0

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment a counter attached to this span."""
        self.counters[name] = self.counters.get(name, 0.0) + value

    def annotate(self, **attrs: Any) -> None:
        """Attach key/value attributes to this span."""
        self.attrs.update(attrs)

    def child(self, name: str) -> Optional["Span"]:
        """First direct child with the given name, if any."""
        for c in self.children:
            if c.name == name:
                return c
        return None

    def walk(self, depth: int = 0) -> Iterator["tuple[int, Span]"]:
        """Pre-order traversal yielding ``(depth, span)`` pairs."""
        yield depth, self
        for c in self.children:
            yield from c.walk(depth + 1)

    def total_counters(self) -> Dict[str, float]:
        """Counters of this span and every descendant, summed by name."""
        out: Dict[str, float] = {}
        for _, sp in self.walk():
            for k, v in sp.counters.items():
                out[k] = out.get(k, 0.0) + v
        return out

    def as_dict(self, depth: int = 0) -> Dict[str, Any]:
        """Flat JSON form of this span (children serialized separately)."""
        out: Dict[str, Any] = {
            "name": self.name,
            "seconds": self.seconds,
            "status": self.status,
            "depth": depth,
            "start_offset": self.start_offset,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class Tracer:
    """Collects a forest of spans for one process or one recorded run.

    ``max_roots`` bounds the default process-wide tracer so
    long-running services do not accumulate history without bound;
    a :func:`~repro.obs.record.record_run` installs a fresh unbounded
    tracer for the duration of the run.
    """

    def __init__(self, max_roots: Optional[int] = None):
        self.roots: List[Span] = []
        self.max_roots = max_roots
        self._epoch = time.perf_counter()
        #: open-span stacks keyed by thread ident.  A dict (not
        #: ``threading.local``) so the sampling profiler can read
        #: another thread's stack; each thread only mutates its own
        #: entry, and dict get/set are atomic under the GIL.
        self._stacks: Dict[int, List[Span]] = {}
        self._lock = threading.Lock()

    # -- open-span stack (per thread) ----------------------------------
    @property
    def _stack(self) -> List[Span]:
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = []
            self._stacks[ident] = stack
        return stack

    def current(self) -> Optional[Span]:
        stack = self._stack
        return stack[-1] if stack else None

    def stack_names(self, ident: Optional[int] = None) -> List[str]:
        """Names of the open spans on one thread's stack, outermost first.

        Defaults to the calling thread.  Safe to call on *another*
        thread's ident (the profiler does): the returned list is a
        snapshot copied under the GIL; a concurrent push/pop can at
        worst make it one frame stale.
        """
        if ident is None:
            ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if not stack:
            return []
        return [sp.name for sp in list(stack)]

    def start(self, name: str) -> Span:
        sp = Span(name=name, start_offset=time.perf_counter() - self._epoch)
        parent = self.current()
        if parent is not None:
            parent.children.append(sp)
        else:
            with self._lock:
                self.roots.append(sp)
                if self.max_roots is not None and len(self.roots) > self.max_roots:
                    del self.roots[: len(self.roots) - self.max_roots]
        self._stack.append(sp)
        sp._t0 = time.perf_counter()  # type: ignore[attr-defined]
        return sp

    def finish(self, sp: Span, exc_type: Optional[type] = None) -> None:
        sp.seconds += time.perf_counter() - sp._t0  # type: ignore[attr-defined]
        sp.status = "ok" if exc_type is None else "error"
        if exc_type is not None:
            sp.error = exc_type.__name__
        stack = self._stack
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:  # unbalanced exit: drop it and everything above
            del stack[stack.index(sp) :]
        if not stack:
            # drop the empty entry so short-lived threads (service
            # workers, shard pools) don't grow the dict without bound
            self._stacks.pop(threading.get_ident(), None)


#: process-wide fallback tracer; record_run() swaps in a fresh one
_DEFAULT_TRACER = Tracer(max_roots=256)
_TRACER: ContextVar[Tracer] = ContextVar("repro_obs_tracer", default=_DEFAULT_TRACER)


def active_tracer() -> Tracer:
    """The tracer spans currently attach to."""
    return _TRACER.get()


def set_tracer(tracer: Optional[Tracer]) -> Callable[[], None]:
    """Install ``tracer`` (or the process default when ``None``).

    Returns a zero-argument restore function undoing the installation.
    """
    token = _TRACER.set(tracer if tracer is not None else _DEFAULT_TRACER)
    return lambda: _TRACER.reset(token)


class span:
    """Context manager *and* decorator opening a span on the active tracer.

    As a context manager it yields the :class:`Span`, which stays
    readable (``.seconds``, ``.counters``) after the block exits.  As a
    decorator it wraps the function body in a span named after the
    argument (or the function's qualified name when omitted).
    Exceptions are tagged on the span and re-raised.
    """

    def __init__(self, name: Optional[str] = None, **attrs: Any):
        self.name = name
        self.attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        if self.name is None:
            raise ValueError("span used as a context manager needs a name")
        self._span = active_tracer().start(self.name)
        if self.attrs:
            self._span.annotate(**self.attrs)
        return self._span

    def __exit__(self, exc_type: Optional[type], exc: object, tb: object) -> None:
        assert self._span is not None
        active_tracer().finish(self._span, exc_type)
        self._span = None

    def __call__(self, fn: _F) -> _F:
        name = self.name if self.name is not None else fn.__qualname__
        attrs = self.attrs

        @functools.wraps(fn)
        def wrapped(*args: Any, **kwargs: Any) -> Any:
            with span(name, **attrs):
                return fn(*args, **kwargs)

        return wrapped  # type: ignore[return-value]


def current_span() -> Optional[Span]:
    """The innermost open span on the active tracer, if any."""
    return active_tracer().current()


def count(name: str, value: float = 1.0) -> None:
    """Increment a counter on the innermost open span (no-op outside one)."""
    sp = current_span()
    if sp is not None:
        sp.count(name, value)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open span (no-op outside one)."""
    sp = current_span()
    if sp is not None:
        sp.annotate(**attrs)


def current_offset(tracer: Optional[Tracer] = None) -> float:
    """Seconds elapsed since a tracer's epoch (the active one if omitted).

    The value ``start_offset`` of a span opened right now would get;
    used to rebase externally captured span trees on adoption, and by
    the fill service to timestamp queue entry/exit against the service
    tracer from threads where a different tracer may be active.
    """
    if tracer is None:
        tracer = active_tracer()
    return time.perf_counter() - tracer._epoch


def adopt(spans: List[Span], *, rebase: bool = True) -> None:
    """Graft externally captured spans into the active tracer's tree.

    ``spans`` are finished root spans recorded on another tracer —
    typically in a :mod:`repro.parallel` worker process — whose whole
    subtrees become children of the innermost open span (or new roots
    when no span is open).  With ``rebase`` (the default) every
    ``start_offset`` in the adopted subtrees is shifted by the current
    tracer offset, so adopted spans sort after everything already
    recorded instead of clustering at the worker's epoch.

    The subtrees are *copied* before rebasing: the caller's span
    objects are never mutated, so adopting the same list twice (a
    retried merge) rebases each graft from the pristine offsets
    instead of double-shifting them, and the grafted copies never
    alias spans the caller may still hold.

    Callers are responsible for adopting in a deterministic order:
    the run-record span list follows child order exactly.
    """
    grafted = [copy.deepcopy(root) for root in spans]
    base = current_offset() if rebase else 0.0
    if base:
        for root in grafted:
            for _, sp in root.walk():
                sp.start_offset += base
    parent = current_span()
    if parent is not None:
        parent.children.extend(grafted)
        return
    tracer = active_tracer()
    with tracer._lock:
        tracer.roots.extend(grafted)
        if tracer.max_roots is not None and len(tracer.roots) > tracer.max_roots:
            del tracer.roots[: len(tracer.roots) - tracer.max_roots]
