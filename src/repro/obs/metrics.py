"""Process-wide metrics registry: counters, gauges, histograms.

Spans time *regions*; metrics aggregate *events* across the whole run
— LP/dual-MCF alternation counts from the sizing passes, candidate
counts per Alg. 1 round, windows touched, flow-solver invocations.
Instrumented code asks the active registry for a named instrument and
updates it::

    from repro import obs

    obs.metrics.counter("sizing.lp_solves").inc()
    obs.metrics.gauge("planner.td.layer1").set(0.42)
    obs.metrics.histogram("sizing.lp.variables").observe(n_vars)

Like the span tracer, a process-wide default registry always exists;
:func:`repro.obs.record.record_run` installs a fresh one per recorded
run so snapshots describe exactly one run.  All instruments are
thread-safe (one lock per registry; updates are cheap).
"""

from __future__ import annotations

import math
import threading
from contextvars import ContextVar
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "set_registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self._written = False

    def set(self, value: Number) -> None:
        self.value = float(value)
        self._written = True

    def add(self, amount: Number) -> None:
        self.value += amount
        self._written = True

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """A distribution of observed values with percentile queries.

    Observations are kept exactly up to ``max_samples`` and then
    reservoir-free downsampled (every other sample dropped, stride
    doubled) — percentiles stay representative while memory stays
    bounded on million-observation runs.
    """

    kind = "histogram"

    def __init__(self, name: str, max_samples: int = 8192):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._stride = 1
        self._skip = 0

    def observe(self, value: Number) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        self._sample(v)

    def _sample(self, v: float) -> None:
        """Admit one value to the bounded sample buffer."""
        if self._skip > 0:
            self._skip -= 1
            return
        self._samples.append(v)
        self._skip = self._stride - 1
        if len(self._samples) >= self._max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Count, total and extrema combine exactly; the other histogram
        contributes its (possibly downsampled) sample buffer to this
        one's, through the same bounded-memory admission path.  Used to
        merge worker-side registries back into the parent run.
        """
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        for v in other._samples:
            self._sample(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile ``p`` in [0, 100] of the samples."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p} out of [0, 100]")
        if not self._samples:
            return 0.0
        data = sorted(self._samples)
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return data[int(rank)]
        frac = rank - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments for one process or one recorded run."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory: Callable[[str], Instrument]) -> Instrument:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory(name)
                self._instruments[name] = inst
            return inst

    def counter(self, name: str) -> Counter:
        inst = self._get(name, Counter)
        if not isinstance(inst, Counter):
            raise TypeError(f"metric {name!r} is a {inst.kind}, not a counter")
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._get(name, Gauge)
        if not isinstance(inst, Gauge):
            raise TypeError(f"metric {name!r} is a {inst.kind}, not a gauge")
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._get(name, Histogram)
        if not isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} is a {inst.kind}, not a histogram")
        return inst

    def names(self) -> Sequence[str]:
        with self._lock:
            return sorted(self._instruments)

    def instruments(self) -> Dict[str, Instrument]:
        """The registry's instruments by name (a shallow copy).

        Instruments are plain picklable objects (the lock lives on the
        registry), so this is the transport form a parallel worker
        ships back for :meth:`merge_from`.
        """
        with self._lock:
            return dict(self._instruments)

    def merge_from(self, instruments: Dict[str, Instrument]) -> None:
        """Fold another registry's instruments into this one.

        Counters add, gauges take the incoming value (last merge wins
        — callers merge shards in deterministic order), histograms
        combine via :meth:`Histogram.merge`.  Kind mismatches raise
        ``TypeError`` exactly as a direct lookup would.
        """
        for name in sorted(instruments):
            inst = instruments[name]
            if isinstance(inst, Counter):
                self.counter(name).inc(inst.value)
            elif isinstance(inst, Gauge):
                self.gauge(name).set(inst.value)
            elif isinstance(inst, Histogram):
                self.histogram(name).merge(inst)
            else:
                raise TypeError(
                    f"cannot merge unknown instrument kind for {name!r}"
                )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready state of every instrument, sorted by name."""
        with self._lock:
            return {
                name: self._instruments[name].as_dict()
                for name in sorted(self._instruments)
            }

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


#: process-wide fallback registry; record_run() swaps in a fresh one
_DEFAULT_REGISTRY = MetricsRegistry()
_REGISTRY: ContextVar[MetricsRegistry] = ContextVar(
    "repro_obs_registry", default=_DEFAULT_REGISTRY
)


def active_registry() -> MetricsRegistry:
    """The registry instrument lookups currently resolve against."""
    return _REGISTRY.get()


def set_registry(registry: Optional[MetricsRegistry]) -> Callable[[], None]:
    """Install ``registry`` (or the process default when ``None``).

    Returns a zero-argument restore function undoing the installation.
    """
    token = _REGISTRY.set(
        registry if registry is not None else _DEFAULT_REGISTRY
    )
    return lambda: _REGISTRY.reset(token)


def counter(name: str) -> Counter:
    """Get-or-create a counter on the active registry."""
    return active_registry().counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the active registry."""
    return active_registry().gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram on the active registry."""
    return active_registry().histogram(name)


def snapshot() -> Dict[str, Dict[str, Any]]:
    """Snapshot of the active registry."""
    return active_registry().snapshot()
