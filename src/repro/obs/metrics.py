"""Process-wide metrics registry: counters, gauges, histograms.

Spans time *regions*; metrics aggregate *events* across the whole run
— LP/dual-MCF alternation counts from the sizing passes, candidate
counts per Alg. 1 round, windows touched, flow-solver invocations.
Instrumented code asks the active registry for a named instrument and
updates it::

    from repro import obs

    obs.metrics.counter("sizing.lp_solves").inc()
    obs.metrics.gauge("planner.td.layer1").set(0.42)
    obs.metrics.histogram("sizing.lp.variables").observe(n_vars)

Like the span tracer, a process-wide default registry always exists;
:func:`repro.obs.record.record_run` installs a fresh one per recorded
run so snapshots describe exactly one run.  All instruments are
thread-safe (one lock per registry; updates are cheap).
"""

from __future__ import annotations

import bisect
import math
import threading
from contextvars import ContextVar
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "percentile_of",
    "set_registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
]

Number = Union[int, float]

#: default histogram bucket upper bounds (``le`` semantics).  Log-ish
#: spaced so one ladder covers both sub-millisecond latencies (seconds
#: as the unit) and large event counts (LP variables, candidates).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)

#: default summary quantiles (percent ranks) for :meth:`Histogram.as_dict`
DEFAULT_QUANTILES: Tuple[float, ...] = (50.0, 90.0, 95.0, 99.0)


def percentile_of(samples: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile ``p`` in [0, 100] of ``samples``.

    The one percentile implementation shared by :class:`Histogram` and
    the sliding-window quantiles of :mod:`repro.obs.expose`.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile {p} out of [0, 100]")
    if not samples:
        return 0.0
    data = sorted(samples)
    if len(data) == 1:
        return data[0]
    rank = (p / 100.0) * (len(data) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return data[int(rank)]
    frac = rank - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self._written = False

    def set(self, value: Number) -> None:
        self.value = float(value)
        self._written = True

    def add(self, amount: Number) -> None:
        self.value += amount
        self._written = True

    def as_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """A distribution of observed values with percentile queries.

    Observations are kept exactly up to ``max_samples`` and then
    reservoir-free downsampled (every other sample dropped, stride
    doubled) — percentiles stay representative while memory stays
    bounded on million-observation runs.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        max_samples: int = 8192,
        buckets: Optional[Sequence[float]] = None,
        quantiles: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bucket_bounds: Tuple[float, ...] = tuple(
            sorted(buckets) if buckets is not None else DEFAULT_BUCKETS
        )
        self.quantiles: Tuple[float, ...] = tuple(
            quantiles if quantiles is not None else DEFAULT_QUANTILES
        )
        #: per-bucket (non-cumulative) counts; last slot catches values
        #: above every bound (the ``+Inf`` bucket of the exposition)
        self._bucket_counts: List[int] = [0] * (len(self.bucket_bounds) + 1)
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._stride = 1
        self._skip = 0

    def observe(self, value: Number) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        self._bucket_counts[bisect.bisect_left(self.bucket_bounds, v)] += 1
        self._sample(v)

    def _sample(self, v: float) -> None:
        """Admit one value to the bounded sample buffer."""
        if self._skip > 0:
            self._skip -= 1
            return
        self._samples.append(v)
        self._skip = self._stride - 1
        if len(self._samples) >= self._max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Count, total, extrema and bucket counts combine exactly; the
        other histogram contributes its (possibly downsampled) sample
        buffer to this one's, through the same bounded-memory admission
        path.  Used to merge worker-side registries back into the
        parent run.  Merging histograms with different bucket ladders
        is refused — exact bucket counts cannot be re-binned.
        """
        if other.bucket_bounds != self.bucket_bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                "bucket bounds differ"
            )
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        for i, n in enumerate(other._bucket_counts):
            self._bucket_counts[i] += n
        for v in other._samples:
            self._sample(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile ``p`` in [0, 100] of the samples."""
        return percentile_of(self._samples, p)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(le, cumulative count)`` pairs, le-sorted, ending at ``+Inf``.

        The Prometheus histogram view: each bucket counts observations
        ``<= le``, the final ``+Inf`` bucket equals :attr:`count`.
        """
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bucket_bounds, self._bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self._bucket_counts[-1]))
        return out

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }
        for q in self.quantiles:
            out[f"p{q:g}"] = self.percentile(q)
        return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named instruments for one process or one recorded run."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory: Callable[[str], Instrument]) -> Instrument:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory(name)
                self._instruments[name] = inst
            return inst

    def counter(self, name: str) -> Counter:
        inst = self._get(name, Counter)
        if not isinstance(inst, Counter):
            raise TypeError(f"metric {name!r} is a {inst.kind}, not a counter")
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._get(name, Gauge)
        if not isinstance(inst, Gauge):
            raise TypeError(f"metric {name!r} is a {inst.kind}, not a gauge")
        return inst

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        quantiles: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get-or-create a histogram.

        ``buckets``/``quantiles`` only take effect on creation; an
        existing instrument keeps its ladder (get-or-create semantics).
        """
        inst = self._get(
            name, lambda n: Histogram(n, buckets=buckets, quantiles=quantiles)
        )
        if not isinstance(inst, Histogram):
            raise TypeError(f"metric {name!r} is a {inst.kind}, not a histogram")
        return inst

    def names(self) -> Sequence[str]:
        with self._lock:
            return sorted(self._instruments)

    def instruments(self) -> Dict[str, Instrument]:
        """The registry's instruments by name (a shallow copy).

        Instruments are plain picklable objects (the lock lives on the
        registry), so this is the transport form a parallel worker
        ships back for :meth:`merge_from`.
        """
        with self._lock:
            return dict(self._instruments)

    def merge_from(self, instruments: Dict[str, Instrument]) -> None:
        """Fold another registry's instruments into this one.

        Counters add, gauges take the incoming value (last merge wins
        — callers merge shards in deterministic order), histograms
        combine via :meth:`Histogram.merge`.  Kind mismatches raise
        ``TypeError`` exactly as a direct lookup would.
        """
        for name in sorted(instruments):
            inst = instruments[name]
            if isinstance(inst, Counter):
                self.counter(name).inc(inst.value)
            elif isinstance(inst, Gauge):
                self.gauge(name).set(inst.value)
            elif isinstance(inst, Histogram):
                target = self._get(
                    name,
                    lambda n: Histogram(
                        n,
                        max_samples=inst._max_samples,
                        buckets=inst.bucket_bounds,
                        quantiles=inst.quantiles,
                    ),
                )
                if not isinstance(target, Histogram):
                    raise TypeError(
                        f"metric {name!r} is a {target.kind}, not a histogram"
                    )
                target.merge(inst)
            else:
                raise TypeError(
                    f"cannot merge unknown instrument kind for {name!r}"
                )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready state of every instrument, sorted by name."""
        with self._lock:
            return {
                name: self._instruments[name].as_dict()
                for name in sorted(self._instruments)
            }

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


#: process-wide fallback registry; record_run() swaps in a fresh one
_DEFAULT_REGISTRY = MetricsRegistry()
_REGISTRY: ContextVar[MetricsRegistry] = ContextVar(
    "repro_obs_registry", default=_DEFAULT_REGISTRY
)


def active_registry() -> MetricsRegistry:
    """The registry instrument lookups currently resolve against."""
    return _REGISTRY.get()


def set_registry(registry: Optional[MetricsRegistry]) -> Callable[[], None]:
    """Install ``registry`` (or the process default when ``None``).

    Returns a zero-argument restore function undoing the installation.
    """
    token = _REGISTRY.set(
        registry if registry is not None else _DEFAULT_REGISTRY
    )
    return lambda: _REGISTRY.reset(token)


def counter(name: str) -> Counter:
    """Get-or-create a counter on the active registry."""
    return active_registry().counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge on the active registry."""
    return active_registry().gauge(name)


def histogram(
    name: str,
    buckets: Optional[Sequence[float]] = None,
    quantiles: Optional[Sequence[float]] = None,
) -> Histogram:
    """Get-or-create a histogram on the active registry."""
    return active_registry().histogram(name, buckets=buckets, quantiles=quantiles)


def snapshot() -> Dict[str, Dict[str, Any]]:
    """Snapshot of the active registry."""
    return active_registry().snapshot()
