"""Thread-based sampling profiler with span-aware stacks.

A :class:`SamplingProfiler` wakes every ``period_ms``, reads the
target thread's Python frame stack via ``sys._current_frames()``, and
folds it into a :class:`ProfileCollector` — the classic
``outer;inner;leaf count`` folded-stack form flamegraph.pl consumes.
Each sample is prefixed with the target thread's *open span names*
(read off the tracer's per-thread stack), so the resulting flamegraph
groups CPU time under the engine stages the span tree records:
``engine.run;sizing;repro.core.sizing.size_fills;... 42``.

Sampling is cooperative and read-only: no signals (``setitimer``
would collide with the shard workers and only fires on the main
thread), no sys.setprofile overhead on the profiled code.  The
profiled thread never blocks; worst case a sample lands between two
bytecodes and is one frame stale.  Overhead at the default 10 ms
period is well under 5% (one frame walk per wakeup).

Shipping across shard workers: ``run_sharded`` arms a worker-local
collector in each worker (same period), ships its folded counts back
in ``ShardOutcome.profile``, and the parent merges them in shard
order under the parent's current span path — the same contract spans
and metrics follow.

Usage::

    from repro import obs

    with obs.profile.profiled(period_ms=10.0):
        engine.run(...)
    # collector published onto the active tracer; record_run() saves
    # it as a "profile" event in the run record.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from types import FrameType
from typing import Any, Dict, Iterator, List, Optional

from .spans import Tracer, active_tracer

__all__ = [
    "ProfileCollector",
    "SamplingProfiler",
    "active_collector",
    "attached",
    "profiled",
    "publish",
]


class ProfileCollector:
    """Accumulates folded stack samples; thread-safe.

    ``folded`` maps a ``;``-joined stack path to its sample count.
    One collector is shared by the caller-thread sampler and the
    merge-back of worker-side counts, so a whole sharded run folds
    into a single flamegraph.
    """

    def __init__(self, period_ms: float = 10.0, max_frames: int = 32):
        if period_ms <= 0:
            raise ValueError(f"period_ms must be positive, got {period_ms}")
        self.period_ms = float(period_ms)
        self.max_frames = max_frames
        self.samples = 0
        self._folded: Dict[str, int] = {}
        self._lock = threading.Lock()

    def add(self, key: str) -> None:
        """Record one sample of the ``;``-joined stack ``key``."""
        with self._lock:
            self.samples += 1
            self._folded[key] = self._folded.get(key, 0) + 1

    def merge_folded(
        self, counts: Dict[str, int], prefix: Optional[str] = None
    ) -> None:
        """Fold externally captured counts in, optionally re-rooted.

        ``prefix`` (a ``;``-joined span path) is prepended to every
        incoming key — how worker-side samples, whose stacks start at
        the worker's own span root, get grafted under the parent's
        current stage (e.g. ``engine.run;candidates``).
        """
        with self._lock:
            for key in sorted(counts):
                n = counts[key]
                full = f"{prefix};{key}" if prefix else key
                self.samples += n
                self._folded[full] = self._folded.get(full, 0) + n

    def folded_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._folded)

    def stage_sample_counts(self, prefix: str) -> Dict[str, int]:
        """Samples per direct child path segment under ``prefix``.

        With ``prefix="engine.run"``, a key
        ``engine.run;sizing;repro...;... 7`` contributes 7 to
        ``{"sizing": 7}`` — per-stage CPU attribution for the span
        tree annotations.
        """
        head = prefix + ";"
        out: Dict[str, int] = {}
        with self._lock:
            for key, n in self._folded.items():
                if not key.startswith(head):
                    continue
                rest = key[len(head):]
                child = rest.split(";", 1)[0]
                out[child] = out.get(child, 0) + n
        return out

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form, the run record's ``profile`` event payload."""
        with self._lock:
            return {
                "period_ms": self.period_ms,
                "samples": self.samples,
                "folded": dict(sorted(self._folded.items())),
            }


#: frames at which the outward stack walk stops: everything below a
#: shard worker's entry point, a service worker's request executor, or
#: the CLI dispatcher is interpreter / thread / fork bootstrap noise
#: (runpy, threading._bootstrap, multiprocessing spawn) that would make
#: every flamegraph root meaninglessly deep
_ROOT_FRAMES = frozenset(
    {
        "repro.parallel.executor._execute",
        "repro.service.api._execute",
        "repro.cli.main",
    }
)


def _frame_names(frame: Optional[FrameType], max_frames: int) -> List[str]:
    """``module.function`` names outermost→innermost, innermost kept."""
    names: List[str] = []
    f = frame
    while f is not None:
        module = f.f_globals.get("__name__", "?")
        name = f"{module}.{f.f_code.co_name}"
        names.append(name)
        if name in _ROOT_FRAMES:
            break
        f = f.f_back
    names.reverse()
    if len(names) > max_frames:
        names = names[-max_frames:]
    return names


class SamplingProfiler:
    """Daemon thread sampling one target thread's stack periodically.

    ``target_ident`` defaults to the *constructing* thread — the usual
    shape is "profile me": construct + start on the thread doing the
    work.  The tracer (for span-path prefixes) defaults to the tracer
    active where the profiler is constructed, so samples land under
    the same span names the run record will contain.
    """

    def __init__(
        self,
        collector: ProfileCollector,
        tracer: Optional[Tracer] = None,
        target_ident: Optional[int] = None,
    ):
        self.collector = collector
        self._tracer = tracer if tracer is not None else active_tracer()
        self._target = (
            target_ident if target_ident is not None else threading.get_ident()
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _sample_once(self) -> None:
        frame = sys._current_frames().get(self._target)
        if frame is None:
            return
        parts = self._tracer.stack_names(self._target)
        parts.extend(_frame_names(frame, self.collector.max_frames))
        if parts:
            self.collector.add(";".join(parts))

    def _run(self) -> None:
        period_s = self.collector.period_ms / 1000.0
        while not self._stop.wait(period_s):
            self._sample_once()

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


#: the collector shard workers should arm and service requests attach to
_COLLECTOR: ContextVar[Optional[ProfileCollector]] = ContextVar(
    "repro_obs_profile_collector", default=None
)


def active_collector() -> Optional[ProfileCollector]:
    """The profile collector in effect, or ``None`` when not profiling."""
    return _COLLECTOR.get()


_PUBLISH_LOCK = threading.Lock()


def publish(collector: ProfileCollector, tracer: Optional[Tracer] = None) -> None:
    """Attach a collector's folded counts to a tracer as its profile.

    ``record_run`` reads ``tracer.profile`` when closing the record
    and stores it as the record's ``profile`` event.  Publishing twice
    (per-request profiles on a service tracer) merges counts.
    """
    if tracer is None:
        tracer = active_tracer()
    payload = collector.as_dict()
    with _PUBLISH_LOCK:
        existing: Optional[Dict[str, Any]] = getattr(tracer, "profile", None)
        if existing is None:
            tracer.profile = payload  # type: ignore[attr-defined]
            return
        folded: Dict[str, int] = existing["folded"]
        for key, n in payload["folded"].items():
            folded[key] = folded.get(key, 0) + n
        existing["samples"] += payload["samples"]


@contextmanager
def attached(collector: ProfileCollector) -> Iterator[ProfileCollector]:
    """Sample the current thread into ``collector`` for the block.

    Also installs the collector in the context, so ``run_sharded``
    (and anything else consulting :func:`active_collector`) arms its
    workers with the same period.
    """
    token = _COLLECTOR.set(collector)
    sampler = SamplingProfiler(collector).start()
    try:
        yield collector
    finally:
        sampler.stop()
        _COLLECTOR.reset(token)


@contextmanager
def profiled(period_ms: float = 10.0) -> Iterator[ProfileCollector]:
    """Profile the block and publish the result to the active tracer."""
    collector = ProfileCollector(period_ms=period_ms)
    with attached(collector):
        try:
            yield collector
        finally:
            publish(collector)
