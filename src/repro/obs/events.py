"""Structured JSON event logging correlated to spans.

Every diagnostic the system emits while running — request served,
slow request, worker respawned, pool fallback — flows through one
event log as a JSON line::

    {"ts": 1754550000.123, "event": "slow_request", "level": "warning",
     "span": "service.request", "span_id": 41, "op": "fill", ...}

Events carry the innermost open span's name and a stable per-tracer
span id, so a line in the log can be joined back to the span tree of
the run record it happened inside.  The module replaces the ad-hoc
``logging.basicConfig`` plumbing behind ``--log-level``: stdlib
``logging`` calls under the ``repro`` logger are bridged into the
event log, so library code that logs keeps working while everything
lands in one machine-readable stream.

Usage::

    from repro import obs

    obs.events.configure(level="info", path="events.jsonl")
    obs.events.emit("pool.fallback", level="warning", backend="process")

Levels mirror logging: ``debug`` < ``info`` < ``warning`` < ``error``.
Events below the configured level are dropped at the emit site.
"""

from __future__ import annotations

import itertools
import json
import logging
import sys
import threading
import time
from typing import Any, Dict, IO, Optional

from .spans import Span, current_span

__all__ = [
    "EventLog",
    "LEVELS",
    "configure",
    "emit",
    "get_log",
    "span_id",
]

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: monotonically increasing ids handed to spans on first event emission
_SPAN_IDS = itertools.count(1)


def span_id(sp: Span) -> int:
    """A stable numeric id for a span, assigned lazily on first use.

    Ids are process-unique and monotonic in assignment order; they
    exist so event lines can reference "the span this happened inside"
    without serializing the whole tree per event.
    """
    existing = getattr(sp, "_event_id", None)
    if existing is not None:
        return int(existing)
    new_id = next(_SPAN_IDS)
    sp._event_id = new_id  # type: ignore[attr-defined]
    return new_id


class EventLog:
    """A leveled, thread-safe JSON-lines event sink.

    Writes to ``stream`` (default stderr), or to ``path`` when given
    (opened append, line-buffered by flushing per event).  Emission is
    cheap when the level filters the event out: one dict lookup.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        path: Optional[str] = None,
        level: str = "warning",
    ):
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; expected one of {sorted(LEVELS)}")
        self._stream = stream
        self._path = path
        self._file: Optional[IO[str]] = None
        self.level = level
        self._lock = threading.Lock()

    def _sink(self) -> IO[str]:
        if self._path is not None:
            if self._file is None:
                self._file = open(self._path, "a", encoding="utf-8")
            return self._file
        return self._stream if self._stream is not None else sys.stderr

    def enabled(self, level: str) -> bool:
        return LEVELS.get(level, 0) >= LEVELS[self.level]

    def emit(self, event: str, *, level: str = "info", **fields: Any) -> None:
        """Write one event line (dropped when below the configured level).

        Reserved keys (``ts``/``event``/``level``/``span``/``span_id``)
        come first so the lines are eyeball-able; extra ``fields`` are
        serialized with ``default=str`` so a non-JSON value degrades to
        its repr instead of killing the request that logged it.
        """
        if not self.enabled(level):
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "event": event,
            "level": level,
        }
        sp = current_span()
        if sp is not None:
            record["span"] = sp.name
            record["span_id"] = span_id(sp)
        for k, v in fields.items():
            if k not in record:
                record[k] = v
        line = json.dumps(record, default=str)
        with self._lock:
            sink = self._sink()
            sink.write(line + "\n")
            sink.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


#: process-wide default log; configure() replaces its destination/level
_LOG = EventLog()
_LOG_LOCK = threading.Lock()


def get_log() -> EventLog:
    """The process-wide event log."""
    return _LOG


def configure(
    level: Optional[str] = None,
    path: Optional[str] = None,
    stream: Optional[IO[str]] = None,
) -> EventLog:
    """Reconfigure the process-wide event log in place.

    Only the arguments given change; ``configure(level="debug")``
    keeps the current destination.  Also installs the stdlib-logging
    bridge (idempotent), so ``logging.getLogger("repro.x").warning``
    lands in the event stream.
    """
    global _LOG
    with _LOG_LOCK:
        if level is not None:
            if level not in LEVELS:
                raise ValueError(
                    f"unknown level {level!r}; expected one of {sorted(LEVELS)}"
                )
            _LOG.level = level
        if path is not None or stream is not None:
            _LOG.close()
            _LOG._path = path
            _LOG._stream = stream
        _install_bridge()
    return _LOG


def emit(event: str, *, level: str = "info", **fields: Any) -> None:
    """Emit an event on the process-wide log."""
    _LOG.emit(event, level=level, **fields)


class _BridgeHandler(logging.Handler):
    """Forwards stdlib ``repro.*`` log records into the event log."""

    def emit(self, record: logging.LogRecord) -> None:
        level = record.levelname.lower()
        if level == "critical":
            level = "error"
        if level not in LEVELS:
            level = "info"
        _LOG.emit(
            "log",
            level=level,
            logger=record.name,
            message=record.getMessage(),
        )


_BRIDGE: Optional[_BridgeHandler] = None


def _install_bridge() -> None:
    global _BRIDGE
    if _BRIDGE is not None:
        return
    _BRIDGE = _BridgeHandler()
    logger = logging.getLogger("repro")
    logger.addHandler(_BRIDGE)
    logger.setLevel(logging.DEBUG)
    logger.propagate = False
