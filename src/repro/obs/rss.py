"""Peak-memory measurement: RSS sampler thread and tracemalloc wrapper.

The contest's Memory* score (Eqn. (3), Table 2) measures peak usage
during the run.  ``tracemalloc`` would be exact but slows Python ~6x,
corrupting the simultaneously-measured Run-time* score, so the default
is a background thread polling ``/proc/self/statm`` every few
milliseconds — effectively free, and it captures the peak working set
including numpy/scipy allocations tracemalloc never sees.

This module is the **only** place in the repo allowed to touch
``tracemalloc`` (rule REP007); everything else measures through
:class:`PeakRssSampler`, :func:`traced_memory` or
:func:`repro.obs.record.measure`.
"""

from __future__ import annotations

import os
import threading
import tracemalloc
from contextlib import contextmanager
from typing import Iterator, List

__all__ = ["PeakRssSampler", "traced_memory", "current_rss_bytes"]

_MB = 1024.0 * 1024.0


def current_rss_bytes() -> int:
    """The process resident set size right now (0 where /proc is absent)."""
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


class PeakRssSampler:
    """Samples the process RSS on a background thread.

    Use as a context manager around the measured region; read
    :attr:`peak_mb` (growth over the entry baseline) afterwards.
    """

    def __init__(self, interval: float = 0.005):
        self._interval = interval
        self._peak = 0
        self._baseline = current_rss_bytes()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._peak = max(self._peak, current_rss_bytes())
            self._stop.wait(self._interval)

    def __enter__(self) -> "PeakRssSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop.set()
        self._thread.join()
        self._peak = max(self._peak, current_rss_bytes())

    @property
    def peak_mb(self) -> float:
        """Peak RSS growth over the run's baseline, in MB."""
        return max(0.0, (self._peak - self._baseline) / _MB)

    @property
    def peak_bytes(self) -> int:
        return max(0, self._peak - self._baseline)


@contextmanager
def traced_memory(out_mb: List[float]) -> Iterator[None]:
    """Exact Python-heap peak via tracemalloc (~6x slower).

    Appends the peak in MB to ``out_mb`` on exit.  Do not combine with
    runtime comparisons.
    """
    tracemalloc.start()
    try:
        yield
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        out_mb.append(peak / _MB)
