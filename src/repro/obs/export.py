"""Export run records to external trace viewers.

:func:`chrome_trace` converts a :class:`~repro.obs.record.RunRecord`
into the Chrome ``trace_event`` JSON format, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Every span becomes
a complete ("X") event; ``start_offset`` and ``seconds`` map to the
microsecond ``ts``/``dur`` fields, and the span's counters and
attributes ride along under ``args`` so the viewer's selection panel
shows them.

Run records store a *flat pre-order* span list with a ``depth`` per
span — concurrency is implicit (service worker spans become sibling
roots that overlap in time).  The exporter reconstructs lanes: root
spans are greedily packed onto synthetic "tracks" (one ``tid`` per
track) so overlapping requests render side by side while sequential
stages share a row, exactly how a flame chart should read.

:func:`folded_stacks` exports the same record in the folded-stack
format flamegraph.pl consumes (``outer;inner;leaf count`` lines).
When the record carries a sampling-profiler payload (a ``profile``
event) those exact sample counts are used; otherwise the stacks are
synthesized from the span tree's *self time* (each span's seconds
minus its direct children's), so any saved run record — profiled or
not — renders as a flamegraph.

CLI: ``repro trace export RECORD.jsonl --format chrome|folded -o out``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .record import RunRecord

__all__ = ["chrome_trace", "chrome_trace_json", "folded_stacks"]

_PID = 1


def _lane_assignment(roots: List[Dict[str, Any]]) -> List[int]:
    """Pack root spans onto the fewest lanes with no overlap per lane.

    Roots are processed in record order (already sorted by start for a
    single tracer; re-sorting would break ties nondeterministically
    for adopted subtrees).  Each root goes to the first lane whose
    previous occupant ended before it starts.
    """
    lane_free_at: List[float] = []
    lanes: List[int] = []
    for root in roots:
        start = float(root.get("start_offset", 0.0))
        end = start + float(root.get("seconds", 0.0))
        for lane, free_at in enumerate(lane_free_at):
            if free_at <= start + 1e-12:
                lane_free_at[lane] = end
                lanes.append(lane)
                break
        else:
            lane_free_at.append(end)
            lanes.append(len(lane_free_at) - 1)
    return lanes


def chrome_trace(record: RunRecord) -> Dict[str, Any]:
    """The record as a Chrome ``trace_event`` JSON object (dict form)."""
    # group the flat span list into root subtrees
    subtrees: List[List[Dict[str, Any]]] = []
    for span in record.spans:
        if int(span.get("depth", 0)) == 0:
            subtrees.append([span])
        elif subtrees:
            subtrees[-1].append(span)
    lanes = _lane_assignment([tree[0] for tree in subtrees])

    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": record.label},
        }
    ]
    for lane in sorted(set(lanes)):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": lane,
                "args": {"name": f"track {lane}"},
            }
        )
    for tree, lane in zip(subtrees, lanes):
        for span in tree:
            args: Dict[str, Any] = {}
            if span.get("attrs"):
                args.update(span["attrs"])
            if span.get("counters"):
                args.update(span["counters"])
            if span.get("status") not in (None, "ok"):
                args["status"] = span["status"]
                if span.get("error"):
                    args["error"] = span["error"]
            event: Dict[str, Any] = {
                "name": str(span["name"]),
                "ph": "X",
                "pid": _PID,
                "tid": lane,
                "ts": round(float(span.get("start_offset", 0.0)) * 1e6, 3),
                "dur": round(float(span["seconds"]) * 1e6, 3),
                "cat": "span",
            }
            if args:
                event["args"] = args
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": record.label,
            "git_sha": record.meta.get("git_sha"),
            "total_seconds": record.summary.get("seconds"),
        },
    }


def chrome_trace_json(record: RunRecord) -> str:
    """:func:`chrome_trace` serialized to a compact JSON string."""
    return json.dumps(chrome_trace(record), sort_keys=True)


def _folded_from_spans(spans: List[Dict[str, Any]]) -> Dict[str, int]:
    """Folded stacks from the span tree, weighted by self time in µs.

    Each span contributes one stack (its ancestor path joined with
    ``;``) weighted by its wall time minus its direct children's — the
    flamegraph then shows exactly the tree `trace summarize` prints,
    with frame widths matching the stage-seconds table.  Weights are
    clamped to ≥1 µs so zero-self-time parents stay visible.
    """
    folded: Dict[str, int] = {}
    path: List[Dict[str, Any]] = []  # open ancestor spans, by depth
    self_seconds: Dict[int, float] = {}  # id(span dict) -> running self time

    def flush(span: Dict[str, Any], ancestors: List[Dict[str, Any]]) -> None:
        stack = ";".join([a["name"] for a in ancestors] + [str(span["name"])])
        micros = max(1, int(round(self_seconds[id(span)] * 1e6)))
        folded[stack] = folded.get(stack, 0) + micros

    for span in spans:
        depth = int(span.get("depth", 0))
        while len(path) > depth:
            done = path.pop()
            flush(done, path)
        if path:
            parent = path[-1]
            self_seconds[id(parent)] -= float(span["seconds"])
        self_seconds[id(span)] = float(span["seconds"])
        path.append(span)
    while path:
        done = path.pop()
        flush(done, path)
    return folded


def folded_stacks(record: RunRecord) -> str:
    """The record as flamegraph.pl folded-stack lines.

    Prefers the record's sampling-profiler counts; falls back to
    span-tree self-time weights for unprofiled records.  Lines are
    sorted by stack path, each ``"<f1>;<f2>;...;<leaf> <count>"``.
    """
    if record.profile is not None and record.profile.get("folded"):
        folded = {str(k): int(v) for k, v in record.profile["folded"].items()}
    else:
        folded = _folded_from_spans(record.spans)
    lines = [f"{stack} {count}" for stack, count in sorted(folded.items())]
    return "\n".join(lines) + "\n" if lines else ""
