"""``python -m repro.obs`` dispatches to the run-record CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
