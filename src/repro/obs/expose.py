"""Prometheus text-format exposition of the live metrics registry.

Three pieces make up the read-only telemetry surface:

* :func:`render_prometheus` — serialize a :class:`~repro.obs.metrics.
  MetricsRegistry` snapshot as Prometheus text format 0.0.4: counters
  as ``<name>_total``, gauges verbatim, histograms as cumulative
  le-sorted ``_bucket`` series plus ``_sum``/``_count``.
* :class:`RollingQuantiles` — sliding-window latency quantiles per
  key (service op), exposed as gauges next to the cumulative
  histograms so operators see *recent* latency, not lifetime.
* :class:`TelemetryServer` — a tiny threaded HTTP server answering
  ``GET /metrics`` (text format) and ``GET /healthz`` (JSON), bound
  behind ``repro serve --metrics-port``.

Everything here *reads* instruments; nothing mutates engine state, so
scraping mid-batch is race-free by construction (instrument updates
are plain int/float increments under the GIL; the registry snapshot
copies the instrument dict under the registry lock).
"""

from __future__ import annotations

import json
import math
import re
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from .metrics import (
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    percentile_of,
)

__all__ = [
    "RollingQuantiles",
    "TelemetryServer",
    "metric_name",
    "render_prometheus",
]

#: characters legal in a Prometheus metric name body
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, namespace: str = "repro") -> str:
    """Map a dotted instrument name onto the Prometheus name grammar.

    ``service.latency.fill`` → ``repro_service_latency_fill``; any
    character outside ``[a-zA-Z0-9_:]`` becomes ``_``, and a leading
    digit is guarded by the namespace prefix.
    """
    body = _NAME_OK.sub("_", name.replace(".", "_"))
    return f"{namespace}_{body}" if namespace else body


def _fmt(v: float) -> str:
    """Render a sample value: integers without the trailing ``.0``."""
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v)


class RollingQuantiles:
    """Sliding-window quantiles per key, for "recent latency" gauges.

    Cumulative histograms answer "since process start"; operators of a
    long-running service want "over the last N requests".  Each key
    (service op) keeps a bounded deque of observations; ``snapshot``
    computes quantiles over the current window.  Thread-safe.
    """

    def __init__(
        self,
        window: int = 256,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self.quantiles: Tuple[float, ...] = tuple(quantiles)
        self._windows: Dict[str, Deque[float]] = {}
        self._lock = threading.Lock()

    def observe(self, key: str, value: float) -> None:
        with self._lock:
            win = self._windows.get(key)
            if win is None:
                win = deque(maxlen=self.window)
                self._windows[key] = win
            win.append(float(value))

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{key: {"p50": ..., ..., "window": n}}`` per observed key."""
        with self._lock:
            frozen = {k: list(v) for k, v in self._windows.items()}
        out: Dict[str, Dict[str, float]] = {}
        for key in sorted(frozen):
            samples = frozen[key]
            stats: Dict[str, float] = {"window": float(len(samples))}
            for q in self.quantiles:
                stats[f"p{q:g}"] = percentile_of(samples, q)
            out[key] = stats
        return out


def render_prometheus(
    registry: Optional[MetricsRegistry] = None,
    *,
    rolling: Optional[RollingQuantiles] = None,
    namespace: str = "repro",
) -> str:
    """Serialize a registry (active one if omitted) as text format 0.0.4.

    * counters → ``<ns>_<name>_total`` with ``# TYPE ... counter``
    * gauges → ``<ns>_<name>`` with ``# TYPE ... gauge``
    * histograms → cumulative ``_bucket{le="..."}`` series ending at
      ``le="+Inf"``, plus ``_sum`` and ``_count``
    * ``rolling`` windows → ``<ns>_<key>_window{quantile="0.5"}``
      gauges plus a ``..._window_size`` gauge

    Output ends with a newline, as the format requires.
    """
    if registry is None:
        registry = active_registry()
    lines: List[str] = []
    instruments = registry.instruments()
    for name in sorted(instruments):
        inst = instruments[name]
        if isinstance(inst, Counter):
            pname = metric_name(name, namespace) + "_total"
            lines.append(f"# HELP {pname} counter {name}")
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_fmt(inst.value)}")
        elif isinstance(inst, Gauge):
            pname = metric_name(name, namespace)
            lines.append(f"# HELP {pname} gauge {name}")
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(inst.value)}")
        elif isinstance(inst, Histogram):
            pname = metric_name(name, namespace)
            lines.append(f"# HELP {pname} histogram {name}")
            lines.append(f"# TYPE {pname} histogram")
            for le, cum in inst.cumulative_buckets():
                lines.append(f'{pname}_bucket{{le="{_fmt(le)}"}} {cum}')
            lines.append(f"{pname}_sum {_fmt(inst.total)}")
            lines.append(f"{pname}_count {inst.count}")
    if rolling is not None:
        for key, stats in rolling.snapshot().items():
            pname = metric_name(key, namespace) + "_window"
            lines.append(f"# HELP {pname} rolling-window quantiles for {key}")
            lines.append(f"# TYPE {pname} gauge")
            for stat_name, value in stats.items():
                if stat_name == "window":
                    continue
                q = float(stat_name[1:]) / 100.0
                lines.append(f'{pname}{{quantile="{q:g}"}} {_fmt(value)}')
            lines.append(f"{pname}_size {int(stats['window'])}")
    return "\n".join(lines) + "\n" if lines else ""


class _Handler(BaseHTTPRequestHandler):
    """GET-only handler for /metrics and /healthz."""

    # set by TelemetryServer on the subclass
    render_metrics: Callable[[], str]
    health: Callable[[], Dict[str, Any]]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.render_metrics().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/healthz":
            body = json.dumps(self.health()).encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_response(404)
            self.send_header("Content-Length", "0")
            self.end_headers()

    def log_message(self, format: str, *args: Any) -> None:
        """Silence the default stderr access log (events own diagnostics)."""


class TelemetryServer:
    """Threaded HTTP server exposing /metrics and /healthz.

    Scrape-only: no mutating endpoints exist.  ``port=0`` binds an
    ephemeral port (tests); read :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        render_metrics: Callable[[], str],
        health: Optional[Callable[[], Dict[str, Any]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {
                "render_metrics": staticmethod(render_metrics),
                "health": staticmethod(health or (lambda: {"status": "ok"})),
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def address(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "TelemetryServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
