"""``repro.obs`` — unified tracing, metrics and run records.

The measurement substrate of the repo.  The contest objective the
paper optimizes (Eqn. (3), Table 2) scores run time and peak memory
alongside overlay and density variation; this package is the one
implementation of those clocks:

* **spans** (:mod:`repro.obs.spans`) — hierarchical timed regions with
  exception tagging and mid-span counters; the engine's five stages,
  every baseline and the ECO flow report their ``seconds`` through
  spans,
* **metrics** (:mod:`repro.obs.metrics`) — process-wide counters,
  gauges and histograms (LP/dual-MCF alternation counts, candidates
  per Alg. 1 round, windows touched),
* **run records** (:mod:`repro.obs.record`) — one JSONL event stream
  plus summary (git sha, stage seconds, peak RSS, metric snapshots)
  per observed run, written by ``--trace-out`` and read back by
  ``python -m repro.obs summarize`` / ``repro trace``,
* **memory** (:mod:`repro.obs.rss`) — the only sanctioned home of
  RSS sampling and tracemalloc (rule REP007 forbids raw
  ``time.perf_counter()``/``tracemalloc`` elsewhere),
* **live telemetry** — Prometheus exposition + rolling quantiles
  (:mod:`repro.obs.expose`), structured JSON events correlated to
  spans (:mod:`repro.obs.events`, the sanctioned diagnostics channel
  per rule REP014), and a thread-based sampling profiler with folded
  flamegraph export (:mod:`repro.obs.profile`).

See ``docs/OBSERVABILITY.md`` for the model and the JSONL schema.
"""

from . import events, expose, metrics, profile
from .events import emit
from .export import chrome_trace, chrome_trace_json, folded_stacks
from .expose import RollingQuantiles, TelemetryServer, render_prometheus
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    set_registry,
)
from .profile import ProfileCollector, SamplingProfiler, profiled
from .record import (
    Measurement,
    RecordError,
    RunRecord,
    RunRecorder,
    measure,
    read_record,
    record_run,
)
from .rss import PeakRssSampler, current_rss_bytes, traced_memory
from .spans import (
    Span,
    Tracer,
    active_tracer,
    adopt,
    annotate,
    count,
    current_offset,
    current_span,
    set_tracer,
    span,
)
from .summarize import diff_breaches, diff_records, format_metrics, format_record

__all__ = [
    "events",
    "expose",
    "metrics",
    "profile",
    "emit",
    "chrome_trace",
    "chrome_trace_json",
    "folded_stacks",
    "RollingQuantiles",
    "TelemetryServer",
    "render_prometheus",
    "ProfileCollector",
    "SamplingProfiler",
    "profiled",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "set_registry",
    "Measurement",
    "RecordError",
    "RunRecord",
    "RunRecorder",
    "measure",
    "read_record",
    "record_run",
    "PeakRssSampler",
    "current_rss_bytes",
    "traced_memory",
    "Span",
    "Tracer",
    "active_tracer",
    "adopt",
    "annotate",
    "count",
    "current_offset",
    "current_span",
    "set_tracer",
    "span",
    "diff_breaches",
    "diff_records",
    "format_metrics",
    "format_record",
]
