"""Run records: one JSONL event stream + summary per measured run.

A *run record* is the durable artifact of one observed run: what ran
(git sha, argv, user metadata), the span tree with per-stage wall
times and counters, a snapshot of every metric, and a summary line
with total seconds and peak RSS.  Records are written as JSONL — one
self-describing event per line — so they stream, concatenate, and
grep well:

    {"event": "meta",    "schema": 1, "git_sha": ..., "argv": [...]}
    {"event": "span",    "name": "engine.run", "depth": 0, "seconds": ...}
    {"event": "span",    "name": "analysis",   "depth": 1, "seconds": ...}
    ...
    {"event": "metrics", "metrics": {"sizing.lp_solves": {...}, ...}}
    {"event": "profile", "period_ms": 10.0, "samples": 412, "folded": {...}}
    {"event": "summary", "seconds": ..., "peak_rss_mb": ..., "status": "ok"}

(The ``profile`` event only appears when a sampling profiler ran —
see :mod:`repro.obs.profile`.)

:func:`record_run` wraps a region of code: it installs a fresh span
tracer and metrics registry (so the record describes exactly this
run), optionally starts the RSS sampler thread, and on exit emits the
record — to ``path`` when given, and always onto the returned
:class:`RunRecorder` for in-process consumption.  :func:`read_record`
parses a record back; ``python -m repro.obs`` renders and diffs them.

:func:`measure` is the lightweight sibling for benchmark harnesses
that only need wall time + peak memory of a region without a full
event stream (see :mod:`repro.bench.contest`).
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from .metrics import MetricsRegistry, set_registry
from .rss import PeakRssSampler, traced_memory
from .spans import Span, Tracer, set_tracer

__all__ = [
    "SCHEMA_VERSION",
    "RunRecord",
    "RunRecorder",
    "RecordError",
    "record_run",
    "read_record",
    "Measurement",
    "measure",
]

SCHEMA_VERSION = 1


class RecordError(ValueError):
    """A run-record file is malformed or uses an unknown schema."""


@dataclass
class RunRecord:
    """Parsed (or freshly captured) contents of one run record."""

    meta: Dict[str, Any] = field(default_factory=dict)
    #: flat pre-order span list; nesting encoded by each dict's "depth"
    spans: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)
    #: optional sampling-profiler payload ({"period_ms", "samples",
    #: "folded"}); absent on unprofiled runs — readers must tolerate None
    profile: Optional[Dict[str, Any]] = None

    @property
    def label(self) -> str:
        return str(self.meta.get("label", "run"))

    def stage_seconds(self, parent: Optional[str] = None) -> Dict[str, float]:
        """Seconds of the direct children of ``parent`` (roots if None).

        With ``parent`` given, returns the children of the first span
        of that name — e.g. ``stage_seconds("engine.run")`` recovers
        the engine's five-stage timing table.
        """
        if parent is None:
            return {
                s["name"]: float(s["seconds"])
                for s in self.spans
                if s.get("depth", 0) == 0
            }
        out: Dict[str, float] = {}
        parent_depth: Optional[int] = None
        for s in self.spans:
            depth = int(s.get("depth", 0))
            if parent_depth is None:
                if s["name"] == parent:
                    parent_depth = depth
                continue
            if depth <= parent_depth:
                break  # left the parent's subtree
            if depth == parent_depth + 1:
                out[s["name"]] = out.get(s["name"], 0.0) + float(s["seconds"])
        return out

    def to_events(self) -> List[Dict[str, Any]]:
        """The record as its JSONL event list."""
        events: List[Dict[str, Any]] = [
            {"event": "meta", "schema": SCHEMA_VERSION, **self.meta}
        ]
        for s in self.spans:
            events.append({"event": "span", **s})
        events.append({"event": "metrics", "metrics": self.metrics})
        if self.profile is not None:
            events.append({"event": "profile", **self.profile})
        events.append({"event": "summary", **self.summary})
        return events

    def write_jsonl(self, path: Union[str, Path]) -> None:
        lines = [json.dumps(e, sort_keys=True) for e in self.to_events()]
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _flatten(roots: List[Span]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for root in roots:
        for depth, sp in root.walk():
            out.append(sp.as_dict(depth))
    return out


class RunRecorder:
    """Handle yielded by :func:`record_run`.

    During the run it exposes the dedicated :attr:`tracer` and
    :attr:`registry`; after the ``with`` block exits, :attr:`record`
    holds the finished :class:`RunRecord` (also written to
    :attr:`path` when one was given).
    """

    def __init__(
        self,
        path: Optional[Path],
        tracer: Tracer,
        registry: MetricsRegistry,
    ):
        self.path = path
        self.tracer = tracer
        self.registry = registry
        self.record: Optional[RunRecord] = None


@contextmanager
def record_run(
    path: Optional[Union[str, Path]] = None,
    *,
    label: str = "run",
    meta: Optional[Dict[str, Any]] = None,
    sample_rss: bool = True,
) -> Iterator[RunRecorder]:
    """Record every span and metric emitted inside the block.

    Installs a fresh tracer and metrics registry for the duration (so
    concurrent or earlier runs do not leak into the record), samples
    peak RSS on a background thread unless ``sample_rss`` is false,
    and emits the record on exit — even when the block raises, in
    which case the summary is tagged with the exception type before
    the exception propagates.
    """
    tracer = Tracer()
    registry = MetricsRegistry()
    recorder = RunRecorder(Path(path) if path is not None else None, tracer, registry)
    restore_tracer = set_tracer(tracer)
    restore_registry = set_registry(registry)
    sampler = PeakRssSampler() if sample_rss else None
    start = time.perf_counter()
    status = "ok"
    error: Optional[str] = None
    if sampler is not None:
        sampler.__enter__()
    try:
        yield recorder
    except BaseException as exc:
        status = "error"
        error = type(exc).__name__
        raise
    finally:
        seconds = time.perf_counter() - start
        if sampler is not None:
            sampler.__exit__()
        restore_registry()
        restore_tracer()
        spans = _flatten(tracer.roots)
        summary: Dict[str, Any] = {
            "status": status,
            "seconds": seconds,
            "peak_rss_mb": sampler.peak_mb if sampler is not None else None,
            "num_spans": len(spans),
        }
        if error is not None:
            summary["error"] = error
        record = RunRecord(
            meta={
                "label": label,
                "git_sha": _git_sha(),
                "argv": list(sys.argv),
                "python": sys.version.split()[0],
                **(meta or {}),
            },
            spans=spans,
            metrics=registry.snapshot(),
            summary=summary,
            profile=getattr(tracer, "profile", None),
        )
        recorder.record = record
        if recorder.path is not None:
            record.write_jsonl(recorder.path)


def read_record(path: Union[str, Path]) -> RunRecord:
    """Parse a JSONL run record back into a :class:`RunRecord`."""
    record = RunRecord()
    saw_meta = saw_summary = False
    for lineno, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RecordError(f"{path}:{lineno}: not JSON: {exc}") from exc
        if not isinstance(event, dict) or "event" not in event:
            raise RecordError(f"{path}:{lineno}: missing 'event' field")
        kind = event.pop("event")
        if kind == "meta":
            schema = event.pop("schema", None)
            if schema != SCHEMA_VERSION:
                raise RecordError(
                    f"{path}:{lineno}: unsupported schema {schema!r} "
                    f"(expected {SCHEMA_VERSION})"
                )
            record.meta = event
            saw_meta = True
        elif kind == "span":
            if "name" not in event or "seconds" not in event:
                raise RecordError(f"{path}:{lineno}: span missing name/seconds")
            record.spans.append(event)
        elif kind == "metrics":
            record.metrics = event.get("metrics", {})
        elif kind == "profile":
            record.profile = event
        elif kind == "summary":
            record.summary = event
            saw_summary = True
        else:
            raise RecordError(f"{path}:{lineno}: unknown event {kind!r}")
    if not saw_meta or not saw_summary:
        raise RecordError(f"{path}: truncated record (missing meta or summary)")
    return record


@dataclass
class Measurement:
    """Wall time + peak memory of one :func:`measure` block."""

    seconds: float = 0.0
    peak_rss_mb: float = 0.0


@contextmanager
def measure(
    *, sample_rss: bool = True, precise_memory: bool = False
) -> Iterator[Measurement]:
    """Measure a region's wall time and peak memory, sans event stream.

    ``sample_rss`` polls the working set on a background thread
    (cheap, default); ``precise_memory`` switches to tracemalloc's
    exact Python-heap peak (~6x slower — do not combine with runtime
    comparisons).  The yielded :class:`Measurement` is filled in on
    exit.
    """
    result = Measurement()
    heap_mb: List[float] = []
    sampler = PeakRssSampler() if sample_rss and not precise_memory else None
    start = time.perf_counter()
    try:
        if precise_memory:
            with traced_memory(heap_mb):
                yield result
        elif sampler is not None:
            with sampler:
                yield result
        else:
            yield result
    finally:
        result.seconds = time.perf_counter() - start
        if precise_memory:
            result.peak_rss_mb = heap_mb[0] if heap_mb else 0.0
        elif sampler is not None:
            result.peak_rss_mb = sampler.peak_mb
