"""Layout and density-map visualisation (SVG and ASCII).

Debugging a fill engine is visual work: where did the candidates go,
which windows are starved, what does the overlay hot zone look like.
This module renders without any plotting dependency:

* :func:`layout_to_svg` — wires and fills per layer as an SVG document
  (wires solid, fills translucent with a dashed outline, layers in
  distinguishable colors, optional window grid overlay),
* :func:`density_to_svg` — a window density map as an SVG heat map
  with per-cell annotations,
* :func:`density_to_ascii` — the same as a terminal heat map (used by
  ``examples/quickstart.py``).

SVGs are plain strings; write them to a file and open in any browser.
"""

from __future__ import annotations

from typing import List, Optional, Sequence
from xml.sax.saxutils import escape

import numpy as np

from .geometry import Rect
from .layout import Layout, WindowGrid

__all__ = ["layout_to_svg", "density_to_svg", "density_to_ascii"]

#: Color-blind-safe layer palette (Okabe-Ito), cycled for tall stacks.
_LAYER_COLORS = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # purple
    "#E69F00",  # orange
    "#56B4E9",  # sky
)


def _layer_color(number: int) -> str:
    return _LAYER_COLORS[(number - 1) % len(_LAYER_COLORS)]


def _svg_rect(
    rect: Rect,
    die: Rect,
    scale: float,
    height: float,
    fill: str,
    opacity: float,
    extra: str = "",
) -> str:
    # SVG y grows downward; layout y grows upward.
    x = (rect.xl - die.xl) * scale
    y = height - (rect.yh - die.yl) * scale
    w = rect.width * scale
    h = rect.height * scale
    return (
        f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
        f'fill="{fill}" fill-opacity="{opacity}" {extra}/>'
    )


def layout_to_svg(
    layout: Layout,
    *,
    grid: Optional[WindowGrid] = None,
    layers: Optional[Sequence[int]] = None,
    width: int = 800,
    show_wires: bool = True,
    show_fills: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render a layout as an SVG document string.

    ``layers`` restricts the rendering (default: all); ``grid`` draws
    the window dissection on top.
    """
    die = layout.die
    scale = width / die.width
    height = die.height * scale
    selected = list(layers) if layers is not None else layout.layer_numbers
    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height:.0f}" viewBox="0 0 {width} {height:.0f}">',
        f'<rect width="{width}" height="{height:.0f}" fill="#ffffff"/>',
    ]
    if title:
        parts.append(
            f'<title>{escape(title)}</title>'
        )
    for number in selected:
        layer = layout.layer(number)
        color = _layer_color(number)
        if show_wires:
            parts.append(f'<g id="layer{number}-wires">')
            for wire in layer.wires:
                parts.append(
                    _svg_rect(wire, die, scale, height, color, 0.85)
                )
            parts.append("</g>")
        if show_fills:
            parts.append(f'<g id="layer{number}-fills">')
            for rect in layer.fills:
                parts.append(
                    _svg_rect(
                        rect,
                        die,
                        scale,
                        height,
                        color,
                        0.30,
                        extra=f'stroke="{color}" stroke-width="0.5" '
                        'stroke-dasharray="3,2" ',
                    )
                )
            parts.append("</g>")
    if grid is not None:
        parts.append('<g id="windows" stroke="#444444" stroke-width="0.8">')
        for i in range(1, grid.cols):
            x = (grid.die.xl + i * grid.window_width - die.xl) * scale
            parts.append(f'<line x1="{x:.2f}" y1="0" x2="{x:.2f}" y2="{height:.0f}"/>')
        for j in range(1, grid.rows):
            y = height - (grid.die.yl + j * grid.window_height - die.yl) * scale
            parts.append(f'<line x1="0" y1="{y:.2f}" x2="{width}" y2="{y:.2f}"/>')
        parts.append("</g>")
    parts.append("</svg>")
    return "\n".join(parts)


def _heat_color(value: float) -> str:
    """White -> blue -> red ramp for densities in [0, 1]."""
    v = min(1.0, max(0.0, value))
    if v < 0.5:
        t = v / 0.5
        r = int(255 - t * (255 - 0x00))
        g = int(255 - t * (255 - 0x72))
        b = int(255 - t * (255 - 0xB2))
    else:
        t = (v - 0.5) / 0.5
        r = int(0x00 + t * (0xD5 - 0x00))
        g = int(0x72 - t * 0x72 + t * 0x5E)
        b = int(0xB2 - t * (0xB2 - 0x00))
    return f"#{r:02x}{g:02x}{b:02x}"


def density_to_svg(
    density: np.ndarray,
    *,
    cell: int = 48,
    annotate: bool = True,
    title: Optional[str] = None,
) -> str:
    """Render a ``(cols, rows)`` density map as an SVG heat map."""
    d = np.asarray(density, dtype=float)
    if d.ndim != 2 or d.size == 0:
        raise ValueError("density map must be a non-empty 2-D array")
    cols, rows = d.shape
    width, height = cols * cell, rows * cell
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    ]
    if title:
        parts.append(f"<title>{escape(title)}</title>")
    for i in range(cols):
        for j in range(rows):
            x = i * cell
            y = (rows - 1 - j) * cell  # row 0 at the bottom
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell}" height="{cell}" '
                f'fill="{_heat_color(float(d[i, j]))}" stroke="#ffffff" '
                'stroke-width="1"/>'
            )
            if annotate:
                parts.append(
                    f'<text x="{x + cell / 2}" y="{y + cell / 2 + 3}" '
                    f'font-size="{cell // 4}" text-anchor="middle" '
                    f'fill="#222222">{d[i, j]:.2f}</text>'
                )
    parts.append("</svg>")
    return "\n".join(parts)


def density_to_ascii(density: np.ndarray, *, shades: str = " .:-=+*#%@") -> str:
    """Render a density map as terminal art (row 0 at the bottom)."""
    d = np.asarray(density, dtype=float)
    if d.ndim != 2 or d.size == 0:
        raise ValueError("density map must be a non-empty 2-D array")
    cols, rows = d.shape
    lines = []
    for j in reversed(range(rows)):
        cells = []
        for i in range(cols):
            level = min(len(shades) - 1, max(0, int(d[i, j] * len(shades))))
            cells.append(shades[level] * 2)
        lines.append("|" + "".join(cells) + "|")
    return "\n".join(lines)
