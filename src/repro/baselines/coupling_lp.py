"""Coupling-constrained fill baseline (refs. [11, 12]).

Chen, Gupta & Kahng's *performance-impact limited* fill (DAC'03 [11])
and Xiang et al.'s coupling-constrained formulation (ISPD'07 [12]) are
the prior art the paper's §1 credits with first handling coupling:
fill is inserted **per slot**, maximising density subject to a cap on
the total fill-to-wire coupling each window may incur.

Per window and layer the problem is the LP

    min  Σ_s coupling_s · x_s
    s.t. Σ_s area_s · x_s ≥ need_w          (density demand)
         Σ_s coupling_s · x_s ≤ C_w         (coupling budget)
         0 ≤ x_s ≤ 1,

where ``coupling_s`` is slot ``s``'s overlap with the adjacent layers'
wires.  With a single packing constraint the LP is a fractional
knapsack: sorting slots by coupling-per-area and filling greedily *is*
the exact optimum (the classical argument; the tests cross-check
against scipy's LP solver).  Slots are realised whole except the one
marginal slot, which is shrunk to its fractional share.

Compared against the paper's engine this baseline controls coupling
but, like all slot methods, plans no global density target — its
uniformity scores trail the geometric engine's, which is precisely the
gap the paper's contribution closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core.candidates import grid_candidates
from ..core.config import FillConfig
from ..density.analysis import compute_fill_regions, wire_density_map
from ..geometry import GridIndex, Rect
from ..layout import DrcRules, Layout, WindowGrid

__all__ = ["CouplingLpReport", "coupling_lp_fill", "solve_slot_lp"]


@dataclass
class CouplingLpReport:
    """Outcome of a coupling-constrained fill run."""

    num_fills: int
    total_coupling: int
    budget_limited_windows: int
    seconds: float


def solve_slot_lp(
    slots: Sequence[Tuple[int, int]],
    need: float,
    coupling_budget: float,
) -> List[float]:
    """Exact solution of the per-window slot LP.

    ``slots`` are ``(area, coupling)`` pairs; returns the fractional
    selection ``x_s`` in [0, 1].  Zero-coupling slots are taken first
    (they relax nothing); the rest are taken in increasing
    coupling-per-area order until the density demand is met or the
    coupling budget is exhausted — the fractional-knapsack optimum.
    """
    x = [0.0] * len(slots)
    remaining_need = max(0.0, need)
    remaining_budget = max(0.0, coupling_budget)
    order = sorted(
        range(len(slots)),
        key=lambda s: (slots[s][1] / max(1, slots[s][0]), -slots[s][0]),
    )
    for s in order:
        if remaining_need <= 0:
            break
        area, coupling = slots[s]
        if area <= 0:
            continue
        frac = min(1.0, remaining_need / area)
        if coupling > 0:
            if remaining_budget <= 0:
                break
            frac = min(frac, remaining_budget / coupling)
        x[s] = frac
        remaining_need -= frac * area
        remaining_budget -= frac * coupling
    return x


def _shrink_to_fraction(rect: Rect, fraction: float, rules: DrcRules) -> Optional[Rect]:
    """Shrink a slot to ~``fraction`` of its area (width-wise)."""
    if fraction >= 1.0:
        return rect
    min_w = rules.min_width_for_height(rect.height)
    new_w = max(min_w, int(rect.width * fraction))
    if new_w > rect.width:
        return None
    shrunk = Rect(rect.xl, rect.yl, rect.xl + new_w, rect.yh)
    return shrunk if rules.is_legal_fill(shrunk) else None


def coupling_lp_fill(
    layout: Layout,
    grid: WindowGrid,
    *,
    coupling_fraction: float = 0.10,
) -> CouplingLpReport:
    """Fill ``layout`` in place with the coupling-constrained baseline.

    ``coupling_fraction`` sets each window's coupling budget as a
    fraction of the window area (the per-net capacitance budgets of
    [11], aggregated to the window level).
    """
    with obs.span("baseline.coupling_lp") as sp:
        rules = layout.rules
        config = FillConfig()
        margin = config.effective_margin(rules.min_spacing)
        num_fills = 0
        total_coupling = 0
        budget_limited = 0

        wire_indexes: Dict[int, GridIndex[int]] = {}
        for layer in layout.layers:
            idx: GridIndex[int] = GridIndex(
                max(64, min(layout.die.width, layout.die.height) // 16)
            )
            for k, w in enumerate(layer.wires):
                idx.insert(w, k)
            wire_indexes[layer.number] = idx

        for layer in layout.layers:
            density = wire_density_map(layer, grid)
            target = float(density.max())
            regions = compute_fill_regions(layer, grid, rules, window_margin=margin)
            for i, j, window in grid:
                aw = grid.window_area(i, j)
                need = max(0.0, (target - float(density[i, j])) * aw)
                if need <= 0:
                    continue
                cands = grid_candidates(regions[(i, j)], rules, anchor=window)
                if not cands:
                    continue
                # Slot coupling: overlap with adjacent layers' wires.
                slots: List[Tuple[int, int]] = []
                for cand in cands:
                    coupling = 0
                    for adj in (layer.number - 1, layer.number + 1):
                        if adj in wire_indexes:
                            for rect, _ in wire_indexes[adj].query_overlapping(cand):
                                coupling += cand.intersection_area(rect)
                    slots.append((cand.area, coupling))
                budget = coupling_fraction * aw
                x = solve_slot_lp(slots, need, budget)
                spent = sum(frac * c for frac, (_, c) in zip(x, slots))
                delivered = sum(frac * a for frac, (a, _) in zip(x, slots))
                if delivered < need - 1e-6 and spent >= budget - 1e-6:
                    budget_limited += 1
                for cand, frac, (area, coupling) in zip(cands, x, slots):
                    if frac <= 0:
                        continue
                    fill = _shrink_to_fraction(cand, frac, rules)
                    if fill is None:
                        continue
                    layer.add_fill(fill)
                    num_fills += 1
                    total_coupling += int(frac * coupling)
        sp.count("fills", num_fills)
        sp.count("budget_limited_windows", budget_limited)
    return CouplingLpReport(
        num_fills=num_fills,
        total_coupling=total_coupling,
        budget_limited_windows=budget_limited,
        seconds=sp.seconds,
    )
