"""Greedy max-fill baseline.

A rule-based filler that stuffs every window with the largest legal
fill cells its free space admits, with no density planning and no
overlay awareness.  This is the "fill everything" strategy common in
quick production flows: few, large fills (excellent file-size score,
like the contest's 1st team) but the density map simply mirrors the
free-space map, so uniformity suffers — the signature visible in the
Table 3 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import obs
from ..core.candidates import grid_candidates
from ..core.config import FillConfig
from ..density.analysis import compute_fill_regions
from ..layout import Layout, WindowGrid

__all__ = ["GreedyReport", "greedy_fill"]


@dataclass
class GreedyReport:
    """Outcome of a greedy max-fill run."""

    num_fills: int
    seconds: float


def greedy_fill(
    layout: Layout,
    grid: WindowGrid,
    *,
    density_cap: Optional[float] = None,
) -> GreedyReport:
    """Fill ``layout`` in place, maximising density everywhere.

    ``density_cap`` optionally stops filling a window once its total
    density reaches the cap (some foundry decks cap metal density);
    ``None`` fills all free space.
    """
    with obs.span("baseline.greedy") as sp:
        rules = layout.rules
        config = FillConfig()
        margin = config.effective_margin(rules.min_spacing)
        num_fills = 0
        for layer in layout.layers:
            regions = compute_fill_regions(
                layer, grid, rules, window_margin=margin
            )
            for i, j, window in grid:
                cands = grid_candidates(regions[(i, j)], rules)
                if density_cap is None:
                    chosen = cands
                else:
                    aw = grid.window_area(i, j)
                    budget = density_cap * aw - layer.wire_area_in(window)
                    chosen = []
                    acc = 0
                    for cand in sorted(cands, key=lambda c: -c.area):
                        if acc >= budget:
                            break
                        chosen.append(cand)
                        acc += cand.area
                layer.add_fills(chosen)
                num_fills += len(chosen)
        sp.count("fills", num_fills)
    return GreedyReport(num_fills=num_fills, seconds=sp.seconds)
