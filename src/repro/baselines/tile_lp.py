"""Classic tile-based LP fill (paper §1, refs. [4–6]).

The traditional formulation the paper positions itself against: per
layer, a linear program assigns a *fill area* to every ``r x r`` tile so
that the resulting window densities are as uniform as possible, then a
realisation step turns tile budgets into many small fill rectangles.

LP (the min–max-range uniformity objective of Kahng et al. [4]):

    minimise   U - M
    subject to M <= d(i,j) <= U          for every window (i, j)
               0 <= a_t <= free_t        for every tile t
               d(i,j) = (wire(i,j) + Σ_{t in (i,j)} a_t) / aw

Solved with scipy HiGHS.  This baseline exhibits the published
signature of tile-based methods: excellent density scores, but an
order of magnitude more (and smaller) fills than the geometric
approach — hence a poor file-size score.  It stands in for the contest
2nd/3rd teams in the Table 3 reproduction (see DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import coo_matrix

from .. import obs
from ..layout import Layout, WindowGrid
from .tiles import TileGrid, build_tile_grid, realize_tile_fill

__all__ = ["TileLpReport", "tile_lp_fill"]


@dataclass
class TileLpReport:
    """Outcome of a tile-LP fill run."""

    num_fills: int
    num_tiles: int
    lp_status: Dict[int, str]
    seconds: float


def _solve_layer_lp(
    tile_grid: TileGrid, grid: WindowGrid
) -> Tuple[np.ndarray, str]:
    """LP over one layer's tiles; returns per-tile areas and a status."""
    tiles = tile_grid.tiles
    n_tiles = len(tiles)
    windows = [(i, j) for i in range(grid.cols) for j in range(grid.rows)]
    w_index = {w: k for k, w in enumerate(windows)}
    n_win = len(windows)
    # Variables: a_0..a_{T-1}, then M (index T), U (index T+1).
    n_vars = n_tiles + 2
    c = np.zeros(n_vars)
    c[n_tiles] = -1.0  # maximise M
    c[n_tiles + 1] = 1.0  # minimise U

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    rhs: List[float] = []
    row = 0
    wire_area = np.zeros(n_win)
    win_area = np.zeros(n_win)
    for k, w in enumerate(windows):
        win_area[k] = grid.window_area(*w)
    for t_idx, tile in enumerate(tiles):
        wire_area[w_index[tile.window]] += tile.wire_area
    # M - d(i,j) <= 0  and  d(i,j) - U <= 0.
    tiles_by_window: Dict[Tuple[int, int], List[int]] = {}
    for t_idx, tile in enumerate(tiles):
        tiles_by_window.setdefault(tile.window, []).append(t_idx)
    for w, k in w_index.items():
        aw = win_area[k]
        base = wire_area[k] / aw
        members = tiles_by_window.get(w, [])
        # M <= base + sum(a)/aw   ->   M - sum(a)/aw <= base
        rows.append(row), cols.append(n_tiles), vals.append(1.0)
        for t_idx in members:
            rows.append(row), cols.append(t_idx), vals.append(-1.0 / aw)
        rhs.append(base)
        row += 1
        # base + sum(a)/aw <= U   ->   sum(a)/aw - U <= -base ... flip:
        rows.append(row), cols.append(n_tiles + 1), vals.append(-1.0)
        for t_idx in members:
            rows.append(row), cols.append(t_idx), vals.append(1.0 / aw)
        rhs.append(-base)
        row += 1
    a_ub = coo_matrix((vals, (rows, cols)), shape=(row, n_vars)).tocsr()
    b_ub = np.asarray(rhs)
    bounds = [(0.0, float(t.free_area)) for t in tiles]
    bounds.append((0.0, 1.0))  # M
    bounds.append((0.0, 1.0))  # U
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        return np.zeros(n_tiles), f"failed: {result.message}"
    return np.maximum(0.0, result.x[:n_tiles]), "optimal"


def _spread_within_windows(
    tile_grid: TileGrid, areas: np.ndarray
) -> np.ndarray:
    """Redistribute each window's budget across its tiles.

    The LP objective only constrains *window* densities, so its vertex
    solutions concentrate a window's budget in few tiles.  Classic tile
    fillers spread the budget per tile for intra-window uniformity
    (refs. [4, 5]); this pass reassigns each window's total budget
    proportionally to tile free area, capped at each tile's capacity.
    """
    out = np.zeros_like(areas)
    by_window: Dict[Tuple[int, int], List[int]] = {}
    for t_idx, tile in enumerate(tile_grid.tiles):
        by_window.setdefault(tile.window, []).append(t_idx)
    for members in by_window.values():
        budget = float(areas[members].sum())
        if budget <= 0:
            continue
        free = np.array(
            [tile_grid.tiles[t].free_area for t in members], dtype=float
        )
        remaining = budget
        open_tiles = list(range(len(members)))
        # Water-fill: proportional shares, re-spreading overflow from
        # capacity-limited tiles.
        for _ in range(len(members)):
            total_free = sum(free[k] for k in open_tiles)
            if total_free <= 0 or remaining <= 1e-9:
                break
            overflow = 0.0
            next_open = []
            for k in open_tiles:
                share = remaining * free[k] / total_free
                cap = free[k] - out[members[k]]
                if share >= cap:
                    overflow += share - cap
                    out[members[k]] = free[k]
                else:
                    out[members[k]] += share
                    next_open.append(k)
            remaining = overflow
            open_tiles = next_open
            if not open_tiles:
                break
    return out


def tile_lp_fill(
    layout: Layout,
    grid: WindowGrid,
    r: int = 4,
) -> TileLpReport:
    """Fill ``layout`` in place with the tile-based LP baseline."""
    with obs.span("baseline.tile_lp") as sp:
        num_fills = 0
        num_tiles = 0
        status: Dict[int, str] = {}
        for layer in layout.layers:
            tile_grid = build_tile_grid(layer, grid, layout.rules, r=r)
            num_tiles += len(tile_grid.tiles)
            areas, lp_status = _solve_layer_lp(tile_grid, grid)
            status[layer.number] = lp_status
            areas = _spread_within_windows(tile_grid, areas)
            for tile, budget in zip(tile_grid.tiles, areas):
                fills = realize_tile_fill(tile, float(budget), layout.rules)
                layer.add_fills(fills)
                num_fills += len(fills)
        sp.count("fills", num_fills)
        sp.count("tiles", num_tiles)
    return TileLpReport(
        num_fills=num_fills,
        num_tiles=num_tiles,
        lp_status=status,
        seconds=sp.seconds,
    )
