"""Tile-based fill substrate shared by the baseline fillers.

Traditional flows (paper §1, refs. [4–6]) dissect each window into
``r x r`` tiles (Fig. 1) and reason about a scalar fill area per tile.
This module provides that substrate: per-tile free-space accounting and
the *realisation* step that turns a per-tile area budget into concrete
DRC-legal fill rectangles.

The realisation deliberately mirrors what tile-based tools do — many
small per-tile rectangles — because the resulting fill-count blow-up
(and hence file size) is exactly the drawback the paper's geometric
approach removes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..density.analysis import compute_fill_regions
from ..geometry import Rect, rect_set_intersect
from ..layout import DrcRules, Layer, WindowGrid

__all__ = ["Tile", "TileGrid", "build_tile_grid", "realize_tile_fill"]


@dataclass
class Tile:
    """One tile of the fixed dissection: its box, free space, wire area."""

    window: Tuple[int, int]
    rect: Rect
    free: List[Rect]
    wire_area: int

    @property
    def free_area(self) -> int:
        return sum(r.area for r in self.free)

    @property
    def area(self) -> int:
        return self.rect.area


@dataclass
class TileGrid:
    """All tiles of one layer, plus lookup by window."""

    layer_number: int
    tiles_per_window: int  # r (window edge is divided into r tiles)
    tiles: List[Tile]

    def window_tiles(self, i: int, j: int) -> List[Tile]:
        return [t for t in self.tiles if t.window == (i, j)]


def build_tile_grid(
    layer: Layer,
    grid: WindowGrid,
    rules: DrcRules,
    r: int = 4,
) -> TileGrid:
    """Dissect every window of a layer into ``r x r`` tiles (Fig. 1).

    Free space per tile is the window's fill region clipped to the
    tile, so tile budgets can always be realised legally.
    """
    if r < 1:
        raise ValueError("tiles-per-window must be at least 1")
    regions = compute_fill_regions(layer, grid, rules)
    margin = -(-rules.min_spacing // 2)
    tiles: List[Tile] = []
    for i, j, window in grid:
        region = regions[(i, j)]
        for tile_rect in grid.tiles(i, j, r):
            # Inset each tile by half the spacing rule so fills realised
            # independently in adjacent tiles stay legal across tile
            # (and window) boundaries.
            inner = tile_rect.shrunk(margin)
            free = (
                rect_set_intersect(region, [inner]) if inner is not None else []
            )
            wire_area = layer.wire_area_in(tile_rect)
            tiles.append(Tile((i, j), tile_rect, free, wire_area))
    return TileGrid(layer.number, r, tiles)


def realize_tile_fill(
    tile: Tile,
    target_area: float,
    rules: DrcRules,
) -> List[Rect]:
    """Place fills inside one tile totalling about ``target_area``.

    Free rectangles are consumed largest-first; inside each, fills are
    laid out as a grid of small cells (at most a quarter of the tile
    edge) at minimum spacing — the small-feature style of tile-based
    fillers.  Stops once the target is met.
    """
    if target_area <= 0:
        return []
    cell_cap = max(rules.min_width, tile.rect.min_side // 4)
    out: List[Rect] = []
    placed = 0
    sm = rules.min_spacing
    for free in sorted(tile.free, key=lambda r: -r.area):
        if placed >= target_area:
            break
        if free.width < rules.min_width or free.height < rules.min_width:
            continue
        cell_w = min(cell_cap, free.width, rules.max_fill_width)
        cell_h = min(cell_cap, free.height, rules.max_fill_height)
        if cell_w * cell_h < rules.min_area:
            # Grow the cell up to the free rect until the area rule holds.
            cell_w = min(free.width, rules.max_fill_width)
            cell_h = min(free.height, rules.max_fill_height)
            if cell_w * cell_h < rules.min_area:
                continue
        y = free.yl
        while y + cell_h <= free.yh and placed < target_area:
            x = free.xl
            while x + cell_w <= free.xh and placed < target_area:
                fill = Rect(x, y, x + cell_w, y + cell_h)
                if rules.is_legal_fill(fill):
                    out.append(fill)
                    placed += fill.area
                x += cell_w + sm
            y += cell_h + sm
    return out
