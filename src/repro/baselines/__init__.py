"""Baseline fillers from the paper's related work.

* tile-based LP fill (refs. [4-6]) — the classic fixed-dissection LP,
* Monte-Carlo iterated fill (refs. [8, 9]),
* coupling-constrained slot fill (refs. [11, 12]),
* greedy max-fill — the rule-based production quickie.

The first three reproduce published algorithm families; greedy, tile-LP
and Monte-Carlo stand in for the ICCAD 2014 contest top teams in the
Table 3 reproduction, each matching a team's score signature (see
DESIGN.md §3).
"""

from .coupling_lp import CouplingLpReport, coupling_lp_fill, solve_slot_lp
from .greedy import GreedyReport, greedy_fill
from .monte_carlo import MonteCarloReport, monte_carlo_fill
from .tile_lp import TileLpReport, tile_lp_fill
from .tiles import Tile, TileGrid, build_tile_grid, realize_tile_fill

__all__ = [
    "CouplingLpReport",
    "coupling_lp_fill",
    "solve_slot_lp",
    "GreedyReport",
    "greedy_fill",
    "MonteCarloReport",
    "monte_carlo_fill",
    "TileLpReport",
    "tile_lp_fill",
    "Tile",
    "TileGrid",
    "build_tile_grid",
    "realize_tile_fill",
]
