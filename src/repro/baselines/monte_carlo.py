"""Monte-Carlo iterated fill baseline (paper §1, refs. [8, 9]).

Chen, Kahng, Robins & Zelikovsky's Monte-Carlo layout density control:
repeatedly pick the window with the largest density deficit and drop a
randomly positioned, randomly sized fill into its free space, until
every window reaches the target or runs out of room.

The paper cites this family as "still lacking in either performance or
speed"; both weaknesses are visible here — fill counts land between
the tile-LP and geometric approaches, and the one-fill-per-iteration
loop is slow.  It stands in for the contest's remaining top team in the
Table 3 reproduction (DESIGN.md §3).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..density.analysis import compute_fill_regions, wire_density_map
from ..geometry import Rect
from ..layout import DrcRules, Layout, WindowGrid

__all__ = ["MonteCarloReport", "monte_carlo_fill"]


@dataclass
class MonteCarloReport:
    """Outcome of a Monte-Carlo fill run."""

    num_fills: int
    iterations: int
    seconds: float


def _random_fill_in(
    region: List[Rect], rules: DrcRules, rng: random.Random
) -> Optional[Tuple[int, Rect]]:
    """Sample a legal fill in the region; returns (region index, rect).

    Chooses a free rectangle weighted by area, then a uniformly random
    legal size and position inside it.  ``None`` when no free rectangle
    can host a legal fill.
    """
    hosts = [
        (k, r)
        for k, r in enumerate(region)
        if r.width >= rules.min_width and r.height >= rules.min_width
        and r.area >= rules.min_area
    ]
    if not hosts:
        return None
    weights = [r.area for _, r in hosts]
    k, host = rng.choices(hosts, weights=weights, k=1)[0]
    max_w = min(rules.max_fill_width, host.width)
    max_h = min(rules.max_fill_height, host.height)
    for _ in range(8):  # a few attempts to satisfy the area rule
        w = rng.randint(rules.min_width, max_w)
        h = rng.randint(rules.min_width, max_h)
        if w * h < rules.min_area:
            continue
        x = rng.randint(host.xl, host.xh - w)
        y = rng.randint(host.yl, host.yh - h)
        return k, Rect(x, y, x + w, y + h)
    # Fall back to the largest legal fill in this host.
    w, h = max_w, max_h
    if w * h < rules.min_area:
        return None
    return k, Rect(host.xl, host.yl, host.xl + w, host.yl + h)


def monte_carlo_fill(
    layout: Layout,
    grid: WindowGrid,
    *,
    seed: int = 2014,
    max_iterations: Optional[int] = None,
    target_density: Optional[float] = None,
) -> MonteCarloReport:
    """Fill ``layout`` in place by Monte-Carlo iterated filling.

    ``target_density`` defaults to each layer's largest window wire
    density (the paper's Case I target).  The free-space bookkeeping
    carves every inserted fill (bloated by the spacing rule) out of the
    window's region, so the output is DRC-clean by construction.
    """
    with obs.span("baseline.monte_carlo") as sp:
        rng = random.Random(seed)
        rules = layout.rules
        margin = -(-rules.min_spacing // 2)
        num_fills = 0
        iterations = 0
        if max_iterations is None:
            max_iterations = 40 * grid.num_windows * layout.num_layers

        for layer in layout.layers:
            wire_density = wire_density_map(layer, grid)
            target = (
                float(wire_density.max())
                if target_density is None
                else target_density
            )
            regions = compute_fill_regions(layer, grid, rules, window_margin=margin)
            # Deficit priority queue: (-deficit, window).
            deficit: Dict[Tuple[int, int], float] = {}
            heap: List[Tuple[float, Tuple[int, int]]] = []
            for i, j, _ in grid:
                d = (target - float(wire_density[i, j])) * grid.window_area(i, j)
                deficit[(i, j)] = d
                if d > 0:
                    heapq.heappush(heap, (-d, (i, j)))
            exhausted = set()
            while heap and iterations < max_iterations:
                neg_d, key = heapq.heappop(heap)
                if -neg_d != deficit[key] or key in exhausted:
                    continue  # stale entry
                if deficit[key] <= 0:
                    continue
                iterations += 1
                sample = _random_fill_in(regions[key], rules, rng)
                if sample is None:
                    exhausted.add(key)
                    continue
                k, fill = sample
                layer.add_fill(fill)
                num_fills += 1
                deficit[key] -= fill.area
                # Carve the fill (bloated by spacing) out of the free space —
                # out of every free rectangle, since region pieces can abut
                # and the fill's spacing halo may reach a neighbouring piece.
                blocked = fill.expanded(rules.min_spacing)
                regions[key] = [
                    piece
                    for host in regions[key]
                    for piece in host.subtract(blocked)
                ]
                if deficit[key] > 0:
                    heapq.heappush(heap, (-deficit[key], key))
        sp.count("fills", num_fills)
        sp.count("iterations", iterations)
    return MonteCarloReport(
        num_fills=num_fills,
        iterations=iterations,
        seconds=sp.seconds,
    )
