"""Lithography-friendliness checks and repair for dummy fill.

The paper's stated future work (§5): "evaluation on lithography related
impacts and methodologies considering lithograph-friendliness during
dummy fill insertion."  This module implements the standard first-order
litho constraints used for fill in production decks:

* **forbidden pitches** — at sub-wavelength nodes, certain edge-to-edge
  pitches between parallel features print with poor process windows;
  decks express them as forbidden ranges the fill pitch must avoid,
* **minimum edge length** — very short edges (tiny fills) are
  printability risks; fills below the threshold are flagged,
* **repair** — offending fills are shrunk away from the forbidden pitch
  band (fills may only shrink, preserving all DRC guarantees of the
  sizing stage) or dropped when no legal shrink exists.

The checker/repair pass runs *after* the main engine, mirroring how the
paper positions litho-awareness as an add-on to the fill flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .geometry import GridIndex, Rect
from .layout import DrcRules, Layout

__all__ = [
    "LithoRules",
    "LithoViolation",
    "check_litho",
    "repair_litho",
]

PitchRange = Tuple[int, int]


@dataclass(frozen=True)
class LithoRules:
    """First-order lithography constraints for fill shapes.

    ``forbidden_pitches`` are closed ranges of the *gap* (edge-to-edge
    spacing) between laterally adjacent shapes; a gap inside any range
    is a violation.  ``min_edge`` flags fills with an edge shorter than
    the printable minimum.
    """

    forbidden_pitches: Tuple[PitchRange, ...] = ((45, 55),)
    min_edge: int = 0

    def __post_init__(self) -> None:
        for lo, hi in self.forbidden_pitches:
            if lo < 0 or hi < lo:
                raise ValueError(f"malformed forbidden pitch range ({lo},{hi})")

    def gap_is_forbidden(self, gap: int) -> bool:
        return any(lo <= gap <= hi for lo, hi in self.forbidden_pitches)

    def next_legal_gap(self, gap: int) -> int:
        """Smallest legal gap >= ``gap`` (walks out of forbidden bands)."""
        g = gap
        for _ in range(len(self.forbidden_pitches) + 1):
            for lo, hi in self.forbidden_pitches:
                if lo <= g <= hi:
                    g = hi + 1
                    break
            else:
                return g
        return g


@dataclass(frozen=True)
class LithoViolation:
    """One litho violation: a forbidden pitch pair or a short edge."""

    kind: str  # "forbidden_pitch" | "min_edge"
    layer: int
    shape: Rect
    other: Optional[Rect] = None
    measured: int = 0

    def __str__(self) -> str:
        if self.other is not None:
            return (
                f"{self.kind} on layer {self.layer}: {self.shape} vs "
                f"{self.other} (gap {self.measured})"
            )
        return f"{self.kind} on layer {self.layer}: {self.shape} (edge {self.measured})"


def _lateral_pairs(
    fills: Sequence[Rect], max_gap: int
) -> List[Tuple[int, int, int, str]]:
    """(i, j, gap, axis) for pairs facing each other within ``max_gap``.

    A pair is *lateral* when the shapes overlap in the orthogonal axis —
    the configuration where pitch-dependent printing effects apply.
    """
    if not fills:
        return []
    cell = max(64, max(max(r.width, r.height) for r in fills) + max_gap)
    index: GridIndex[int] = GridIndex(cell)
    for k, f in enumerate(fills):
        index.insert(f, k)
    out = []
    for i, f in enumerate(fills):
        for rect, j in index.query_within(f, max_gap):
            if j <= i:
                continue
            gx, gy = f.gap_x(rect), f.gap_y(rect)
            if gy == 0 and 0 < gx <= max_gap:
                out.append((i, j, gx, "x"))
            elif gx == 0 and 0 < gy <= max_gap:
                out.append((i, j, gy, "y"))
    return out


def check_litho(
    layout: Layout, rules: LithoRules
) -> List[LithoViolation]:
    """Scan every layer's fills for litho violations (fills only —
    signal wires are fixed geometry the fill tool must work around)."""
    violations: List[LithoViolation] = []
    max_forbidden = max(
        (hi for _, hi in rules.forbidden_pitches), default=0
    )
    for layer in layout.layers:
        fills = layer.fills
        for f in fills:
            if min(f.width, f.height) < rules.min_edge:
                violations.append(
                    LithoViolation(
                        "min_edge",
                        layer.number,
                        f,
                        measured=min(f.width, f.height),
                    )
                )
        for i, j, gap, _axis in _lateral_pairs(fills, max_forbidden):
            if rules.gap_is_forbidden(gap):
                violations.append(
                    LithoViolation(
                        "forbidden_pitch",
                        layer.number,
                        fills[i],
                        other=fills[j],
                        measured=gap,
                    )
                )
    return violations


def repair_litho(
    layout: Layout,
    rules: LithoRules,
    drc: Optional[DrcRules] = None,
) -> int:
    """Shrink (or drop) fills until no litho violation remains.

    For each forbidden-pitch pair the smaller fill's facing edge is
    pulled back to the next legal gap; if that would break the DRC
    minimum width/area, the fill is dropped instead.  Short-edge fills
    are dropped.  Returns the number of fills modified or dropped.

    Shrink-only repairs cannot create *new* DRC violations, and moving
    a gap strictly larger cannot create a new forbidden pitch smaller
    than the one repaired, so a single sweep per layer converges; the
    sweep is repeated defensively until a fixed point.
    """
    if drc is None:
        drc = layout.rules
    touched = 0
    for layer in layout.layers:
        for _ in range(8):  # fixed-point sweeps
            fills = layer.fills
            violations = [
                v
                for v in check_litho(layout, rules)
                if v.layer == layer.number
            ]
            if not violations:
                break
            keep = {id(f): f for f in fills}
            replacements: List[Rect] = []
            handled = set()
            for v in violations:
                if v.kind == "min_edge":
                    keep.pop(id(v.shape), None)
                    touched += 1
                    continue
                key = (id(v.shape), id(v.other))
                if key in handled:
                    continue
                handled.add(key)
                small, big = sorted(
                    (v.shape, v.other), key=lambda r: r.area
                )
                if id(small) not in keep:
                    continue
                repaired = _pull_back(small, big, rules, drc)
                keep.pop(id(small), None)
                touched += 1
                if repaired is not None:
                    replacements.append(repaired)
            layer.clear_fills()
            layer.add_fills(list(keep.values()) + replacements)
    return touched


def _pull_back(
    small: Rect, big: Rect, rules: LithoRules, drc: DrcRules
) -> Optional[Rect]:
    """Shrink ``small`` away from ``big`` to the next legal gap.

    Returns the repaired rectangle, or ``None`` when no legal shrink
    exists (caller drops the fill).
    """
    gx, gy = small.gap_x(big), small.gap_y(big)
    if gy == 0 and gx > 0:
        need = rules.next_legal_gap(gx) - gx
        if small.width - need < drc.min_width:
            return None
        if small.xh <= big.xl:  # small is left of big
            new = Rect(small.xl, small.yl, small.xh - need, small.yh)
        else:
            new = Rect(small.xl + need, small.yl, small.xh, small.yh)
    elif gx == 0 and gy > 0:
        need = rules.next_legal_gap(gy) - gy
        if small.height - need < drc.min_width:
            return None
        if small.yh <= big.yl:  # small is below big
            new = Rect(small.xl, small.yl, small.xh, small.yh - need)
        else:
            new = Rect(small.xl, small.yl + need, small.xh, small.yh)
    else:
        return None
    if new.area < drc.min_area:
        return None
    return new
