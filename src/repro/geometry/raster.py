"""Coordinate-compressed occupancy rasters with exact box sums.

The array core under :mod:`repro.density.raster`: a set of integer
rectangles is rasterized **once** onto the non-uniform grid induced by
its own edge coordinates (plus any caller-supplied cut lines, e.g.
window boundaries).  On that grid every input rectangle is a union of
whole cells, so the raster is *exact* — not an approximation at some
fixed resolution — while every downstream per-window quantity becomes
an array operation:

* multiplicity per cell (``counts``) via a 2-D difference array and two
  cumulative sums,
* union/covered area via the boolean occupancy (``counts > 0``) times
  the cell areas,
* per-window aggregation via 2-D prefix sums (integral images) sampled
  at the window cut lines,
* overlay between two rect sets via elementwise AND of occupancies on a
  shared grid,
* arbitrary (edge-unaligned) box queries via the core + strips +
  corners decomposition of the integral image, still exact because the
  count is constant inside each cell,
* canonical free-region recovery via maximal-run extraction and
  vertical merging, matching the scanline oracle's output rect list.

Everything stays int64; no floating point enters until a caller divides
by window areas, which keeps the raster path bit-compatible with the
rect-set oracle in :mod:`repro.geometry.boolean`.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

import numpy as np

from .rect import Rect

__all__ = ["IntArray", "BoolArray", "Raster", "merge_mask_runs"]

IntArray = np.ndarray[Any, np.dtype[np.int64]]
BoolArray = np.ndarray[Any, np.dtype[np.bool_]]

_I64 = np.int64


def _as_edges(values: Sequence[int]) -> IntArray:
    """Sorted distinct int64 edge coordinates."""
    return np.unique(np.asarray(list(values), dtype=_I64))


def _span(lo: IntArray, hi: IntArray, extra: Sequence[int]) -> Tuple[int, int]:
    """Coordinate span of a raster axis.

    With ``extra`` cut lines the span is *their* extent — shapes are
    clipped to the frame the caller laid out; without, it is the
    shapes' own extent.
    """
    if len(extra):
        return min(extra), max(extra)
    if len(lo):
        return int(np.asarray(lo).min()), int(np.asarray(hi).max())
    return 0, 0


class Raster:
    """Multiplicity raster of a rectangle set on a compressed grid.

    ``xs``/``ys`` are the sorted distinct cut coordinates (cell
    boundaries); cell ``(i, j)`` spans ``[xs[i], xs[i+1]) x
    [ys[j], ys[j+1])`` and ``counts[i, j]`` is the number of input
    rectangles covering it.  Rectangles are clipped to the edge span;
    degenerate rectangles contribute nothing.
    """

    __slots__ = ("xs", "ys", "counts")

    def __init__(self, xs: IntArray, ys: IntArray, counts: IntArray):
        self.xs = xs
        self.ys = ys
        self.counts = counts

    @classmethod
    def from_rects(
        cls,
        rects: Sequence[Rect],
        extra_x: Sequence[int] = (),
        extra_y: Sequence[int] = (),
    ) -> "Raster":
        """Rasterize ``rects`` onto their own coordinate grid.

        ``extra_x``/``extra_y`` add cut lines (e.g. window boundaries)
        so later window aggregation lands exactly on cell boundaries.
        """
        n = len(rects)
        x0: IntArray = np.empty(n, dtype=_I64)
        y0: IntArray = np.empty(n, dtype=_I64)
        x1: IntArray = np.empty(n, dtype=_I64)
        y1: IntArray = np.empty(n, dtype=_I64)
        for k, r in enumerate(rects):
            x0[k] = r.xl
            y0[k] = r.yl
            x1[k] = r.xh
            y1[k] = r.yh
        return cls.from_arrays(x0, y0, x1, y1, extra_x, extra_y)

    @classmethod
    def from_arrays(
        cls,
        x0: IntArray,
        y0: IntArray,
        x1: IntArray,
        y1: IntArray,
        extra_x: Sequence[int] = (),
        extra_y: Sequence[int] = (),
    ) -> "Raster":
        """Rasterize rectangles given as coordinate arrays.

        Rectangle coordinates are *clipped to the span of the combined
        edge set* before becoming edges themselves, so callers can pass
        ``extra_*`` bounds (e.g. one window-column strip) and shapes
        hanging past them without inflating the grid: only the clipped
        part contributes edges and coverage.
        """
        lo_x, hi_x = _span(x0, x1, extra_x)
        lo_y, hi_y = _span(y0, y1, extra_y)
        cx0 = np.clip(np.asarray(x0, dtype=_I64), lo_x, hi_x)
        cx1 = np.clip(np.asarray(x1, dtype=_I64), lo_x, hi_x)
        cy0 = np.clip(np.asarray(y0, dtype=_I64), lo_y, hi_y)
        cy1 = np.clip(np.asarray(y1, dtype=_I64), lo_y, hi_y)
        keep = (cx1 > cx0) & (cy1 > cy0)
        cx0, cx1, cy0, cy1 = cx0[keep], cx1[keep], cy0[keep], cy1[keep]
        xs = np.unique(np.concatenate([cx0, cx1, np.asarray(list(extra_x), dtype=_I64)]))
        ys = np.unique(np.concatenate([cy0, cy1, np.asarray(list(extra_y), dtype=_I64)]))
        nx = max(0, len(xs) - 1)
        ny = max(0, len(ys) - 1)
        counts: IntArray = np.zeros((nx, ny), dtype=_I64)
        if nx and ny and len(cx0):
            i0 = np.searchsorted(xs, cx0)
            i1 = np.searchsorted(xs, cx1)
            j0 = np.searchsorted(ys, cy0)
            j1 = np.searchsorted(ys, cy1)
            diff: IntArray = np.zeros((nx + 1, ny + 1), dtype=_I64)
            np.add.at(diff, (i0, j0), 1)
            np.add.at(diff, (i1, j0), -1)
            np.add.at(diff, (i0, j1), -1)
            np.add.at(diff, (i1, j1), 1)
            counts = diff.cumsum(axis=0).cumsum(axis=1)[:nx, :ny]
        return cls(xs, ys, counts)

    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return int(self.counts.size)

    def cell_widths(self) -> IntArray:
        return np.diff(self.xs)

    def cell_heights(self) -> IntArray:
        return np.diff(self.ys)

    def cell_areas(self) -> IntArray:
        """Outer product of cell widths and heights, int64."""
        return np.outer(self.cell_widths(), self.cell_heights())

    def occupancy(self) -> BoolArray:
        """Boolean covered-per-cell (the union view of the rect set)."""
        return self.counts > 0

    # ------------------------------------------------------------------
    def cut_indices(self, cuts: Sequence[int], *, axis: str = "x") -> IntArray:
        """Edge indices of ``cuts``, which must be existing edges."""
        edges = self.xs if axis == "x" else self.ys
        wanted = np.asarray(list(cuts), dtype=_I64)
        if len(edges) == 0:
            raise ValueError("raster has no edges")
        idx = np.searchsorted(edges, wanted)
        safe = np.minimum(idx, len(edges) - 1)
        if bool((idx >= len(edges)).any()) or bool((edges[safe] != wanted).any()):
            raise ValueError(f"{axis} cuts must be existing raster edge coordinates")
        return idx.astype(_I64)

    def window_sums(
        self, values: IntArray, x_cuts: Sequence[int], y_cuts: Sequence[int]
    ) -> IntArray:
        """Block sums of a per-cell array between consecutive cut lines.

        ``x_cuts``/``y_cuts`` must be existing edge coordinates (pass
        the window boundaries to :meth:`from_rects` as ``extra_*``).
        Returns a ``(len(x_cuts)-1, len(y_cuts)-1)`` int64 array.
        """
        nwx = max(0, len(x_cuts) - 1)
        nwy = max(0, len(y_cuts) - 1)
        if self.num_cells == 0 or nwx == 0 or nwy == 0:
            return np.zeros((nwx, nwy), dtype=_I64)
        nx, ny = values.shape
        pref: IntArray = np.zeros((nx + 1, ny + 1), dtype=_I64)
        pref[1:, 1:] = values.cumsum(axis=0).cumsum(axis=1)
        xi = self.cut_indices(x_cuts, axis="x")
        yj = self.cut_indices(y_cuts, axis="y")
        block = pref[np.ix_(xi, yj)]
        result: IntArray = block[1:, 1:] - block[:-1, 1:] - block[1:, :-1] + block[:-1, :-1]
        return result

    def covered_window_areas(self, x_cuts: Sequence[int], y_cuts: Sequence[int]) -> IntArray:
        """Exact union area of the rect set inside each window."""
        if self.num_cells == 0:
            return np.zeros((max(0, len(x_cuts) - 1), max(0, len(y_cuts) - 1)), dtype=_I64)
        occ_area: IntArray = self.occupancy().astype(_I64) * self.cell_areas()
        return self.window_sums(occ_area, x_cuts, y_cuts)

    # ------------------------------------------------------------------
    def weighted_area_sums(
        self, qx0: IntArray, qy0: IntArray, qx1: IntArray, qy1: IntArray
    ) -> IntArray:
        """``Σ counts · overlap_area`` for a batch of arbitrary boxes.

        For each query box this equals ``Σ_r area(box ∩ r)`` over the
        input rectangles — intersection *with multiplicity*, the
        quantity the Eqn. (8) overlay term sums shape by shape.  Boxes
        need not be aligned to raster edges; they are clipped to the
        raster span.  The decomposition is core (whole cells, via the
        area-weighted integral image) + partial-width column strips +
        partial-height row strips + corner cells, all exact int64.
        """
        nq = len(qx0)
        zero: IntArray = np.zeros(nq, dtype=_I64)
        if self.num_cells == 0 or nq == 0:
            return zero
        xs, ys, c = self.xs, self.ys, self.counts
        nx, ny = c.shape
        x0 = np.clip(np.asarray(qx0, dtype=_I64), xs[0], xs[-1])
        y0 = np.clip(np.asarray(qy0, dtype=_I64), ys[0], ys[-1])
        x1 = np.clip(np.asarray(qx1, dtype=_I64), xs[0], xs[-1])
        y1 = np.clip(np.asarray(qy1, dtype=_I64), ys[0], ys[-1])
        valid = (x1 > x0) & (y1 > y0)
        if not bool(valid.any()):
            return zero
        dx = self.cell_widths()
        dy = self.cell_heights()
        area_pref: IntArray = np.zeros((nx + 1, ny + 1), dtype=_I64)
        area_pref[1:, 1:] = (c * np.outer(dx, dy)).cumsum(axis=0).cumsum(axis=1)
        # Per-column prefix along y of c*dy, and per-row prefix along x
        # of c*dx, for the partial strips.
        col_pref: IntArray = np.zeros((nx, ny + 1), dtype=_I64)
        col_pref[:, 1:] = (c * dy[np.newaxis, :]).cumsum(axis=1)
        row_pref: IntArray = np.zeros((nx + 1, ny), dtype=_I64)
        row_pref[1:, :] = (c * dx[:, np.newaxis]).cumsum(axis=0)
        # Cell indices of the columns/rows containing each query edge.
        i0 = np.clip(np.searchsorted(xs, x0, side="right") - 1, 0, nx - 1)
        i1 = np.clip(np.searchsorted(xs, x1, side="left") - 1, 0, nx - 1)
        j0 = np.clip(np.searchsorted(ys, y0, side="right") - 1, 0, ny - 1)
        j1 = np.clip(np.searchsorted(ys, y1, side="left") - 1, 0, ny - 1)
        left_part = xs[i0] < x0  # column i0 only partially covered
        right_part = xs[i1 + 1] > x1
        bot_part = ys[j0] < y0
        top_part = ys[j1 + 1] > y1
        # When the box lives in a single partial column, the left strip
        # already spans the whole x-overlap; ditto single partial row.
        right_act = right_part & ~((i1 == i0) & left_part)
        top_act = top_part & ~((j1 == j0) & bot_part)
        # Interior (whole-cell) ranges [ia, ib) x [ja, jb).
        ia = i0 + left_part
        ib = i1 + 1 - right_part
        ja = j0 + bot_part
        jb = j1 + 1 - top_part
        core_x = ib > ia
        core_y = jb > ja
        core = np.where(
            core_x & core_y,
            area_pref[ib, jb] - area_pref[ia, jb] - area_pref[ib, ja] + area_pref[ia, ja],
            0,
        )
        # Partial-column overlap widths / partial-row overlap heights.
        ox_l = np.minimum(x1, xs[i0 + 1]) - x0
        ox_r = x1 - np.maximum(x0, xs[i1])
        oy_b = np.minimum(y1, ys[j0 + 1]) - y0
        oy_t = y1 - np.maximum(y0, ys[j1])
        left = np.where(left_part & core_y, ox_l * (col_pref[i0, jb] - col_pref[i0, ja]), 0)
        right = np.where(right_act & core_y, ox_r * (col_pref[i1, jb] - col_pref[i1, ja]), 0)
        bottom = np.where(bot_part & core_x, oy_b * (row_pref[ib, j0] - row_pref[ia, j0]), 0)
        top = np.where(top_act & core_x, oy_t * (row_pref[ib, j1] - row_pref[ia, j1]), 0)
        corners = (
            np.where(left_part & bot_part, c[i0, j0] * ox_l * oy_b, 0)
            + np.where(left_part & top_act, c[i0, j1] * ox_l * oy_t, 0)
            + np.where(right_act & bot_part, c[i1, j0] * ox_r * oy_b, 0)
            + np.where(right_act & top_act, c[i1, j1] * ox_r * oy_t, 0)
        )
        total = core + left + right + bottom + top + corners
        result: IntArray = np.where(valid, total, 0).astype(_I64)
        return result

    # ------------------------------------------------------------------
    def free_rects_in(self, i_lo: int, i_hi: int, j_lo: int, j_hi: int) -> List[Rect]:
        """Canonical maximal rects of the *uncovered* cells in a block.

        The block is the cell-index range ``[i_lo, i_hi) x
        [j_lo, j_hi)`` (e.g. one window's inner region, whose
        boundaries must be raster edges).  The construction — maximal
        horizontal runs per cell row, then merging vertically adjacent
        runs with identical x-spans — reproduces exactly the canonical
        form produced by the scanline oracle
        (:func:`repro.geometry.boolean.rect_set_subtract`), which is
        invariant under refinement of the slab edges.  Rects are
        returned sorted by ``(xl, yl, xh, yh)``.
        """
        free = ~self.occupancy()[i_lo:i_hi, j_lo:j_hi]
        s, e, r0, r1 = merge_mask_runs(free)
        xs, ys = self.xs, self.ys
        rects = [
            Rect(
                int(xs[i_lo + a]),
                int(ys[j_lo + b]),
                int(xs[i_lo + c]),
                int(ys[j_lo + d]),
            )
            for a, b, c, d in zip(s, r0, e, r1)
        ]
        rects.sort()
        return rects


def merge_mask_runs(mask: BoolArray) -> Tuple[IntArray, IntArray, IntArray, IntArray]:
    """Maximal-run extraction + vertical merge over a boolean cell mask.

    ``mask[i, j]`` is True where cell ``(i, j)`` (column ``i``, row
    ``j``) belongs to the region.  Returns ``(i0, i1, j0, j1)`` cell
    index arrays of the canonical disjoint rectangles: maximal
    horizontal runs per row, vertically merged whenever consecutive
    rows carry an identical x-span — the same canonical form the
    scanline boolean's vertical merge produces.  Order is unspecified;
    callers sort the materialized rects.
    """
    empty: IntArray = np.zeros(0, dtype=_I64)
    if mask.size == 0 or not bool(mask.any()):
        return empty, empty, empty, empty
    rows = mask.T.astype(np.int8)  # (ny, nx): runs go along axis 1
    ny, nx = rows.shape
    padded: np.ndarray[Any, np.dtype[np.int8]] = np.zeros((ny, nx + 2), dtype=np.int8)
    padded[:, 1:-1] = rows
    d = np.diff(padded, axis=1)
    run_row, run_start = np.nonzero(d == 1)
    _, run_end = np.nonzero(d == -1)
    # np.nonzero is row-major, so starts and ends pair up elementwise
    # per row; run k spans columns [run_start[k], run_end[k]).
    order = np.lexsort((run_row, run_end, run_start))
    s = run_start[order].astype(_I64)
    e = run_end[order].astype(_I64)
    r = run_row[order].astype(_I64)
    new_group = np.ones(len(s), dtype=bool)
    if len(s) > 1:
        new_group[1:] = (s[1:] != s[:-1]) | (e[1:] != e[:-1]) | (r[1:] != r[:-1] + 1)
    firsts = np.flatnonzero(new_group)
    lasts = np.append(firsts[1:], len(s)) - 1
    return s[firsts], e[firsts], r[firsts], r[lasts] + 1
