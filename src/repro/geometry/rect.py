"""Axis-aligned integer rectangles.

All layout geometry in this package is Manhattan (rectilinear) and lives
on an integer grid of database units (1 dbu = 1 nm), matching the GDSII
convention and the integrality requirement of the sizing ILP
(Eqn. (9) of the paper).

A :class:`Rect` is half-open in neither direction: it is the closed box
``[xl, xh] x [yl, yh]`` with ``xl <= xh`` and ``yl <= yh``.  Area and
intersection treat the box as the continuous region it covers, so a
degenerate rectangle (``xl == xh``) has zero area and two rectangles
that merely share an edge have zero intersection area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

__all__ = ["Rect", "bounding_box"]


@dataclass(frozen=True, order=True)
class Rect:
    """A closed axis-aligned rectangle ``[xl, xh] x [yl, yh]``.

    Coordinates are integers (database units).  Instances are immutable
    and hashable so they can be used in sets and as dict keys.
    """

    xl: int
    yl: int
    xh: int
    yh: int

    def __post_init__(self) -> None:
        if self.xl > self.xh or self.yl > self.yh:
            raise ValueError(
                f"malformed rectangle ({self.xl},{self.yl},{self.xh},{self.yh}): "
                "requires xl <= xh and yl <= yh"
            )

    # ------------------------------------------------------------------
    # basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Horizontal extent ``xh - xl``."""
        return self.xh - self.xl

    @property
    def height(self) -> int:
        """Vertical extent ``yh - yl``."""
        return self.yh - self.yl

    @property
    def area(self) -> int:
        """Covered area ``width * height``."""
        return self.width * self.height

    @property
    def is_degenerate(self) -> bool:
        """True when the rectangle has zero area."""
        return self.xl == self.xh or self.yl == self.yh

    @property
    def center(self) -> Tuple[float, float]:
        """Geometric center (may be half-integral)."""
        return ((self.xl + self.xh) / 2.0, (self.yl + self.yh) / 2.0)

    @property
    def min_side(self) -> int:
        """The smaller of width and height (DRC min-width checks)."""
        return min(self.width, self.height)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: int, y: int) -> bool:
        """True when ``(x, y)`` lies inside or on the boundary."""
        return self.xl <= x <= self.xh and self.yl <= y <= self.yh

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.xl <= other.xl
            and self.yl <= other.yl
            and other.xh <= self.xh
            and other.yh <= self.yh
        )

    def overlaps(self, other: "Rect") -> bool:
        """True when the open interiors intersect (positive-area overlap)."""
        return (
            self.xl < other.xh
            and other.xl < self.xh
            and self.yl < other.yh
            and other.yl < self.yh
        )

    def touches(self, other: "Rect") -> bool:
        """True when the closed boxes intersect (shared edge counts)."""
        return (
            self.xl <= other.xh
            and other.xl <= self.xh
            and self.yl <= other.yh
            and other.yl <= self.yh
        )

    # ------------------------------------------------------------------
    # constructive operations
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping region, or ``None`` when interiors are disjoint."""
        xl = max(self.xl, other.xl)
        yl = max(self.yl, other.yl)
        xh = min(self.xh, other.xh)
        yh = min(self.yh, other.yh)
        if xl >= xh or yl >= yh:
            return None
        return Rect(xl, yl, xh, yh)

    def intersection_area(self, other: "Rect") -> int:
        """Area of overlap with ``other`` (0 when disjoint)."""
        w = min(self.xh, other.xh) - max(self.xl, other.xl)
        h = min(self.yh, other.yh) - max(self.yl, other.yl)
        if w <= 0 or h <= 0:
            return 0
        return w * h

    def union_bbox(self, other: "Rect") -> "Rect":
        """Bounding box of the two rectangles."""
        return Rect(
            min(self.xl, other.xl),
            min(self.yl, other.yl),
            max(self.xh, other.xh),
            max(self.yh, other.yh),
        )

    def expanded(self, margin: int) -> "Rect":
        """Grow (or shrink, for negative margin) by ``margin`` on all sides.

        Shrinking below a point raises ``ValueError`` via the constructor,
        mirroring how a DRC bloat can never invert a shape.
        """
        return Rect(
            self.xl - margin, self.yl - margin, self.xh + margin, self.yh + margin
        )

    def shrunk(self, margin: int) -> Optional["Rect"]:
        """Shrink by ``margin`` on all sides; ``None`` when nothing remains."""
        xl, yl = self.xl + margin, self.yl + margin
        xh, yh = self.xh - margin, self.yh - margin
        if xl >= xh or yl >= yh:
            return None
        return Rect(xl, yl, xh, yh)

    def translated(self, dx: int, dy: int) -> "Rect":
        """A copy moved by ``(dx, dy)``."""
        return Rect(self.xl + dx, self.yl + dy, self.xh + dx, self.yh + dy)

    def clipped(self, clip: "Rect") -> Optional["Rect"]:
        """Alias of :meth:`intersection` named for window clipping."""
        return self.intersection(clip)

    # ------------------------------------------------------------------
    # distances (used by spacing-rule checks, Eqn. (9g))
    # ------------------------------------------------------------------
    def gap_x(self, other: "Rect") -> int:
        """Horizontal free gap between the two boxes (0 when they overlap in x)."""
        return max(0, max(self.xl, other.xl) - min(self.xh, other.xh))

    def gap_y(self, other: "Rect") -> int:
        """Vertical free gap between the two boxes (0 when they overlap in y)."""
        return max(0, max(self.yl, other.yl) - min(self.yh, other.yh))

    def euclidean_gap(self, other: "Rect") -> float:
        """Euclidean distance between closed boxes — e(i, j) in Table 1."""
        dx = self.gap_x(other)
        dy = self.gap_y(other)
        return float((dx * dx + dy * dy) ** 0.5)

    # ------------------------------------------------------------------
    # decomposition helpers
    # ------------------------------------------------------------------
    def subtract(self, other: "Rect") -> List["Rect"]:
        """This rectangle minus ``other``, as up to four disjoint rectangles.

        Uses the standard guillotine split: full-width bottom and top
        slabs, then left and right side pieces of the middle band.
        """
        inter = self.intersection(other)
        if inter is None:
            return [self]
        pieces: List[Rect] = []
        if self.yl < inter.yl:
            pieces.append(Rect(self.xl, self.yl, self.xh, inter.yl))
        if inter.yh < self.yh:
            pieces.append(Rect(self.xl, inter.yh, self.xh, self.yh))
        if self.xl < inter.xl:
            pieces.append(Rect(self.xl, inter.yl, inter.xl, inter.yh))
        if inter.xh < self.xh:
            pieces.append(Rect(inter.xh, inter.yl, self.xh, inter.yh))
        return pieces

    def corners(self) -> Tuple[Tuple[int, int], ...]:
        """The four corners, counter-clockwise from the lower-left."""
        return (
            (self.xl, self.yl),
            (self.xh, self.yl),
            (self.xh, self.yh),
            (self.xl, self.yh),
        )

    def __iter__(self) -> Iterator[int]:
        """Unpack as ``xl, yl, xh, yh``."""
        return iter((self.xl, self.yl, self.xh, self.yh))

    def __str__(self) -> str:
        return f"({self.xl},{self.yl})-({self.xh},{self.yh})"


def bounding_box(rects: Iterable[Rect]) -> Optional[Rect]:
    """Bounding box of a collection of rectangles; ``None`` when empty."""
    it = iter(rects)
    try:
        first = next(it)
    except StopIteration:
        return None
    xl, yl, xh, yh = first.xl, first.yl, first.xh, first.yh
    for r in it:
        if r.xl < xl:
            xl = r.xl
        if r.yl < yl:
            yl = r.yl
        if r.xh > xh:
            xh = r.xh
        if r.yh > yh:
            yh = r.yh
    return Rect(xl, yl, xh, yh)
