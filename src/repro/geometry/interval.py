"""One-dimensional integer interval sets.

The scanline boolean engine (:mod:`repro.geometry.boolean`) reduces every
two-dimensional rectilinear boolean operation to operations on sets of
closed integer intervals within a horizontal slab.  This module provides
that substrate: a normalised, sorted, pairwise-disjoint list of
``(lo, hi)`` intervals with union / intersection / subtraction /
complement and total-measure queries.

Intervals are treated as continuous segments ``[lo, hi]`` with integer
endpoints; a degenerate interval (``lo == hi``) has zero measure and is
dropped during normalisation.  Abutting intervals (``a.hi == b.lo``) are
merged, which matches how two wire rectangles sharing an edge form one
covered region for density purposes.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = [
    "IntervalSet",
    "normalize",
    "union",
    "intersect",
    "subtract",
    "complement",
    "measure",
]

Interval = Tuple[int, int]


def normalize(intervals: Iterable[Interval]) -> List[Interval]:
    """Sort, drop empty, and merge overlapping/abutting intervals."""
    items = sorted((lo, hi) for lo, hi in intervals if lo < hi)
    out: List[Interval] = []
    for lo, hi in items:
        if out and lo <= out[-1][1]:
            if hi > out[-1][1]:
                out[-1] = (out[-1][0], hi)
        else:
            out.append((lo, hi))
    return out


def measure(intervals: Sequence[Interval]) -> int:
    """Total length of a *normalised* interval list."""
    return sum(hi - lo for lo, hi in intervals)


def union(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Union of two normalised interval lists."""
    return normalize(list(a) + list(b))


def intersect(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Intersection of two normalised interval lists (linear merge)."""
    out: List[Interval] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def subtract(a: Sequence[Interval], b: Sequence[Interval]) -> List[Interval]:
    """Normalised ``a`` minus normalised ``b`` (linear merge)."""
    out: List[Interval] = []
    j = 0
    for lo, hi in a:
        cur = lo
        while j < len(b) and b[j][1] <= cur:
            j += 1
        k = j
        while k < len(b) and b[k][0] < hi:
            blo, bhi = b[k]
            if blo > cur:
                out.append((cur, blo))
            cur = max(cur, bhi)
            if cur >= hi:
                break
            k += 1
        if cur < hi:
            out.append((cur, hi))
    return out


def complement(a: Sequence[Interval], lo: int, hi: int) -> List[Interval]:
    """The part of ``[lo, hi]`` not covered by normalised ``a``."""
    return subtract([(lo, hi)], a)


class IntervalSet:
    """A mutable set of disjoint integer intervals.

    Thin object wrapper over the functional core above, convenient when a
    scanline accumulates coverage slab by slab.
    """

    __slots__ = ("_intervals",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals = normalize(intervals)

    @property
    def intervals(self) -> List[Interval]:
        """The normalised interval list (a copy)."""
        return list(self._intervals)

    @property
    def measure(self) -> int:
        """Total covered length."""
        return measure(self._intervals)

    @property
    def is_empty(self) -> bool:
        return not self._intervals

    def add(self, lo: int, hi: int) -> None:
        """Insert ``[lo, hi]`` into the set."""
        self._intervals = union(self._intervals, [(lo, hi)] if lo < hi else [])

    def remove(self, lo: int, hi: int) -> None:
        """Erase ``[lo, hi]`` from the set."""
        if lo < hi:
            self._intervals = subtract(self._intervals, [(lo, hi)])

    def union(self, other: "IntervalSet") -> "IntervalSet":
        out = IntervalSet()
        out._intervals = union(self._intervals, other._intervals)
        return out

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        out = IntervalSet()
        out._intervals = intersect(self._intervals, other._intervals)
        return out

    def subtract(self, other: "IntervalSet") -> "IntervalSet":
        out = IntervalSet()
        out._intervals = subtract(self._intervals, other._intervals)
        return out

    def complement(self, lo: int, hi: int) -> "IntervalSet":
        out = IntervalSet()
        out._intervals = complement(self._intervals, lo, hi)
        return out

    def covers(self, lo: int, hi: int) -> bool:
        """True when ``[lo, hi]`` lies entirely inside one stored interval."""
        if lo >= hi:
            return True
        for ilo, ihi in self._intervals:
            if ilo <= lo and hi <= ihi:
                return True
            if ilo > lo:
                break
        return False

    def contains_point(self, x: int) -> bool:
        """True when ``x`` lies in the closed cover of the set."""
        for lo, hi in self._intervals:
            if lo <= x <= hi:
                return True
            if lo > x:
                break
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __repr__(self) -> str:
        return f"IntervalSet({self._intervals!r})"
