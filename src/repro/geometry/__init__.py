"""Rectilinear geometry kernel.

Integer-grid Manhattan geometry used throughout the fill framework:
rectangles (:mod:`~repro.geometry.rect`), 1-D interval sets
(:mod:`~repro.geometry.interval`), scanline boolean operations on
rectangle sets (:mod:`~repro.geometry.boolean`), rectilinear polygons
and their rectangle decompositions (:mod:`~repro.geometry.polygon`,
:mod:`~repro.geometry.poly2rect`), a uniform-grid spatial index
(:mod:`~repro.geometry.grid`), and coordinate-compressed occupancy
rasters with exact prefix-sum box queries
(:mod:`~repro.geometry.raster`).
"""

from .boolean import (
    RectSet,
    canonicalize,
    clip_rects,
    intersection_area,
    rect_set_intersect,
    rect_set_subtract,
    rect_set_union,
    union_area,
)
from .grid import GridIndex
from .interval import IntervalSet
from .polygon import RectilinearPolygon
from .poly2rect import gourley_green, polygon_to_rects, scanline_decompose
from .raster import BoolArray, IntArray, Raster, merge_mask_runs
from .rect import Rect, bounding_box

__all__ = [
    "Rect",
    "bounding_box",
    "IntervalSet",
    "RectSet",
    "canonicalize",
    "clip_rects",
    "intersection_area",
    "rect_set_intersect",
    "rect_set_subtract",
    "rect_set_union",
    "union_area",
    "GridIndex",
    "Raster",
    "IntArray",
    "BoolArray",
    "merge_mask_runs",
    "RectilinearPolygon",
    "gourley_green",
    "polygon_to_rects",
    "scanline_decompose",
]
