"""Rectilinear boolean operations on rectangle sets.

Density analysis and overlay evaluation (paper §2.1–§2.2) need exact
area arithmetic on unions of possibly-overlapping rectangles: the wire
coverage of a window, the free fill region (window minus bloated wires),
and the pairwise overlap of fill sets on adjacent layers.

The engine here is a classic *slab decomposition* scanline: collect all
distinct y coordinates, and within each horizontal slab reduce the
problem to one-dimensional interval arithmetic
(:mod:`repro.geometry.interval`).  The output of every set operation is
a list of disjoint rectangles, canonicalised by merging vertically
adjacent rectangles that share an x-span, so repeated operations do not
fragment geometry.

Complexity is O(S · R log R) for S slabs over R rectangles — entirely
adequate at the scaled benchmark sizes this reproduction targets (see
DESIGN.md §3), and exact over the integer grid.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from .interval import Interval, intersect as iv_intersect
from .interval import measure as iv_measure
from .interval import normalize as iv_normalize
from .interval import subtract as iv_subtract
from .rect import Rect

__all__ = [
    "union_area",
    "intersection_area",
    "rect_set_union",
    "rect_set_intersect",
    "rect_set_subtract",
    "clip_rects",
    "canonicalize",
    "RectSet",
]


def _slab_edges(rect_lists: Sequence[Sequence[Rect]]) -> List[int]:
    """Sorted distinct y coordinates over all rectangles in all lists."""
    ys = set()
    for rects in rect_lists:
        for r in rects:
            ys.add(r.yl)
            ys.add(r.yh)
    return sorted(ys)


def _slab_intervals(rects: Sequence[Rect], ylo: int, yhi: int) -> List[Interval]:
    """Normalised x-intervals of rectangles crossing slab ``[ylo, yhi]``."""
    return iv_normalize(
        (r.xl, r.xh) for r in rects if r.yl <= ylo and r.yh >= yhi
    )


def _sweep(
    a: Sequence[Rect],
    b: Sequence[Rect],
    combine,
) -> List[Rect]:
    """Run ``combine(intervals_a, intervals_b)`` in every slab, then merge."""
    edges = _slab_edges([a, b])
    out: List[Rect] = []
    for ylo, yhi in zip(edges, edges[1:]):
        if ylo >= yhi:
            continue
        ia = _slab_intervals(a, ylo, yhi)
        ib = _slab_intervals(b, ylo, yhi)
        for xl, xh in combine(ia, ib):
            out.append(Rect(xl, ylo, xh, yhi))
    return _merge_vertical(out)


def _merge_vertical(rects: List[Rect]) -> List[Rect]:
    """Merge vertically stacked rectangles with identical x-spans.

    Assumes the input rectangles are pairwise disjoint (slab output),
    which the scanline guarantees.
    """
    by_span = {}
    for r in sorted(rects, key=lambda r: (r.xl, r.xh, r.yl)):
        key = (r.xl, r.xh)
        prev = by_span.get(key)
        if prev and prev[-1].yh == r.yl:
            prev[-1] = Rect(r.xl, prev[-1].yl, r.xh, r.yh)
        else:
            by_span.setdefault(key, []).append(r)
    merged = [r for group in by_span.values() for r in group]
    merged.sort()
    return merged


# ----------------------------------------------------------------------
# area queries
# ----------------------------------------------------------------------
def union_area(rects: Sequence[Rect]) -> int:
    """Exact area of the union of (possibly overlapping) rectangles."""
    edges = _slab_edges([rects])
    total = 0
    for ylo, yhi in zip(edges, edges[1:]):
        if ylo >= yhi:
            continue
        total += iv_measure(_slab_intervals(rects, ylo, yhi)) * (yhi - ylo)
    return total


def intersection_area(a: Sequence[Rect], b: Sequence[Rect]) -> int:
    """Exact area of ``union(a) ∩ union(b)``.

    This is precisely the *overlay* measure of paper §2.1: the overlap
    between the covered region of one layer and the covered region of
    its neighbour.
    """
    edges = _slab_edges([a, b])
    total = 0
    for ylo, yhi in zip(edges, edges[1:]):
        if ylo >= yhi:
            continue
        ia = _slab_intervals(a, ylo, yhi)
        ib = _slab_intervals(b, ylo, yhi)
        total += iv_measure(iv_intersect(ia, ib)) * (yhi - ylo)
    return total


# ----------------------------------------------------------------------
# constructive set operations
# ----------------------------------------------------------------------
def rect_set_union(a: Sequence[Rect], b: Sequence[Rect]) -> List[Rect]:
    """Disjoint rectangles covering ``union(a) ∪ union(b)``."""
    from .interval import union as iv_union

    return _sweep(a, b, iv_union)


def rect_set_intersect(a: Sequence[Rect], b: Sequence[Rect]) -> List[Rect]:
    """Disjoint rectangles covering ``union(a) ∩ union(b)``.

    Used by Alg. 1 line 10: ``intersect(fr(l), fr(l+1))`` — the region
    free of wires on *both* of two adjacent layers (Region 3 of
    Figs. 4/5).
    """
    return _sweep(a, b, iv_intersect)


def rect_set_subtract(a: Sequence[Rect], b: Sequence[Rect]) -> List[Rect]:
    """Disjoint rectangles covering ``union(a) \\ union(b)``.

    The fill-region extraction (window minus bloated wires) is built on
    this operation.
    """
    return _sweep(a, b, iv_subtract)


def clip_rects(rects: Iterable[Rect], clip: Rect) -> List[Rect]:
    """Clip every rectangle to ``clip``, dropping empty results."""
    out = []
    for r in rects:
        c = r.intersection(clip)
        if c is not None:
            out.append(c)
    return out


def canonicalize(rects: Sequence[Rect]) -> List[Rect]:
    """Disjoint, vertically merged canonical form of an arbitrary set.

    Two rectangle sets cover the same region iff their canonical forms
    are equal, which the property-based tests rely on.
    """
    return rect_set_union(list(rects), [])


class RectSet:
    """An immutable region of the plane stored as disjoint rectangles.

    A convenience wrapper used wherever a *region* (rather than a list of
    individual shapes) is the natural abstraction: fill regions, wire
    coverage, windows.  All operations return new sets.
    """

    __slots__ = ("_rects",)

    def __init__(self, rects: Iterable[Rect] = (), *, _canonical: bool = False):
        rect_list = list(rects)
        self._rects = rect_list if _canonical else canonicalize(rect_list)

    @property
    def rects(self) -> List[Rect]:
        """The canonical disjoint rectangle list (a copy)."""
        return list(self._rects)

    @property
    def area(self) -> int:
        """Covered area (rectangles are disjoint, so a plain sum)."""
        return sum(r.area for r in self._rects)

    @property
    def is_empty(self) -> bool:
        return not self._rects

    def union(self, other: "RectSet") -> "RectSet":
        return RectSet(
            rect_set_union(self._rects, other._rects), _canonical=True
        )

    def intersect(self, other: "RectSet") -> "RectSet":
        return RectSet(
            rect_set_intersect(self._rects, other._rects), _canonical=True
        )

    def subtract(self, other: "RectSet") -> "RectSet":
        return RectSet(
            rect_set_subtract(self._rects, other._rects), _canonical=True
        )

    def clip(self, window: Rect) -> "RectSet":
        return RectSet(
            rect_set_intersect(self._rects, [window]), _canonical=True
        )

    def intersection_area(self, other: "RectSet") -> int:
        return intersection_area(self._rects, other._rects)

    def contains_point(self, x: int, y: int) -> bool:
        return any(r.contains_point(x, y) for r in self._rects)

    def bloated(self, margin: int) -> "RectSet":
        """Region grown by ``margin`` on all sides (min-spacing bloat)."""
        if margin == 0:
            return self
        return RectSet(r.expanded(margin) for r in self._rects)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectSet):
            return NotImplemented
        return self._rects == other._rects

    def __len__(self) -> int:
        return len(self._rects)

    def __iter__(self) -> Iterator[Rect]:
        return iter(self._rects)

    def __repr__(self) -> str:
        return f"RectSet({len(self._rects)} rects, area={self.area})"
