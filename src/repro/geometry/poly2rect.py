"""Polygon-to-rectangle conversion.

First step of the paper's flow (Fig. 3): "we need to convert polygons to
rectangles [16]" where [16] is Gourley & Green, *Polygon-to-Rectangle
Conversion Algorithm* (IEEE CG&A 1983).

Two decompositions are provided:

* :func:`gourley_green` — the referenced algorithm, operating on the
  polygon's *corner set*.  It repeatedly finds the lowest-leftmost
  corner pair and splits off a maximal-height rectangle.  Exact for
  simple rectilinear polygons (holes included when their corners are
  supplied), and produces the same horizontally-sliced partition as the
  original paper.
* :func:`scanline_decompose` — a slab scanline over the polygon edges
  with even-odd parity.  Used as an independent oracle in tests and as a
  fallback for degenerate inputs.

Both return disjoint rectangles whose union is exactly the polygon.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from .polygon import Point, RectilinearPolygon
from .rect import Rect

__all__ = ["gourley_green", "scanline_decompose", "polygon_to_rects"]


def gourley_green(polygon: RectilinearPolygon) -> List[Rect]:
    """Decompose a rectilinear polygon via Gourley–Green corner splitting.

    The algorithm of ref. [16]: maintain the set of polygon corners
    (each corner toggles in and out of the set as rectangles are carved
    off).  Repeatedly:

    1. ``Pk`` — the lowest, then leftmost corner.
    2. ``Pl`` — the next corner on the same horizontal line (the
       leftmost corner with ``y == Pk.y`` and ``x > Pk.x``).
    3. ``Pm`` — the lowest corner strictly above ``Pk`` within the
       horizontal span ``[Pk.x, Pl.x)``.
    4. Emit the rectangle ``(Pk.x, Pk.y, Pl.x, Pm.y)`` and toggle the
       four corners ``Pk``, ``Pl``, ``(Pk.x, Pm.y)``, ``(Pl.x, Pm.y)``
       in the corner set.

    Terminates when the corner set is empty; each step removes at least
    two corners, so at most ``V/2`` rectangles are produced.
    """
    corners: Set[Point] = set()
    for v in polygon.vertices:
        _toggle(corners, v)
    out: List[Rect] = []
    # Each iteration removes >= 2 corners from the set; bound the loop
    # defensively anyway so malformed input cannot hang.
    max_iter = len(polygon.vertices) * len(polygon.vertices) + 4
    for _ in range(max_iter):
        if not corners:
            return out
        pk = min(corners, key=lambda p: (p[1], p[0]))
        same_row = [p for p in corners if p[1] == pk[1] and p[0] > pk[0]]
        if not same_row:
            raise ValueError("corner set is inconsistent: no Pl for Pk")
        pl = min(same_row, key=lambda p: p[0])
        above = [
            p
            for p in corners
            if p[1] > pk[1] and pk[0] <= p[0] < pl[0]
        ]
        if not above:
            raise ValueError("corner set is inconsistent: no Pm above Pk")
        pm_y = min(p[1] for p in above)
        out.append(Rect(pk[0], pk[1], pl[0], pm_y))
        _toggle(corners, pk)
        _toggle(corners, pl)
        _toggle(corners, (pk[0], pm_y))
        _toggle(corners, (pl[0], pm_y))
    raise ValueError("Gourley-Green did not terminate: malformed polygon")


def _toggle(corners: Set[Point], p: Point) -> None:
    if p in corners:
        corners.remove(p)
    else:
        corners.add(p)


def scanline_decompose(polygon: RectilinearPolygon) -> List[Rect]:
    """Slab-scanline decomposition with even-odd parity.

    Collect the vertical edges, cut the plane at every distinct y, and
    inside each slab pair up the crossing vertical edges left to right.
    Simple, and independent of :func:`gourley_green` — the two are
    cross-checked in the property-based tests.
    """
    verts = polygon.vertices
    n = len(verts)
    vertical_edges: List[Tuple[int, int, int]] = []  # (x, ylo, yhi)
    ys = set()
    for i in range(n):
        (x0, y0), (x1, y1) = verts[i], verts[(i + 1) % n]
        if x0 == x1 and y0 != y1:
            vertical_edges.append((x0, min(y0, y1), max(y0, y1)))
        ys.add(y0)
    edges_y = sorted(ys)
    out: List[Rect] = []
    for ylo, yhi in zip(edges_y, edges_y[1:]):
        crossing = sorted(
            x for x, eylo, eyhi in vertical_edges if eylo <= ylo and eyhi >= yhi
        )
        if len(crossing) % 2 != 0:
            raise ValueError("odd crossing count: polygon is not simple")
        for xl, xh in zip(crossing[0::2], crossing[1::2]):
            if xl < xh:
                out.append(Rect(xl, ylo, xh, yhi))
    return _merge_columns(out)


def _merge_columns(rects: List[Rect]) -> List[Rect]:
    """Merge vertically stacked slab rectangles sharing an x-span."""
    rects = sorted(rects, key=lambda r: (r.xl, r.xh, r.yl))
    out: List[Rect] = []
    for r in rects:
        if out and (out[-1].xl, out[-1].xh, out[-1].yh) == (r.xl, r.xh, r.yl):
            out[-1] = Rect(r.xl, out[-1].yl, r.xh, r.yh)
        else:
            out.append(r)
    out.sort()
    return out


def polygon_to_rects(
    polygon: RectilinearPolygon, method: str = "gourley-green"
) -> List[Rect]:
    """Decompose ``polygon`` into disjoint rectangles.

    ``method`` selects ``"gourley-green"`` (default, ref. [16]) or
    ``"scanline"``.  Rectangular inputs short-circuit either way.
    """
    if polygon.is_rectangle:
        return [polygon.to_rect()]
    if method == "gourley-green":
        return gourley_green(polygon)
    if method == "scanline":
        return scanline_decompose(polygon)
    raise ValueError(f"unknown decomposition method: {method!r}")
