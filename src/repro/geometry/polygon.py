"""Rectilinear (Manhattan) polygons.

Contest layouts arrive as rectilinear polygons; the first step of the
paper's flow (Fig. 3) is "convert polygons to rectangles [16]".  This
module holds the polygon representation and validity checks; the actual
decomposition lives in :mod:`repro.geometry.poly2rect`.

A polygon is a closed loop of integer vertices whose consecutive edges
alternate between horizontal and vertical.  The loop is stored without
the repeated closing vertex.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .rect import Rect

__all__ = ["RectilinearPolygon"]

Point = Tuple[int, int]


class RectilinearPolygon:
    """A simple rectilinear polygon on the integer grid.

    The constructor normalises the vertex loop (drops collinear and
    repeated vertices) and validates rectilinearity.  Orientation may be
    clockwise or counter-clockwise; :attr:`area` is always positive.
    """

    __slots__ = ("_vertices",)

    def __init__(self, vertices: Sequence[Point]):
        verts = [(int(x), int(y)) for x, y in vertices]
        if len(verts) >= 2 and verts[0] == verts[-1]:
            verts = verts[:-1]
        verts = self._drop_collinear(verts)
        if len(verts) < 4:
            raise ValueError("a rectilinear polygon needs at least 4 vertices")
        if len(verts) % 2 != 0:
            raise ValueError("rectilinear polygons have an even vertex count")
        self._validate_rectilinear(verts)
        self._vertices = tuple(verts)

    @staticmethod
    def _drop_collinear(verts: List[Point]) -> List[Point]:
        """Remove duplicate and collinear vertices from the loop."""
        # Drop consecutive duplicates first.
        out: List[Point] = []
        for v in verts:
            if not out or out[-1] != v:
                out.append(v)
        if len(out) >= 2 and out[0] == out[-1]:
            out.pop()
        # Drop collinear middles until stable.
        changed = True
        while changed and len(out) >= 3:
            changed = False
            result: List[Point] = []
            n = len(out)
            for i in range(n):
                a, b, c = out[i - 1], out[i], out[(i + 1) % n]
                collinear = (a[0] == b[0] == c[0]) or (a[1] == b[1] == c[1])
                if collinear:
                    changed = True
                else:
                    result.append(b)
            out = result
        return out

    @staticmethod
    def _validate_rectilinear(verts: Sequence[Point]) -> None:
        n = len(verts)
        for i in range(n):
            a, b = verts[i], verts[(i + 1) % n]
            if a[0] != b[0] and a[1] != b[1]:
                raise ValueError(f"edge {a}->{b} is neither horizontal nor vertical")
            prev = verts[i - 1]
            prev_horizontal = prev[1] == a[1]
            cur_horizontal = a[1] == b[1]
            if prev_horizontal == cur_horizontal:
                raise ValueError(
                    f"edges around vertex {a} do not alternate H/V"
                )

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> Tuple[Point, ...]:
        """The normalised vertex loop (closing vertex not repeated)."""
        return self._vertices

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def area(self) -> int:
        """Enclosed area via the shoelace formula (always positive)."""
        total = 0
        n = len(self._vertices)
        for i in range(n):
            x0, y0 = self._vertices[i]
            x1, y1 = self._vertices[(i + 1) % n]
            total += x0 * y1 - x1 * y0
        return abs(total) // 2

    @property
    def bbox(self) -> Rect:
        xs = [v[0] for v in self._vertices]
        ys = [v[1] for v in self._vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    @property
    def is_rectangle(self) -> bool:
        """True when the polygon is a plain axis-aligned rectangle."""
        return len(self._vertices) == 4

    def to_rect(self) -> Rect:
        """Convert a 4-vertex polygon to a :class:`Rect`."""
        if not self.is_rectangle:
            raise ValueError("polygon is not a rectangle")
        return self.bbox

    @classmethod
    def from_rect(cls, rect: Rect) -> "RectilinearPolygon":
        return cls(rect.corners())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectilinearPolygon):
            return NotImplemented
        return self._canonical_loop() == other._canonical_loop()

    def _canonical_loop(self) -> Tuple[Point, ...]:
        """Rotation- and direction-independent canonical vertex order."""
        verts = list(self._vertices)
        candidates = []
        for loop in (verts, verts[::-1]):
            start = loop.index(min(loop))
            candidates.append(tuple(loop[start:] + loop[:start]))
        return min(candidates)

    def __hash__(self) -> int:
        return hash(self._canonical_loop())

    def __repr__(self) -> str:
        return f"RectilinearPolygon({len(self._vertices)} vertices, area={self.area})"
