"""Uniform-grid spatial index for rectangles.

Candidate-fill generation and spacing-rule extraction (Eqn. (9g)) need
"which shapes are near this box?" queries over thousands of rectangles
per window.  A uniform bucket grid is the right tool at this scale: the
shapes are small relative to the window, near-uniformly distributed, and
the index is rebuilt per window anyway.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generic, Iterable, Iterator, List, Tuple, TypeVar

from .rect import Rect

__all__ = ["GridIndex"]

T = TypeVar("T")


class GridIndex(Generic[T]):
    """Buckets rectangles into fixed-size grid cells for range queries.

    Items are arbitrary payloads stored alongside their bounding
    rectangle.  Query results are deduplicated and order-stable (items
    come back in insertion order).
    """

    def __init__(self, cell_size: int):
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._cell = cell_size
        self._buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        self._items: List[Tuple[Rect, T]] = []

    @property
    def cell_size(self) -> int:
        return self._cell

    def __len__(self) -> int:
        return len(self._items)

    def _cells(self, rect: Rect) -> Iterator[Tuple[int, int]]:
        cx0 = rect.xl // self._cell
        cx1 = rect.xh // self._cell
        cy0 = rect.yl // self._cell
        cy1 = rect.yh // self._cell
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                yield (cx, cy)

    def insert(self, rect: Rect, item: T) -> int:
        """Store ``item`` under ``rect``; returns the item's index."""
        idx = len(self._items)
        self._items.append((rect, item))
        for cell in self._cells(rect):
            self._buckets[cell].append(idx)
        return idx

    def extend(self, pairs: Iterable[Tuple[Rect, T]]) -> None:
        for rect, item in pairs:
            self.insert(rect, item)

    def query(self, region: Rect) -> List[Tuple[Rect, T]]:
        """All items whose rectangle *touches* ``region`` (closed boxes).

        Results come back in insertion order, which keeps downstream
        candidate selection deterministic.
        """
        seen = set()
        hit_ids: List[int] = []
        for cell in self._cells(region):
            for idx in self._buckets.get(cell, ()):
                if idx in seen:
                    continue
                seen.add(idx)
                if self._items[idx][0].touches(region):
                    hit_ids.append(idx)
        hit_ids.sort()
        return [self._items[idx] for idx in hit_ids]

    def query_overlapping(self, region: Rect) -> List[Tuple[Rect, T]]:
        """All items with positive-area overlap with ``region``."""
        return [(r, it) for r, it in self.query(region) if r.overlaps(region)]

    def query_within(self, region: Rect, margin: int) -> List[Tuple[Rect, T]]:
        """All items within ``margin`` of ``region`` (closed distance).

        This is the neighbour query behind spacing-constraint extraction:
        fill pairs closer than the minimum spacing ``sm`` get a
        differential constraint (Eqn. (13)).
        """
        grown = region.expanded(margin)
        return self.query(grown)

    def items(self) -> List[Tuple[Rect, T]]:
        """All stored (rect, item) pairs in insertion order."""
        return list(self._items)
