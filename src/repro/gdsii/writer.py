"""GDSII writer for filled layouts.

Emits a single-structure GDSII library containing every wire and fill
of a :class:`~repro.layout.Layout` as BOUNDARY elements.  Wires carry
GDSII datatype 0 and dummy fills datatype 1 — the convention the
ICCAD 2014 contest used to let the evaluator separate signal geometry
from inserted fill.

The byte count of the emitted stream is the raw input to the contest
file-size score s_fs (Eqn. (3)); the paper's observation that
*fewer, larger* fills shrink the output file is directly visible here,
since every fill costs one fixed-size BOUNDARY element.

:class:`GdsiiStreamWriter` is the incremental form: header on
construction, one :meth:`~GdsiiStreamWriter.boundary` call per shape,
trailer on :meth:`~GdsiiStreamWriter.close` — nothing is buffered, so
the out-of-core pipeline can append fills as bands complete while
staying byte-identical to :func:`write_gdsii` for the same shape
sequence.
"""

from __future__ import annotations

import io
from typing import BinaryIO

from ..geometry import Rect
from ..layout import Layout
from .records import DataType, RecordType, encode_ascii, encode_int2, encode_int4, encode_real8, pack_record

__all__ = [
    "GdsiiStreamWriter",
    "write_gdsii",
    "gdsii_bytes",
    "WIRE_DATATYPE",
    "FILL_DATATYPE",
    "DIE_LAYER",
]

WIRE_DATATYPE = 0
FILL_DATATYPE = 1
#: The die outline is stored as a boundary on this reserved layer so a
#: round-trip through GDSII preserves the window dissection frame.
DIE_LAYER = 0

# Fixed timestamp: deterministic output so file-size scores and the
# byte-identity round-trip tests are reproducible.
_TIMESTAMP = (2014, 11, 1, 0, 0, 0)


def _boundary_bytes(layer: int, datatype: int, rect: Rect) -> bytes:
    # A rectangle boundary: 5 points, closed loop, counter-clockwise.
    xy = [
        rect.xl, rect.yl,
        rect.xh, rect.yl,
        rect.xh, rect.yh,
        rect.xl, rect.yh,
        rect.xl, rect.yl,
    ]
    return b"".join(
        (
            pack_record(RecordType.BOUNDARY, DataType.NO_DATA),
            pack_record(RecordType.LAYER, DataType.INT2, encode_int2([layer])),
            pack_record(
                RecordType.DATATYPE, DataType.INT2, encode_int2([datatype])
            ),
            pack_record(RecordType.XY, DataType.INT4, encode_int4(xy)),
            pack_record(RecordType.ENDEL, DataType.NO_DATA),
        )
    )


def _boundary(stream: BinaryIO, layer: int, datatype: int, rect: Rect) -> None:
    stream.write(_boundary_bytes(layer, datatype, rect))


class GdsiiStreamWriter:
    """Incremental GDSII emitter.

    Writes the library/structure header on construction, then one
    BOUNDARY element per :meth:`boundary` call, and the
    ENDSTR/ENDLIB trailer on :meth:`close`.  Emitting the same shapes
    in the same order as :func:`write_gdsii` produces the same bytes
    — the writer holds no state beyond the running byte count.
    """

    def __init__(
        self,
        stream: BinaryIO,
        *,
        library_name: str = "FILL",
        structure_name: str = "TOP",
        user_unit: float = 1e-3,
        db_unit_meters: float = 1e-9,
    ):
        self._stream = stream
        self._bytes_written = 0
        self._closed = False
        self._write(
            pack_record(RecordType.HEADER, DataType.INT2, encode_int2([600]))
        )
        self._write(
            pack_record(
                RecordType.BGNLIB, DataType.INT2, encode_int2(list(_TIMESTAMP * 2))
            )
        )
        self._write(
            pack_record(
                RecordType.LIBNAME, DataType.ASCII, encode_ascii(library_name)
            )
        )
        self._write(
            pack_record(
                RecordType.UNITS,
                DataType.REAL8,
                encode_real8(user_unit) + encode_real8(db_unit_meters),
            )
        )
        self._write(
            pack_record(
                RecordType.BGNSTR, DataType.INT2, encode_int2(list(_TIMESTAMP * 2))
            )
        )
        self._write(
            pack_record(
                RecordType.STRNAME, DataType.ASCII, encode_ascii(structure_name)
            )
        )

    def _write(self, data: bytes) -> None:
        self._stream.write(data)
        self._bytes_written += len(data)

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    def boundary(self, layer: int, datatype: int, rect: Rect) -> None:
        """Emit one rectangle BOUNDARY element."""
        if self._closed:
            raise ValueError("writer is closed")
        self._write(_boundary_bytes(layer, datatype, rect))

    def close(self) -> int:
        """Write the ENDSTR/ENDLIB trailer; returns total bytes written."""
        if not self._closed:
            self._write(pack_record(RecordType.ENDSTR, DataType.NO_DATA))
            self._write(pack_record(RecordType.ENDLIB, DataType.NO_DATA))
            self._closed = True
        return self._bytes_written

    def __enter__(self) -> "GdsiiStreamWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def write_gdsii(
    layout: Layout,
    stream: BinaryIO,
    *,
    library_name: str = "FILL",
    structure_name: str = "TOP",
    user_unit: float = 1e-3,
    db_unit_meters: float = 1e-9,
    include_wires: bool = True,
) -> int:
    """Serialise ``layout`` as GDSII; returns the number of bytes written.

    ``include_wires=False`` emits a fill-only file, matching contest
    submissions where only inserted geometry is returned.
    """
    writer = GdsiiStreamWriter(
        stream,
        library_name=library_name,
        structure_name=structure_name,
        user_unit=user_unit,
        db_unit_meters=db_unit_meters,
    )
    writer.boundary(DIE_LAYER, WIRE_DATATYPE, layout.die)
    for layer in layout.layers:
        if include_wires:
            for wire in layer.wires:
                writer.boundary(layer.number, WIRE_DATATYPE, wire)
        for fill in layer.fills:
            writer.boundary(layer.number, FILL_DATATYPE, fill)
    return writer.close()


def gdsii_bytes(layout: Layout, **kwargs) -> bytes:
    """Serialise ``layout`` to an in-memory GDSII byte string."""
    buf = io.BytesIO()
    write_gdsii(layout, buf, **kwargs)
    return buf.getvalue()
