"""GDSII writer for filled layouts.

Emits a single-structure GDSII library containing every wire and fill
of a :class:`~repro.layout.Layout` as BOUNDARY elements.  Wires carry
GDSII datatype 0 and dummy fills datatype 1 — the convention the
ICCAD 2014 contest used to let the evaluator separate signal geometry
from inserted fill.

The byte count of the emitted stream is the raw input to the contest
file-size score s_fs (Eqn. (3)); the paper's observation that
*fewer, larger* fills shrink the output file is directly visible here,
since every fill costs one fixed-size BOUNDARY element.
"""

from __future__ import annotations

import io
from typing import BinaryIO

from ..geometry import Rect
from ..layout import Layout
from .records import DataType, RecordType, encode_ascii, encode_int2, encode_int4, encode_real8, pack_record

__all__ = ["write_gdsii", "gdsii_bytes", "WIRE_DATATYPE", "FILL_DATATYPE", "DIE_LAYER"]

WIRE_DATATYPE = 0
FILL_DATATYPE = 1
#: The die outline is stored as a boundary on this reserved layer so a
#: round-trip through GDSII preserves the window dissection frame.
DIE_LAYER = 0

# Fixed timestamp: deterministic output so file-size scores and the
# byte-identity round-trip tests are reproducible.
_TIMESTAMP = (2014, 11, 1, 0, 0, 0)


def _boundary(stream: BinaryIO, layer: int, datatype: int, rect: Rect) -> None:
    stream.write(pack_record(RecordType.BOUNDARY, DataType.NO_DATA))
    stream.write(
        pack_record(RecordType.LAYER, DataType.INT2, encode_int2([layer]))
    )
    stream.write(
        pack_record(RecordType.DATATYPE, DataType.INT2, encode_int2([datatype]))
    )
    # A rectangle boundary: 5 points, closed loop, counter-clockwise.
    xy = [
        rect.xl, rect.yl,
        rect.xh, rect.yl,
        rect.xh, rect.yh,
        rect.xl, rect.yh,
        rect.xl, rect.yl,
    ]
    stream.write(pack_record(RecordType.XY, DataType.INT4, encode_int4(xy)))
    stream.write(pack_record(RecordType.ENDEL, DataType.NO_DATA))


def write_gdsii(
    layout: Layout,
    stream: BinaryIO,
    *,
    library_name: str = "FILL",
    structure_name: str = "TOP",
    user_unit: float = 1e-3,
    db_unit_meters: float = 1e-9,
    include_wires: bool = True,
) -> int:
    """Serialise ``layout`` as GDSII; returns the number of bytes written.

    ``include_wires=False`` emits a fill-only file, matching contest
    submissions where only inserted geometry is returned.
    """
    start = stream.tell() if stream.seekable() else 0
    stream.write(
        pack_record(RecordType.HEADER, DataType.INT2, encode_int2([600]))
    )
    stream.write(
        pack_record(
            RecordType.BGNLIB, DataType.INT2, encode_int2(list(_TIMESTAMP * 2))
        )
    )
    stream.write(
        pack_record(RecordType.LIBNAME, DataType.ASCII, encode_ascii(library_name))
    )
    stream.write(
        pack_record(
            RecordType.UNITS,
            DataType.REAL8,
            encode_real8(user_unit) + encode_real8(db_unit_meters),
        )
    )
    stream.write(
        pack_record(
            RecordType.BGNSTR, DataType.INT2, encode_int2(list(_TIMESTAMP * 2))
        )
    )
    stream.write(
        pack_record(RecordType.STRNAME, DataType.ASCII, encode_ascii(structure_name))
    )
    _boundary(stream, DIE_LAYER, WIRE_DATATYPE, layout.die)
    for layer in layout.layers:
        if include_wires:
            for wire in layer.wires:
                _boundary(stream, layer.number, WIRE_DATATYPE, wire)
        for fill in layer.fills:
            _boundary(stream, layer.number, FILL_DATATYPE, fill)
    stream.write(pack_record(RecordType.ENDSTR, DataType.NO_DATA))
    stream.write(pack_record(RecordType.ENDLIB, DataType.NO_DATA))
    end = stream.tell() if stream.seekable() else 0
    return end - start


def gdsii_bytes(layout: Layout, **kwargs) -> bytes:
    """Serialise ``layout`` to an in-memory GDSII byte string."""
    buf = io.BytesIO()
    write_gdsii(layout, buf, **kwargs)
    return buf.getvalue()
