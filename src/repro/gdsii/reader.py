"""GDSII reader: rebuild a :class:`~repro.layout.Layout` from a stream.

Parses the record subset the writer emits (plus tolerant skipping of
unknown elements) and reconstructs layers, wires and fills.  Rectangle
boundaries are recognised directly; non-rectangular rectilinear
boundaries are decomposed through Gourley–Green, mirroring the
"convert polygons to rectangles" front end of the paper's flow (Fig. 3).

The record iteration and element-to-geometry conversions live in
:mod:`repro.gdsii.stream`; this module is the materializing front end
(everything in one :class:`GdsiiLibrary`), the streaming reader is the
bounded-memory one.  Both share one state machine, so they agree on
every parse decision byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..geometry import Rect, RectilinearPolygon, bounding_box, polygon_to_rects
from ..layout import DrcRules, Layout
from .stream import GdsiiStreamReader, element_loops, loop_as_rect, path_to_loops
from .writer import DIE_LAYER, FILL_DATATYPE, WIRE_DATATYPE

__all__ = ["GdsiiLibrary", "read_gdsii", "layout_from_gdsii"]


@dataclass
class GdsiiLibrary:
    """Raw parse result: library metadata plus boundaries per (layer, datatype)."""

    name: str = ""
    user_unit: float = 1e-3
    db_unit_meters: float = 1e-9
    structure_names: List[str] = field(default_factory=list)
    boundaries: Dict[Tuple[int, int], List[List[Tuple[int, int]]]] = field(
        default_factory=dict
    )

    def rects(self, layer: int, datatype: int) -> List[Rect]:
        """All boundaries on (layer, datatype) as rectangles.

        Rectangular loops convert directly; other rectilinear loops are
        decomposed with Gourley–Green.
        """
        out: List[Rect] = []
        for loop in self.boundaries.get((layer, datatype), []):
            rect = _loop_as_rect(loop)
            if rect is not None:
                out.append(rect)
            else:
                out.extend(polygon_to_rects(RectilinearPolygon(loop)))
        return out

    @property
    def layer_numbers(self) -> List[int]:
        return sorted({layer for layer, _ in self.boundaries if layer != DIE_LAYER})


# Shared with the streaming reader; re-exported under the historical
# names for callers that reached into this module directly.
_loop_as_rect = loop_as_rect
_path_to_loops = path_to_loops


def read_gdsii(data: bytes) -> GdsiiLibrary:
    """Parse a GDSII byte stream into a :class:`GdsiiLibrary`.

    Handles BOUNDARY elements (what the writer emits) and Manhattan
    PATH elements (common in industrial inputs), which are expanded to
    per-segment rectangles.  Unknown element types are skipped.
    """
    lib = GdsiiLibrary()
    reader = GdsiiStreamReader(data)
    for element in reader.elements():
        loops = lib.boundaries.setdefault((element.layer, element.datatype), [])
        loops.extend(element_loops(element))
    lib.name = reader.name
    lib.user_unit = reader.user_unit
    lib.db_unit_meters = reader.db_unit_meters
    lib.structure_names = reader.structure_names
    return lib


def _die_from_rects(die_rects: List[Rect]) -> Rect:
    """The die outline from the DIE_LAYER boundaries.

    A single outline is taken as-is; multiple outlines (abutted
    partition frames, doubled-up exports) merge into their bounding
    box — picking ``die_rects[0]`` would make the die depend on
    element order in the file.  The merge is reported on the events
    channel because it usually signals a malformed export.
    """
    if len(die_rects) == 1:
        return die_rects[0]
    die = bounding_box(die_rects)
    assert die is not None  # die_rects is non-empty
    obs.events.emit(
        "gdsii.multiple_die_outlines",
        level="warning",
        count=len(die_rects),
        die=str(die),
    )
    return die


def layout_from_gdsii(
    data: bytes, rules: Optional[DrcRules] = None
) -> Layout:
    """Reconstruct a :class:`Layout` from GDSII bytes.

    The die is taken from the reserved outline boundary on
    :data:`~repro.gdsii.writer.DIE_LAYER` when present (the bounding
    box of all such outlines when there are several), otherwise from
    the bounding box of all geometry.
    """
    lib = read_gdsii(data)
    die_rects = lib.rects(DIE_LAYER, WIRE_DATATYPE)
    if die_rects:
        die = _die_from_rects(die_rects)
    else:
        everything = [
            r
            for key in lib.boundaries
            for r in lib.rects(*key)
        ]
        die = bounding_box(everything)
        if die is None:
            raise ValueError("GDSII stream contains no geometry")
    layers = lib.layer_numbers
    num_layers = max(layers) if layers else 1
    layout = Layout(die, num_layers, rules, name=lib.name or "gdsii")
    for number in layers:
        layout.layer(number).add_wires(lib.rects(number, WIRE_DATATYPE))
        layout.layer(number).add_fills(lib.rects(number, FILL_DATATYPE))
    return layout
