"""GDSII reader: rebuild a :class:`~repro.layout.Layout` from a stream.

Parses the record subset the writer emits (plus tolerant skipping of
unknown elements) and reconstructs layers, wires and fills.  Rectangle
boundaries are recognised directly; non-rectangular rectilinear
boundaries are decomposed through Gourley–Green, mirroring the
"convert polygons to rectangles" front end of the paper's flow (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..geometry import Rect, RectilinearPolygon, bounding_box, polygon_to_rects
from ..layout import DrcRules, Layout
from .records import (
    DataType,
    RecordType,
    decode_ascii,
    decode_int2,
    decode_int4,
    decode_real8,
    iter_records,
)
from .writer import DIE_LAYER, FILL_DATATYPE, WIRE_DATATYPE

__all__ = ["GdsiiLibrary", "read_gdsii", "layout_from_gdsii"]


@dataclass
class GdsiiLibrary:
    """Raw parse result: library metadata plus boundaries per (layer, datatype)."""

    name: str = ""
    user_unit: float = 1e-3
    db_unit_meters: float = 1e-9
    structure_names: List[str] = field(default_factory=list)
    boundaries: Dict[Tuple[int, int], List[List[Tuple[int, int]]]] = field(
        default_factory=dict
    )

    def rects(self, layer: int, datatype: int) -> List[Rect]:
        """All boundaries on (layer, datatype) as rectangles.

        Rectangular loops convert directly; other rectilinear loops are
        decomposed with Gourley–Green.
        """
        out: List[Rect] = []
        for loop in self.boundaries.get((layer, datatype), []):
            rect = _loop_as_rect(loop)
            if rect is not None:
                out.append(rect)
            else:
                out.extend(polygon_to_rects(RectilinearPolygon(loop)))
        return out

    @property
    def layer_numbers(self) -> List[int]:
        return sorted({layer for layer, _ in self.boundaries if layer != DIE_LAYER})


def _loop_as_rect(loop: List[Tuple[int, int]]) -> Optional[Rect]:
    points = list(loop)
    if len(points) >= 2 and points[0] == points[-1]:
        points = points[:-1]
    if len(points) != 4:
        return None
    xs = sorted({p[0] for p in points})
    ys = sorted({p[1] for p in points})
    if len(xs) != 2 or len(ys) != 2:
        return None
    expected = {(xs[0], ys[0]), (xs[1], ys[0]), (xs[1], ys[1]), (xs[0], ys[1])}
    if set(points) != expected:
        return None
    return Rect(xs[0], ys[0], xs[1], ys[1])


def _path_to_loops(
    points: List[Tuple[int, int]], width: int
) -> List[List[Tuple[int, int]]]:
    """Expand a Manhattan PATH centreline into rectangle loops.

    Each axis-parallel segment becomes one rectangle of the path width
    (square-ended, the GDSII pathtype-2 convention rounded to the
    Manhattan case); diagonal segments are rejected.
    """
    half = width // 2
    if half <= 0:
        raise ValueError(f"PATH width {width} too small to expand")
    loops: List[List[Tuple[int, int]]] = []
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 == x1:
            ylo, yhi = min(y0, y1), max(y0, y1)
            rect = Rect(x0 - half, ylo - half, x0 + half, yhi + half)
        elif y0 == y1:
            xlo, xhi = min(x0, x1), max(x0, x1)
            rect = Rect(xlo - half, y0 - half, xhi + half, y0 + half)
        else:
            raise ValueError(
                f"non-Manhattan PATH segment ({x0},{y0})->({x1},{y1})"
            )
        loops.append(list(rect.corners()))
    return loops


def read_gdsii(data: bytes) -> GdsiiLibrary:
    """Parse a GDSII byte stream into a :class:`GdsiiLibrary`.

    Handles BOUNDARY elements (what the writer emits) and Manhattan
    PATH elements (common in industrial inputs), which are expanded to
    per-segment rectangles.  Unknown element types are skipped.
    """
    lib = GdsiiLibrary()
    element_layer: Optional[int] = None
    element_datatype: Optional[int] = None
    element_xy: Optional[List[int]] = None
    element_width = 0
    element_kind: Optional[str] = None
    for rec_type, data_type, payload in iter_records(data):
        if rec_type == RecordType.LIBNAME:
            lib.name = decode_ascii(payload)
        elif rec_type == RecordType.UNITS:
            lib.user_unit = decode_real8(payload[:8])
            lib.db_unit_meters = decode_real8(payload[8:])
        elif rec_type == RecordType.STRNAME:
            lib.structure_names.append(decode_ascii(payload))
        elif rec_type == RecordType.BOUNDARY:
            element_kind = "boundary"
            element_layer = element_datatype = element_xy = None
        elif rec_type == RecordType.PATH:
            element_kind = "path"
            element_layer = element_datatype = element_xy = None
            element_width = 0
        elif rec_type == RecordType.LAYER and element_kind:
            element_layer = decode_int2(payload)[0]
        elif rec_type == RecordType.DATATYPE and element_kind:
            element_datatype = decode_int2(payload)[0]
        elif rec_type == RecordType.WIDTH and element_kind == "path":
            element_width = decode_int4(payload)[0]
        elif rec_type == RecordType.XY and element_kind:
            element_xy = decode_int4(payload)
        elif rec_type == RecordType.ENDEL:
            if element_kind == "boundary":
                if element_layer is None or element_datatype is None or not element_xy:
                    raise ValueError("BOUNDARY element missing LAYER/DATATYPE/XY")
                loop = list(zip(element_xy[0::2], element_xy[1::2]))
                lib.boundaries.setdefault(
                    (element_layer, element_datatype), []
                ).append(loop)
            elif element_kind == "path":
                if element_layer is None or element_datatype is None or not element_xy:
                    raise ValueError("PATH element missing LAYER/DATATYPE/XY")
                points = list(zip(element_xy[0::2], element_xy[1::2]))
                for loop in _path_to_loops(points, element_width):
                    lib.boundaries.setdefault(
                        (element_layer, element_datatype), []
                    ).append(loop)
            element_kind = None
    return lib


def layout_from_gdsii(
    data: bytes, rules: Optional[DrcRules] = None
) -> Layout:
    """Reconstruct a :class:`Layout` from GDSII bytes.

    The die is taken from the reserved outline boundary on
    :data:`~repro.gdsii.writer.DIE_LAYER` when present, otherwise from
    the bounding box of all geometry.
    """
    lib = read_gdsii(data)
    die_rects = lib.rects(DIE_LAYER, WIRE_DATATYPE)
    if die_rects:
        die = die_rects[0]
    else:
        everything = [
            r
            for key in lib.boundaries
            for r in lib.rects(*key)
        ]
        die = bounding_box(everything)
        if die is None:
            raise ValueError("GDSII stream contains no geometry")
    layers = lib.layer_numbers
    num_layers = max(layers) if layers else 1
    layout = Layout(die, num_layers, rules, name=lib.name or "gdsii")
    for number in layers:
        layout.layer(number).add_wires(lib.rects(number, WIRE_DATATYPE))
        layout.layer(number).add_fills(lib.rects(number, FILL_DATATYPE))
    return layout
