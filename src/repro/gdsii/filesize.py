"""File-size accounting for the contest size score.

The size score s_fs (Eqn. (3)) normalises the solution GDSII volume by
a per-benchmark β given in megabytes (Table 2).  This module measures
and predicts those volumes.

The predictor matters to the engine: candidate selection prefers a few
large fills over many small ones precisely because every BOUNDARY
element has a fixed byte cost, and :func:`predict_fill_bytes` makes
that cost explicit.
"""

from __future__ import annotations

from ..layout import Layout
from .writer import gdsii_bytes

__all__ = [
    "BYTES_PER_BOUNDARY",
    "HEADER_OVERHEAD_BYTES",
    "measure_file_size",
    "predict_fill_bytes",
    "file_size_mb",
]

#: Bytes of one rectangle BOUNDARY element:
#: BOUNDARY(4) + LAYER(6) + DATATYPE(6) + XY(4 + 10*4) + ENDEL(4).
BYTES_PER_BOUNDARY = 4 + 6 + 6 + (4 + 40) + 4

#: Library/structure framing emitted once per file.
HEADER_OVERHEAD_BYTES = 6 + 28 + 6 + 20 + 28 + 8 + 4 + 4


def measure_file_size(layout: Layout, *, include_wires: bool = True) -> int:
    """Exact GDSII byte size of a layout (by serialising it)."""
    return len(gdsii_bytes(layout, include_wires=include_wires))


def predict_fill_bytes(num_fills: int) -> int:
    """Predicted incremental GDSII bytes for ``num_fills`` fill rects."""
    if num_fills < 0:
        raise ValueError("fill count cannot be negative")
    return num_fills * BYTES_PER_BOUNDARY


def file_size_mb(size_bytes: int) -> float:
    """Bytes → megabytes (the Table 2 β unit)."""
    return size_bytes / (1024.0 * 1024.0)
