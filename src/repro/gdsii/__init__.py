"""GDSII binary stream I/O (the contest's exchange format, §2.3)."""

from .filesize import (
    BYTES_PER_BOUNDARY,
    HEADER_OVERHEAD_BYTES,
    file_size_mb,
    measure_file_size,
    predict_fill_bytes,
)
from .reader import GdsiiLibrary, layout_from_gdsii, read_gdsii
from .records import DataType, RecordType, decode_real8, encode_real8
from .stream import (
    GdsiiElement,
    GdsiiStreamReader,
    element_loops,
    element_points,
    element_rects,
    iter_stream_records,
    loop_as_rect,
    path_to_loops,
)
from .writer import (
    DIE_LAYER,
    FILL_DATATYPE,
    WIRE_DATATYPE,
    GdsiiStreamWriter,
    gdsii_bytes,
    write_gdsii,
)

__all__ = [
    "BYTES_PER_BOUNDARY",
    "HEADER_OVERHEAD_BYTES",
    "file_size_mb",
    "measure_file_size",
    "predict_fill_bytes",
    "GdsiiLibrary",
    "layout_from_gdsii",
    "read_gdsii",
    "DataType",
    "RecordType",
    "decode_real8",
    "encode_real8",
    "GdsiiElement",
    "GdsiiStreamReader",
    "element_loops",
    "element_points",
    "element_rects",
    "iter_stream_records",
    "loop_as_rect",
    "path_to_loops",
    "DIE_LAYER",
    "FILL_DATATYPE",
    "WIRE_DATATYPE",
    "GdsiiStreamWriter",
    "gdsii_bytes",
    "write_gdsii",
]
