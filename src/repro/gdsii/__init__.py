"""GDSII binary stream I/O (the contest's exchange format, §2.3)."""

from .filesize import (
    BYTES_PER_BOUNDARY,
    HEADER_OVERHEAD_BYTES,
    file_size_mb,
    measure_file_size,
    predict_fill_bytes,
)
from .reader import GdsiiLibrary, layout_from_gdsii, read_gdsii
from .records import DataType, RecordType, decode_real8, encode_real8
from .writer import (
    DIE_LAYER,
    FILL_DATATYPE,
    WIRE_DATATYPE,
    gdsii_bytes,
    write_gdsii,
)

__all__ = [
    "BYTES_PER_BOUNDARY",
    "HEADER_OVERHEAD_BYTES",
    "file_size_mb",
    "measure_file_size",
    "predict_fill_bytes",
    "GdsiiLibrary",
    "layout_from_gdsii",
    "read_gdsii",
    "DataType",
    "RecordType",
    "decode_real8",
    "encode_real8",
    "DIE_LAYER",
    "FILL_DATATYPE",
    "WIRE_DATATYPE",
    "gdsii_bytes",
    "write_gdsii",
]
