"""Streaming GDSII reader: record iterator over a file-like source.

:func:`read_gdsii` materializes every boundary of the library before a
caller sees the first shape; on a multi-GB contest-class design that
is the peak-RSS wall the runtime/memory score term of the paper
(Eqn. (3)) grades.  This module is the out-of-core front end: a
buffered record iterator (:func:`iter_stream_records`) that never holds
more than one record plus one read-ahead chunk, and a
:class:`GdsiiStreamReader` that replays the exact element state machine
of :func:`~repro.gdsii.reader.read_gdsii` but *yields* elements and
shapes one at a time instead of building a
:class:`~repro.gdsii.reader.GdsiiLibrary`.

The element-to-rectangle conversions live here (``path_to_loops``,
``loop_as_rect``, ``element_rects``) and the in-memory reader is
rebased on them, so both paths share one set of geometry semantics —
including the exact-width asymmetric PATH expansion and the odd-XY
validation the streaming bucketer relies on.
"""

from __future__ import annotations

import io
import os
import struct
from dataclasses import dataclass
from typing import (
    BinaryIO,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..geometry import Rect, RectilinearPolygon, polygon_to_rects
from .records import (
    RecordType,
    decode_ascii,
    decode_int2,
    decode_int4,
    decode_real8,
)

__all__ = [
    "GdsiiElement",
    "GdsiiStreamReader",
    "element_loops",
    "element_points",
    "element_rects",
    "iter_stream_records",
    "loop_as_rect",
    "path_to_loops",
]

_HEADER = struct.Struct(">HBB")

#: read-ahead granularity of the buffered record iterator
DEFAULT_CHUNK_SIZE = 1 << 16

Source = Union[bytes, bytearray, memoryview, str, "os.PathLike[str]", BinaryIO]


def iter_stream_records(
    stream: BinaryIO, *, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[Tuple[int, int, int, bytes]]:
    """Yield ``(offset, rec_type, data_type, payload)`` from a stream.

    The streaming counterpart of
    :func:`~repro.gdsii.records.iter_records`: same framing, same
    termination (ENDLIB or zero-length padding), same error classes —
    but reads the source in ``chunk_size`` slices, so memory use is
    bounded by the largest single record, not the file.  The yielded
    ``offset`` is the byte position of the record header in the
    stream, for error attribution by downstream consumers.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    buf = b""
    pos = 0
    base = 0  # stream offset of buf[0]
    eof = False

    def refill(need: int) -> int:
        """Ensure ``need`` bytes are available at ``pos``; return count."""
        nonlocal buf, pos, base, eof
        avail = len(buf) - pos
        if avail >= need:
            return avail
        if pos:
            base += pos
            buf = buf[pos:]
            pos = 0
        parts = [buf]
        while avail < need and not eof:
            chunk = stream.read(max(chunk_size, need - avail))
            if not chunk:
                eof = True
                break
            parts.append(chunk)
            avail += len(chunk)
        buf = b"".join(parts)
        return len(buf) - pos

    while True:
        offset = base + pos
        got = refill(_HEADER.size)
        if got == 0:
            return
        if got < _HEADER.size:
            raise ValueError(f"truncated GDSII stream at byte {offset}")
        length, rec_type, data_type = _HEADER.unpack_from(buf, pos)
        if length == 0:
            return  # tape padding
        if length < _HEADER.size:
            raise ValueError(f"corrupt record at byte {offset}")
        if refill(length) < length:
            raise ValueError(f"corrupt record at byte {offset}")
        payload = buf[pos + _HEADER.size : pos + length]
        pos += length
        yield offset, rec_type, data_type, payload
        if rec_type == RecordType.ENDLIB:
            return


@dataclass(frozen=True)
class GdsiiElement:
    """One parsed geometry element, positionally attributed.

    ``xy`` is the flat coordinate list of the XY record; ``offset`` is
    the byte position of the element's opening record in the stream,
    carried so conversion errors can name where the element lives.
    """

    kind: str  # "boundary" | "path"
    layer: int
    datatype: int
    xy: Tuple[int, ...]
    width: int = 0
    offset: int = 0


def element_points(element: GdsiiElement) -> List[Tuple[int, int]]:
    """The element's coordinate pairs, validated.

    An odd coordinate count means the XY record lost (or grew) half a
    point — silently pairing ``xy[0::2]`` with ``xy[1::2]`` would drop
    the trailing coordinate and shift nothing else, which corrupts
    geometry undetectably.  Raise instead, naming the element.
    """
    if len(element.xy) % 2:
        raise ValueError(
            f"{element.kind.upper()} element at byte {element.offset} has "
            f"an odd XY coordinate count ({len(element.xy)})"
        )
    return list(zip(element.xy[0::2], element.xy[1::2]))


def path_to_loops(
    points: List[Tuple[int, int]], width: int
) -> List[List[Tuple[int, int]]]:
    """Expand a Manhattan PATH centreline into rectangle loops.

    Each axis-parallel segment becomes one rectangle of the path width
    (square-ended, the GDSII pathtype-2 convention rounded to the
    Manhattan case); diagonal segments are rejected.  Odd widths split
    asymmetrically (``width // 2`` below/left of the centreline, the
    remainder above/right) so the rendered extent is exactly ``width``
    — a symmetric ``width // 2`` split would render a width-``w`` path
    ``w - 1`` wide and silently under-count density on round-trip.
    """
    if width <= 0:
        raise ValueError(f"PATH width {width} too small to expand")
    half_lo = width // 2
    half_hi = width - half_lo
    loops: List[List[Tuple[int, int]]] = []
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x0 == x1:
            ylo, yhi = min(y0, y1), max(y0, y1)
            rect = Rect(x0 - half_lo, ylo - half_lo, x0 + half_hi, yhi + half_hi)
        elif y0 == y1:
            xlo, xhi = min(x0, x1), max(x0, x1)
            rect = Rect(xlo - half_lo, y0 - half_lo, xhi + half_hi, y0 + half_hi)
        else:
            raise ValueError(
                f"non-Manhattan PATH segment ({x0},{y0})->({x1},{y1})"
            )
        loops.append(list(rect.corners()))
    return loops


def loop_as_rect(loop: List[Tuple[int, int]]) -> Optional[Rect]:
    """The loop as a :class:`Rect` when it is an axis-aligned box."""
    points = list(loop)
    if len(points) >= 2 and points[0] == points[-1]:
        points = points[:-1]
    if len(points) != 4:
        return None
    xs = sorted({p[0] for p in points})
    ys = sorted({p[1] for p in points})
    if len(xs) != 2 or len(ys) != 2:
        return None
    expected = {(xs[0], ys[0]), (xs[1], ys[0]), (xs[1], ys[1]), (xs[0], ys[1])}
    if set(points) != expected:
        return None
    return Rect(xs[0], ys[0], xs[1], ys[1])


def element_loops(element: GdsiiElement) -> List[List[Tuple[int, int]]]:
    """The element's geometry as point loops (one per rectangle)."""
    points = element_points(element)
    if element.kind == "path":
        return path_to_loops(points, element.width)
    return [points]


def element_rects(element: GdsiiElement) -> List[Rect]:
    """The element's geometry as rectangles.

    Rectangular loops convert directly; other rectilinear loops are
    decomposed with Gourley–Green — the same conversion
    :meth:`GdsiiLibrary.rects` applies, so streamed shapes match the
    in-memory parse rect for rect.
    """
    out: List[Rect] = []
    for loop in element_loops(element):
        rect = loop_as_rect(loop)
        if rect is not None:
            out.append(rect)
        else:
            out.extend(polygon_to_rects(RectilinearPolygon(loop)))
    return out


class GdsiiStreamReader:
    """Pull-based GDSII element reader over a file or byte source.

    Accepts raw bytes (wrapped in a :class:`io.BytesIO`), a filesystem
    path (opened, and closed when iteration finishes), or any readable
    binary stream.  Library metadata (``name``, units, structure
    names) is populated as the corresponding records stream past — it
    is complete only once iteration has reached the first element, or
    the end of the stream.
    """

    def __init__(self, source: Source, *, chunk_size: int = DEFAULT_CHUNK_SIZE):
        self._owns_stream = False
        if isinstance(source, (bytes, bytearray, memoryview)):
            self._stream: BinaryIO = io.BytesIO(bytes(source))
        elif isinstance(source, (str, os.PathLike)):
            self._stream = open(source, "rb")
            self._owns_stream = True
        else:
            self._stream = source
        self._chunk_size = chunk_size
        self.name = ""
        self.user_unit = 1e-3
        self.db_unit_meters = 1e-9
        self.structure_names: List[str] = []

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def elements(self) -> Iterator[GdsiiElement]:
        """Yield geometry elements in stream order.

        The same record subset and tolerance as
        :func:`~repro.gdsii.reader.read_gdsii` (BOUNDARY and Manhattan
        PATH; unknown elements skipped), with the element's byte
        offset attached for error attribution.
        """
        element_layer: Optional[int] = None
        element_datatype: Optional[int] = None
        element_xy: Optional[List[int]] = None
        element_width = 0
        element_kind: Optional[str] = None
        element_offset = 0
        try:
            records = iter_stream_records(
                self._stream, chunk_size=self._chunk_size
            )
            for offset, rec_type, _data_type, payload in records:
                if rec_type == RecordType.LIBNAME:
                    self.name = decode_ascii(payload)
                elif rec_type == RecordType.UNITS:
                    self.user_unit = decode_real8(payload[:8])
                    self.db_unit_meters = decode_real8(payload[8:])
                elif rec_type == RecordType.STRNAME:
                    self.structure_names.append(decode_ascii(payload))
                elif rec_type == RecordType.BOUNDARY:
                    element_kind = "boundary"
                    element_layer = element_datatype = element_xy = None
                    element_offset = offset
                elif rec_type == RecordType.PATH:
                    element_kind = "path"
                    element_layer = element_datatype = element_xy = None
                    element_width = 0
                    element_offset = offset
                elif rec_type == RecordType.LAYER and element_kind:
                    element_layer = decode_int2(payload)[0]
                elif rec_type == RecordType.DATATYPE and element_kind:
                    element_datatype = decode_int2(payload)[0]
                elif rec_type == RecordType.WIDTH and element_kind == "path":
                    element_width = decode_int4(payload)[0]
                elif rec_type == RecordType.XY and element_kind:
                    element_xy = decode_int4(payload)
                elif rec_type == RecordType.ENDEL and element_kind:
                    if (
                        element_layer is None
                        or element_datatype is None
                        or not element_xy
                    ):
                        raise ValueError(
                            f"{element_kind.upper()} element missing "
                            f"LAYER/DATATYPE/XY (element at byte "
                            f"{element_offset})"
                        )
                    yield GdsiiElement(
                        kind=element_kind,
                        layer=element_layer,
                        datatype=element_datatype,
                        xy=tuple(element_xy),
                        width=element_width,
                        offset=element_offset,
                    )
                    element_kind = None
        finally:
            self.close()

    def shapes(self) -> Iterator[Tuple[int, int, Rect]]:
        """Yield ``(layer, datatype, rect)`` in stream order.

        For each ``(layer, datatype)`` key the rect sequence equals
        :meth:`GdsiiLibrary.rects` of the in-memory parse — elements
        appear in file order and each element expands in the same
        loop-to-rect order.
        """
        for element in self.elements():
            for rect in element_rects(element):
                yield element.layer, element.datatype, rect

    def __enter__(self) -> "GdsiiStreamReader":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
