"""GDSII stream-format records.

GDSII is the contest's standard input and output format (paper §2.3);
the *file-size score* s_fs of Eqn. (3) is computed from the bytes of
the solution GDSII, so this reproduction implements the binary format
from scratch rather than approximating the size.

A GDSII file is a flat sequence of records::

    +--------+--------+----------+---------+
    | length (2B, BE) | rec type | datatype|  payload (length-4 bytes)
    +--------+--------+----------+---------+

where ``length`` includes the 4 header bytes.  Payload encodings used
here: 2-byte integers, 4-byte integers, ASCII (padded to even length),
and the 8-byte excess-64 base-16 floating-point format unique to GDSII.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Sequence, Tuple

__all__ = [
    "RecordType",
    "DataType",
    "pack_record",
    "iter_records",
    "encode_real8",
    "decode_real8",
    "encode_int2",
    "encode_int4",
    "decode_int2",
    "decode_int4",
    "encode_ascii",
    "decode_ascii",
]


class RecordType:
    """GDSII record type codes (the subset a fill flow needs)."""

    HEADER = 0x00
    BGNLIB = 0x01
    LIBNAME = 0x02
    UNITS = 0x03
    ENDLIB = 0x04
    BGNSTR = 0x05
    STRNAME = 0x06
    ENDSTR = 0x07
    BOUNDARY = 0x08
    PATH = 0x09
    SREF = 0x0A
    LAYER = 0x0D
    DATATYPE = 0x0E
    WIDTH = 0x0F
    XY = 0x10
    ENDEL = 0x11
    SNAME = 0x12


class DataType:
    """GDSII data type codes."""

    NO_DATA = 0x00
    BITARRAY = 0x01
    INT2 = 0x02
    INT4 = 0x03
    REAL4 = 0x04
    REAL8 = 0x05
    ASCII = 0x06


# ----------------------------------------------------------------------
# scalar encodings
# ----------------------------------------------------------------------
def encode_int2(values: Sequence[int]) -> bytes:
    return struct.pack(f">{len(values)}h", *values)


def decode_int2(payload: bytes) -> List[int]:
    count = len(payload) // 2
    return list(struct.unpack(f">{count}h", payload))


def encode_int4(values: Sequence[int]) -> bytes:
    return struct.pack(f">{len(values)}i", *values)


def decode_int4(payload: bytes) -> List[int]:
    count = len(payload) // 4
    return list(struct.unpack(f">{count}i", payload))


def encode_ascii(text: str) -> bytes:
    raw = text.encode("ascii")
    if len(raw) % 2:
        raw += b"\0"
    return raw


def decode_ascii(payload: bytes) -> str:
    return payload.rstrip(b"\0").decode("ascii")


def encode_real8(value: float) -> bytes:
    """Encode a float in GDSII 8-byte excess-64 base-16 format.

    Layout: 1 sign bit, 7 exponent bits (excess 64, radix 16), 56
    mantissa bits with the value ``(-1)^s * mantissa * 16^(exp-64)``
    where ``mantissa`` is a binary fraction in [1/16, 1).
    """
    if value == 0.0:  # repro: noqa[REP005] — exact zero maps to the all-zero GDSII real
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    # Normalise the mantissa into [1/16, 1).
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    if not (0 <= exponent <= 127):
        raise OverflowError("value out of range for GDSII real8")
    mantissa = int(value * (1 << 56))
    out = bytearray(8)
    out[0] = sign | exponent
    for i in range(7, 0, -1):
        out[i] = mantissa & 0xFF
        mantissa >>= 8
    return bytes(out)


def decode_real8(payload: bytes) -> float:
    """Decode a GDSII 8-byte real."""
    if len(payload) != 8:
        raise ValueError("real8 payload must be exactly 8 bytes")
    if payload == b"\x00" * 8:
        return 0.0
    sign = -1.0 if payload[0] & 0x80 else 1.0
    exponent = (payload[0] & 0x7F) - 64
    mantissa = 0
    for byte in payload[1:]:
        mantissa = (mantissa << 8) | byte
    return sign * (mantissa / float(1 << 56)) * (16.0 ** exponent)


# ----------------------------------------------------------------------
# record framing
# ----------------------------------------------------------------------
def pack_record(rec_type: int, data_type: int, payload: bytes = b"") -> bytes:
    """Frame one record (2-byte length, type, datatype, payload)."""
    length = len(payload) + 4
    if length > 0xFFFF:
        raise ValueError("record payload too large for GDSII framing")
    return struct.pack(">HBB", length, rec_type, data_type) + payload


def iter_records(data: bytes) -> Iterator[Tuple[int, int, bytes]]:
    """Yield ``(rec_type, data_type, payload)`` for each record.

    Stops at the ENDLIB record or at zero-padding (GDSII files are
    commonly padded to a 2048-byte multiple with nulls).
    """
    offset = 0
    size = len(data)
    while offset + 4 <= size:
        length, rec_type, data_type = struct.unpack_from(">HBB", data, offset)
        if length == 0:
            return  # trailing null padding
        if length < 4 or offset + length > size:
            raise ValueError(f"corrupt record at byte {offset}")
        payload = data[offset + 4 : offset + length]
        yield rec_type, data_type, payload
        if rec_type == RecordType.ENDLIB:
            return
        offset += length
    if offset != size:
        raise ValueError("truncated GDSII stream")
