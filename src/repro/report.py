"""Markdown run reports for fill jobs.

Production fill tools emit a signoff report alongside the filled
layout; this module renders one from the engine's
:class:`~repro.core.engine.FillReport` plus measurements taken on the
result: per-layer density metrics before/after, per-stage timings,
DRC status, and (when score weights are supplied) the full contest
score card.  The CLI's ``fill --report`` writes it next to the output
GDSII.
"""

from __future__ import annotations

from typing import List, Optional

from .core.engine import FillReport
from .density import (
    ScoreWeights,
    compute_metrics,
    metal_density_map,
    score_layout,
    wire_density_map,
)
from .gdsii import file_size_mb, measure_file_size
from .layout import Layout, WindowGrid

__all__ = ["render_report"]


def _metrics_table(layout: Layout, grid: WindowGrid) -> List[str]:
    lines = [
        "| Layer | Wire density | Wire σ | Total density | Total σ | lh | oh | #Fills |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for layer in layout.layers:
        wires = compute_metrics(wire_density_map(layer, grid))
        total = compute_metrics(metal_density_map(layer, grid))
        lines.append(
            f"| {layer.number} | {wires.mean:.3f} | {wires.sigma:.4f} "
            f"| {total.mean:.3f} | {total.sigma:.4f} "
            f"| {total.line:.3f} | {total.outlier:.4f} "
            f"| {layer.num_fills} |"
        )
    return lines


def render_report(
    layout: Layout,
    grid: WindowGrid,
    report: FillReport,
    *,
    weights: Optional[ScoreWeights] = None,
    title: str = "Dummy fill run report",
) -> str:
    """Render a markdown report for a completed fill run.

    ``layout`` must be the *filled* layout the ``report`` describes.
    """
    lines: List[str] = [f"# {title}", ""]
    lines.append(
        f"Layout `{layout.name}`: die {layout.die}, "
        f"{layout.num_layers} layers, {layout.num_wires} wires; "
        f"window grid {grid.cols}x{grid.rows}."
    )
    lines.append("")

    lines.append("## Result")
    lines.append("")
    lines.append(
        f"* fills inserted: **{report.num_fills}** "
        f"(from {report.num_candidates} candidates, "
        f"{report.sizing.dropped_fills} dropped)"
    )
    lines.append(
        f"* sizing: {report.sizing.lp_solves} LP solves over "
        f"{report.sizing.variables} variables / "
        f"{report.sizing.constraints} constraints"
    )
    size_bytes = measure_file_size(layout)
    lines.append(
        f"* solution GDSII: {size_bytes} bytes "
        f"({file_size_mb(size_bytes):.3f} MB)"
    )
    violations = layout.check_drc()
    status = "clean" if not violations else f"**{len(violations)} violations**"
    lines.append(f"* DRC: {status}")
    lines.append("")

    lines.append("## Target densities")
    lines.append("")
    lines.append("| Layer | Initial plan td | Final plan td | Case |")
    lines.append("|---|---|---|---|")
    for n in sorted(report.final_plan.layers):
        initial = report.initial_plan.layers[n]
        final = report.final_plan.layers[n]
        lines.append(
            f"| {n} | {initial.td:.3f} | {final.td:.3f} | {final.case} |"
        )
    lines.append("")

    lines.append("## Density metrics (after fill)")
    lines.append("")
    lines.extend(_metrics_table(layout, grid))
    lines.append("")

    lines.append("## Stage timings")
    lines.append("")
    lines.append("| Stage | Seconds |")
    lines.append("|---|---|")
    for stage, secs in report.stage_seconds.items():
        lines.append(f"| {stage} | {secs:.3f} |")
    lines.append(f"| **total** | **{report.total_seconds:.3f}** |")
    lines.append("")

    if weights is not None:
        card = score_layout(
            layout,
            grid,
            weights,
            file_size=file_size_mb(size_bytes),
            runtime=report.total_seconds,
        )
        lines.append("## Contest score card")
        lines.append("")
        lines.append("| Component | Score |")
        lines.append("|---|---|")
        for name, value in card.as_row().items():
            lines.append(f"| {name} | {value:.3f} |")
        lines.append("")
    return "\n".join(lines)
