"""Command-line entry point: ``python -m repro.check [paths...]``.

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .findings import render_json, render_text
from .rules import RULE_REGISTRY, all_rule_codes, select_rules
from .runner import analyze_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description=(
            "Codebase-aware static analysis for the dummy-fill engine: "
            "integer-dbu discipline, DRC parameter provenance, density "
            "comparison hygiene and export consistency."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule counts to text output",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in all_rule_codes():
            cls = RULE_REGISTRY[code]
            scope = ", ".join(cls.scopes) if cls.scopes else "all files"
            print(f"{code}  [{cls.default_severity}]  {cls.summary}  ({scope})")
        return 0

    try:
        rules = select_rules(_split_codes(args.select), _split_codes(args.ignore))
    except KeyError as exc:
        print(f"repro.check: {exc.args[0]}", file=sys.stderr)
        return 2

    result = analyze_paths(args.paths, rules=rules)
    if result.checked_files == 0:
        print("repro.check: no Python files found", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result.findings, checked_files=result.checked_files))
    else:
        print(render_text(result.findings))
        print(
            f"checked {result.checked_files} file(s), "
            f"{result.suppressed} finding(s) suppressed by noqa"
        )
        if args.statistics and result.findings:
            counts: dict = {}
            for f in result.findings:
                counts[f.code] = counts.get(f.code, 0) + 1
            for code in sorted(counts):
                print(f"{code}: {counts[code]}")

    return 1 if result.findings else 0
