"""Command-line entry point: ``python -m repro.check [paths...]``.

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .baseline import (
    BaselineError,
    apply_baseline,
    baseline_counts,
    load_baseline,
    ratchet_violations,
    write_baseline,
)
from .findings import render_github, render_json, render_text
from .rules import RULE_REGISTRY, all_rule_codes, select_rules
from .runner import analyze_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.check",
        description=(
            "Codebase-aware static analysis for the dummy-fill engine: "
            "integer-dbu discipline, DRC parameter provenance, density "
            "comparison hygiene and export consistency."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format: text, json, or github (GitHub Actions "
        "::error/::warning workflow commands that render as inline PR "
        "annotations) (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        help="ratchet file of known findings ('path::code' -> count); "
        "baselined findings are waived, anything beyond the baselined "
        "count fails, and counts may only go down",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline from the current findings; refuses to "
        "raise any existing key's count (fix new debt, don't baseline it)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule counts to text output",
    )
    return parser


def _split_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [c.strip() for c in raw.split(",") if c.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in all_rule_codes():
            cls = RULE_REGISTRY[code]
            scope = ", ".join(cls.scopes) if cls.scopes else "all files"
            print(f"{code}  [{cls.default_severity}]  {cls.summary}  ({scope})")
        return 0

    try:
        rules = select_rules(_split_codes(args.select), _split_codes(args.ignore))
    except KeyError as exc:
        print(f"repro.check: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.update_baseline and args.baseline is None:
        print("repro.check: --update-baseline requires --baseline", file=sys.stderr)
        return 2

    result = analyze_paths(args.paths, rules=rules)
    if result.checked_files == 0:
        print("repro.check: no Python files found", file=sys.stderr)
        return 2

    findings = result.findings
    baselined = 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"repro.check: {exc}", file=sys.stderr)
            return 2
        current = baseline_counts(findings)
        if args.update_baseline:
            regressions = ratchet_violations(current, baseline)
            if regressions:
                print(
                    "repro.check: refusing to loosen the baseline ratchet:",
                    file=sys.stderr,
                )
                for line in regressions:
                    print(f"  {line}", file=sys.stderr)
                return 1
            write_baseline(args.baseline, current)
            print(
                f"baseline updated: {len([c for c in current.values() if c])} "
                f"key(s), {sum(current.values())} finding(s) "
                f"(was {len(baseline)} key(s), {sum(baseline.values())})"
            )
            return 0
        findings, baselined = apply_baseline(findings, baseline)

    if args.format == "json":
        print(
            render_json(
                findings,
                checked_files=result.checked_files,
                suppressed=result.suppressed,
                suppressed_by_code=result.suppressed_by_code,
            )
        )
    elif args.format == "github":
        output = render_github(findings)
        if output:
            print(output)
    else:
        print(render_text(findings))
        suffix = f", {baselined} baselined" if args.baseline is not None else ""
        print(
            f"checked {result.checked_files} file(s), "
            f"{result.suppressed} finding(s) suppressed by noqa{suffix}"
        )
        if args.statistics:
            counts: dict = {}
            for f in findings:
                counts[f.code] = counts.get(f.code, 0) + 1
            for code in sorted(counts):
                print(f"{code}: {counts[code]}")
            for code in sorted(result.suppressed_by_code):
                print(f"{code}: {result.suppressed_by_code[code]} suppressed")

    return 1 if findings else 0
