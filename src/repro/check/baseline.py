"""Baseline ratchet for incremental rule adoption.

A new rule landing on an existing tree usually finds existing debt.
The baseline file records that debt as ``"path::code" -> count`` so the
CI gate can stay red-free *today* while refusing any regression: counts
may only go **down**.  Once a key's findings are fixed,
``--update-baseline`` drops the key and the fix is locked in — the
ratchet never loosens.

File format (JSON, committed next to the CI config)::

    {
      "version": 1,
      "baseline": {
        "src/repro/core/sizing.py::REP011": 2,
        "benchmarks/run.py::REP008": 1
      }
    }

Keys are per *file and rule*, not per line, so unrelated edits moving a
finding a few lines does not churn the baseline; two keys regress
independently.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .findings import Finding

__all__ = [
    "BaselineError",
    "load_baseline",
    "write_baseline",
    "baseline_counts",
    "apply_baseline",
    "ratchet_violations",
]

_BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed or the update loosens the ratchet."""


def baseline_counts(findings: Sequence[Finding]) -> Dict[str, int]:
    """Current findings folded to the baseline key space."""
    counts: Dict[str, int] = {}
    for f in findings:
        key = f"{f.path}::{f.code}"
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    p = Path(path)
    if not p.exists():
        return {}
    try:
        doc = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {p}: {exc}") from exc
    if not isinstance(doc, dict) or not isinstance(doc.get("baseline"), dict):
        raise BaselineError(f"baseline {p} is not a {{'baseline': {{...}}}} document")
    out: Dict[str, int] = {}
    for key, count in doc["baseline"].items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise BaselineError(
                f"baseline {p}: entry {key!r}: {count!r} is not a positive count"
            )
        out[key] = count
    return out


def write_baseline(path: Union[str, Path], counts: Dict[str, int]) -> None:
    """Write the baseline file (zero-count keys are dropped)."""
    doc = {
        "version": _BASELINE_VERSION,
        "baseline": {k: v for k, v in sorted(counts.items()) if v > 0},
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], int]:
    """Split findings into (reported, baselined-away count).

    Per key, up to the baselined count of findings is waived — the
    *first* ones in the stable sort order, so which lines are waived is
    deterministic — and everything beyond the allowance is reported.
    A fixed finding therefore never hides a newly introduced one: the
    allowance is a count, and the count may only shrink.
    """
    remaining = dict(baseline)
    reported: List[Finding] = []
    waived = 0
    for f in findings:
        key = f"{f.path}::{f.code}"
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            waived += 1
        else:
            reported.append(f)
    return reported, waived


def ratchet_violations(
    current: Dict[str, int], baseline: Dict[str, int]
) -> List[str]:
    """Keys whose count went *up* against the baseline.

    Used by ``--update-baseline``: rewriting the file is allowed to
    drop keys and lower counts (the ratchet tightening), and to add
    keys for rules that did not exist when the baseline was written,
    but never to raise an existing key — new debt in an already
    baselined file/rule must be fixed, not re-baselined.
    """
    out: List[str] = []
    for key, count in sorted(current.items()):
        if key in baseline and count > baseline[key]:
            out.append(f"{key}: {baseline[key]} -> {count}")
    return out
