"""Module entry point for ``python -m repro.check``."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # stdout was closed early (e.g. `... | head`); exit quietly
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 1
    sys.exit(code)
