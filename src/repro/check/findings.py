"""Findings and reporting for the ``repro.check`` static-analysis pass.

A :class:`Finding` is one rule violation at one source location.  The
renderers turn a list of findings into the three supported output
formats: a compact ``path:line:col`` text listing (for humans and
editors), a stable JSON document (for CI and tooling), and GitHub
Actions workflow commands (``::error file=...``) that surface as
inline annotations on pull requests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence

__all__ = [
    "Severity",
    "Finding",
    "sort_findings",
    "render_text",
    "render_json",
    "render_github",
    "JSON_SCHEMA_VERSION",
]

#: bumped to 2 when suppression accounting ("suppressed",
#: "suppressed_by_code") joined the counts block
JSON_SCHEMA_VERSION = 2


class Severity(Enum):
    """How seriously a finding should be taken.

    ``ERROR`` marks a construct that is wrong in this codebase (a float
    reaching a dbu coordinate, a mutable default); ``WARNING`` marks a
    construct that is suspicious and needs either a fix or an explicit
    ``# repro: noqa[RULE]`` acknowledgement.  Both fail the CI gate —
    the tree is kept clean of both.
    """

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    code: str
    message: str
    path: str
    line: int
    col: int
    severity: Severity = Severity.ERROR

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
        }

    def __str__(self) -> str:
        return f"{self.location()}: {self.code} {self.severity}: {self.message}"


def sort_findings(findings: Sequence[Finding]) -> List[Finding]:
    """Stable order: by path, then line/col, then rule code."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable listing, one finding per line, plus a summary."""
    ordered = sort_findings(findings)
    lines = [str(f) for f in ordered]
    errors = sum(1 for f in ordered if f.severity is Severity.ERROR)
    warnings = len(ordered) - errors
    if ordered:
        lines.append(f"found {len(ordered)} finding(s): {errors} error(s), {warnings} warning(s)")
    else:
        lines.append("clean: no findings")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    *,
    checked_files: int = 0,
    suppressed: int = 0,
    suppressed_by_code: Optional[Dict[str, int]] = None,
) -> str:
    """Stable JSON document for CI consumption.

    Layout::

        {
          "version": 2,
          "checked_files": 12,
          "counts": {"total": 2, "error": 1, "warning": 1,
                     "suppressed": 1,
                     "by_code": {"REP003": 2},
                     "suppressed_by_code": {"REP005": 1}},
          "findings": [{"code": ..., "message": ..., "path": ...,
                        "line": ..., "col": ..., "severity": ...}, ...]
        }

    ``suppressed`` counts findings waived by ``# repro: noqa`` — they
    are absent from ``findings`` but never absent from the accounting,
    so a suppression added by a PR is visible in the CI diff.
    """
    ordered = sort_findings(findings)
    by_code: Dict[str, int] = {}
    for f in ordered:
        by_code[f.code] = by_code.get(f.code, 0) + 1
    doc = {
        "version": JSON_SCHEMA_VERSION,
        "checked_files": checked_files,
        "counts": {
            "total": len(ordered),
            "error": sum(1 for f in ordered if f.severity is Severity.ERROR),
            "warning": sum(1 for f in ordered if f.severity is Severity.WARNING),
            "suppressed": suppressed,
            "by_code": dict(sorted(by_code.items())),
            "suppressed_by_code": dict(sorted((suppressed_by_code or {}).items())),
        },
        "findings": [f.to_dict() for f in ordered],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def _escape_github(value: str, *, property_value: bool = False) -> str:
    """Escape a string for a GitHub Actions workflow command.

    Message data escapes ``%``, CR and LF; property values (the
    ``file=...`` parts) additionally escape ``:`` and ``,``, which
    delimit properties.
    """
    out = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        out = out.replace(":", "%3A").replace(",", "%2C")
    return out


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions workflow commands, one annotation per finding.

    Each line is ``::error file=...,line=...,col=...,title=...::msg``
    (``::warning`` for warnings); when the job runs in Actions these
    render as inline annotations on the touched lines of the pull
    request, so a REP violation is visible in the review diff without
    opening the job log.
    """
    ordered = sort_findings(findings)
    lines: List[str] = []
    for f in ordered:
        level = "error" if f.severity is Severity.ERROR else "warning"
        props = (
            f"file={_escape_github(f.path, property_value=True)},"
            f"line={f.line},col={max(1, f.col + 1)},"
            f"title={_escape_github(f.code, property_value=True)}"
        )
        lines.append(f"::{level} {props}::{_escape_github(f.message)}")
    return "\n".join(lines)
