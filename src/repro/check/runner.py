"""Analysis driver: walk files, parse, run rules, apply suppressions.

Suppression syntax (line-scoped, matching the finding's line)::

    risky_line()  # repro: noqa            — suppress every rule here
    risky_line()  # repro: noqa[REP005]    — suppress listed rules only
    risky_line()  # repro: noqa[REP001,REP005]

Suppressions are deliberately loud in the source — grep for
``repro: noqa`` to audit every waived invariant.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from .findings import Finding, Severity, sort_findings
from .rules import ModuleContext, Rule, select_rules

__all__ = [
    "NoqaDirectives",
    "collect_noqa",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
    "AnalysisResult",
]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[\s*(?P<codes>[A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)\s*\])?",
)

#: directories never worth descending into
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "venv", "build", "dist", ".mypy_cache"}


class NoqaDirectives:
    """Per-line suppression table for one file."""

    def __init__(self) -> None:
        #: line -> None (blanket) or set of rule codes
        self._lines: Dict[int, Optional[Set[str]]] = {}

    def add(self, line: int, codes: Optional[Set[str]]) -> None:
        if codes is None:
            self._lines[line] = None  # blanket suppression wins
            return
        if line in self._lines and self._lines[line] is None:
            return  # already blanket-suppressed
        self._lines.setdefault(line, set()).update(codes)  # type: ignore[union-attr]

    def suppresses(self, finding: Finding) -> bool:
        if finding.line not in self._lines:
            return False
        codes = self._lines[finding.line]
        return codes is None or finding.code in codes

    def __len__(self) -> int:
        return len(self._lines)


def collect_noqa(source: str) -> NoqaDirectives:
    """Extract ``# repro: noqa`` directives from comment tokens.

    Tokenising (rather than regexing raw lines) keeps a ``noqa`` inside
    a string literal from acting as a directive.  Falls back to a plain
    line scan when the file cannot be tokenised.
    """
    directives = NoqaDirectives()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            _scan_comment(directives, lineno, line)
        return directives
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            _scan_comment(directives, tok.start[0], tok.string)
    return directives


def _scan_comment(directives: NoqaDirectives, lineno: int, text: str) -> None:
    m = _NOQA_RE.search(text)
    if not m:
        return
    codes = m.group("codes")
    if codes is None:
        directives.add(lineno, None)
    else:
        directives.add(lineno, {c.strip() for c in codes.split(",")})


class AnalysisResult:
    """Findings plus bookkeeping for one analysis run.

    Suppressions are counted, not dropped: ``suppressed`` and
    ``suppressed_by_code`` account for every finding waived by a
    ``# repro: noqa`` directive so waived debt stays visible in
    reports.
    """

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.checked_files: int = 0
        self.suppressed: int = 0
        self.suppressed_by_code: Dict[str, int] = {}

    def extend(self, other: "AnalysisResult") -> None:
        self.findings.extend(other.findings)
        self.checked_files += other.checked_files
        self.suppressed += other.suppressed
        for code, count in other.suppressed_by_code.items():
            self.suppressed_by_code[code] = self.suppressed_by_code.get(code, 0) + count

    @property
    def has_errors(self) -> bool:
        return any(f.severity is Severity.ERROR for f in self.findings)


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisResult:
    """Analyze one module given as a string (the test-facing API)."""
    result = AnalysisResult()
    result.checked_files = 1
    active = list(rules) if rules is not None else select_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                code="REP000",
                message=f"syntax error: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                severity=Severity.ERROR,
            )
        )
        return result
    ctx = ModuleContext(path, source, tree)
    noqa = collect_noqa(source)
    for rule in active:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if noqa.suppresses(finding):
                result.suppressed += 1
                result.suppressed_by_code[finding.code] = (
                    result.suppressed_by_code.get(finding.code, 0) + 1
                )
            else:
                result.findings.append(finding)
    result.findings = sort_findings(result.findings)
    return result


def analyze_file(
    path: Union[str, Path], rules: Optional[Sequence[Rule]] = None
) -> AnalysisResult:
    """Analyze one file on disk."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        result = AnalysisResult()
        result.checked_files = 1
        result.findings.append(
            Finding(
                code="REP000",
                message=f"cannot read file: {exc}",
                path=str(p),
                line=1,
                col=0,
                severity=Severity.ERROR,
            )
        )
        return result
    return analyze_source(source, path=str(p), rules=rules)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.add(sub)
        elif p.suffix == ".py":
            out.add(p)
    return sorted(out)


def analyze_paths(
    paths: Iterable[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisResult:
    """Analyze every Python file under the given paths."""
    active = list(rules) if rules is not None else select_rules()
    total = AnalysisResult()
    for p in iter_python_files(paths):
        total.extend(analyze_file(p, rules=active))
    total.findings = sort_findings(total.findings)
    return total
