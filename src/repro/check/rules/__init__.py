"""The REP rule pack: codebase-aware lint rules for the fill engine.

The pack is organised as a package (see ``docs/STATIC_ANALYSIS.md``
for the full catalogue and rationale):

* :mod:`~repro.check.rules.base` — the rule framework:
  :class:`Rule`, :class:`ModuleContext`, the registry.
* :mod:`~repro.check.rules.context` — :class:`AnalysisContext`, the
  module-level dataflow view (symbol table, import resolution,
  ``run_sharded`` call-site tracking) behind the REP008+ rules.
* :mod:`~repro.check.rules.invariants` — REP001–REP007: integer-dbu
  discipline, DRC provenance, mutable defaults, exception hygiene,
  float equality, ``__all__`` consistency, one clock.
* :mod:`~repro.check.rules.parallel_safety` — REP008–REP010: one
  executor, shard-worker purity, picklability of dispatched state.
* :mod:`~repro.check.rules.determinism` — REP011–REP012: ordered
  iteration in deterministic paths, float merge order across shards.
* :mod:`~repro.check.rules.observability` — REP014: one diagnostics
  channel (no raw ``print()``/``logging.basicConfig``/
  ``signal.setitimer`` outside ``repro/obs`` and CLI modules).
* :mod:`~repro.check.rules.vectorization` — REP015: no per-window
  Python loops under ``repro/density/`` outside the rect oracle —
  per-window quantities belong on the raster kernel.

Rules are registered in :data:`RULE_REGISTRY` via the
:func:`register` decorator; adding a rule is writing a subclass of
:class:`Rule` in the fitting module (or a new one, imported here) and
decorating it.
"""

from .base import (
    RULE_REGISTRY,
    ModuleContext,
    Rule,
    all_rule_codes,
    register,
    select_rules,
)
from .context import AnalysisContext, ShardedCall
from .determinism import ShardFloatMergeRule, UnorderedIterationRule
from .invariants import (
    DrcLiteralRule,
    ExceptionHygieneRule,
    ExportConsistencyRule,
    FloatEqualityRule,
    IntegerCoordinateRule,
    MutableDefaultRule,
    RawTimerRule,
)
from .observability import DiagnosticChannelRule
from .parallel_safety import (
    RawExecutorRule,
    ThreadOwnershipRule,
    ShardPicklabilityRule,
    ShardWorkerPurityRule,
)
from .vectorization import PerWindowLoopRule

__all__ = [
    "ModuleContext",
    "AnalysisContext",
    "ShardedCall",
    "Rule",
    "register",
    "RULE_REGISTRY",
    "all_rule_codes",
    "select_rules",
    "IntegerCoordinateRule",
    "DrcLiteralRule",
    "MutableDefaultRule",
    "ExceptionHygieneRule",
    "FloatEqualityRule",
    "ExportConsistencyRule",
    "RawTimerRule",
    "RawExecutorRule",
    "ThreadOwnershipRule",
    "ShardWorkerPurityRule",
    "ShardPicklabilityRule",
    "UnorderedIterationRule",
    "ShardFloatMergeRule",
    "DiagnosticChannelRule",
    "PerWindowLoopRule",
]
