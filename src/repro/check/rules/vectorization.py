"""Vectorization rule: REP015 — density hot paths stay on the numpy kernel.

PR 9 replaced the per-window Python loops of the density layer with
the raster kernel (:mod:`repro.density.raster`): coordinate-compressed
occupancy grids, one array pass per window-column strip.  The rect-set
scanline path survives in ``analysis.py`` as the byte-identity oracle
the CI ``kernel-parity`` job compares against — but any *new*
per-window Python loop added elsewhere under ``repro/density/`` quietly
reintroduces the O(windows) interpreter overhead the kernel removed,
and nothing else would catch it (the parity gate only proves equality,
not speed).

The rule flags the two shapes the migration removed:

* iterating a :class:`~repro.layout.WindowGrid` window-by-window
  (``for i, j, win in grid`` / ``for ... in grid.windows()``) while
  using the window rect in the body, and
* nested ``range(grid.cols)`` x ``range(grid.rows)`` loops that
  accumulate per-window values.

The oracle module is exempt wholesale; anything else that genuinely
needs a per-window loop (k-bounded attribution reporting, for
instance) documents the waiver with ``# repro: noqa[REP015]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Union

from ..findings import Finding, Severity
from .base import ModuleContext, Rule, _call_name, register

__all__ = ["PerWindowLoopRule"]

_Loop = Union[ast.For, ast.AsyncFor]

#: attribute chains that mark a range(...) as a window-axis sweep
_AXIS_ATTRS = {"cols", "rows"}

#: grid methods that enumerate windows one by one
_WINDOW_ITER_METHODS = {"windows"}


def _range_axis(node: ast.expr) -> Optional[str]:
    """``"cols"``/``"rows"`` when ``node`` is ``range(<expr>.cols|rows)``."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        return None
    if node.func.id != "range" or len(node.args) != 1:
        return None
    arg = node.args[0]
    if isinstance(arg, ast.Attribute) and arg.attr in _AXIS_ATTRS:
        return arg.attr
    return None


def _target_names(target: ast.expr) -> Set[str]:
    return {n.id for n in ast.walk(target) if isinstance(n, ast.Name)}


def _accumulates(body: ast.AST, skip: Optional[ast.AST] = None) -> bool:
    """Does the loop body fold per-window values into a result?

    Accumulation here is any of: an augmented add (``total += ...``),
    an ``xs.append(...)`` call, or a subscript store (``out[i, j] =
    ...``) — the shapes a per-window sweep uses to build its output.
    """
    for node in ast.walk(body):
        if skip is not None and node is skip:
            continue
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
            return True
        if isinstance(node, ast.Call) and _call_name(node) == "append":
            return True
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Subscript) for t in node.targets
        ):
            return True
    return False


@register
class PerWindowLoopRule(Rule):
    """Per-window Python loops in the density layer.

    The raster kernel computes every per-window quantity as an array
    pass; a scalar window-by-window loop under ``repro/density/``
    belongs either in the rect oracle (``analysis.py``, exempt) or
    behind an explicit ``# repro: noqa[REP015]`` waiver.  Same shape
    as REP014's one diagnostics channel: one density kernel.
    """

    code = "REP015"
    summary = "per-window Python loop in repro/density/ outside the rect oracle"
    default_severity = Severity.WARNING
    scopes = ("repro/density/",)
    #: the scanline rect-set path — kept as the kernel-parity oracle
    oracle_basenames = ("analysis.py",)

    def applies_to(self, ctx: ModuleContext) -> bool:
        if not super().applies_to(ctx):
            return False
        return ctx.module_basename not in self.oracle_basenames

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._window_iter_findings(ctx, node)
                yield from self._nested_axis_findings(ctx, node)

    def _window_iter_findings(
        self, ctx: ModuleContext, loop: _Loop
    ) -> Iterator[Finding]:
        """``for i, j, win in grid`` (or ``grid.windows()``) using ``win``."""
        it = loop.iter
        is_method = (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Attribute)
            and it.func.attr in _WINDOW_ITER_METHODS
        )
        is_grid_protocol = isinstance(it, ast.Name) and (
            isinstance(loop.target, ast.Tuple) and len(loop.target.elts) == 3
        )
        if not (is_method or is_grid_protocol):
            return
        if is_grid_protocol:
            # The WindowGrid iterator yields (i, j, window): only a
            # body that touches the window *rect* does per-window
            # geometry; enumerating keys alone is fine.
            win = loop.target.elts[2]
            win_names = _target_names(win) - {"_"}
            if not win_names:
                return
            used = any(
                isinstance(n, ast.Name)
                and n.id in win_names
                and isinstance(n.ctx, ast.Load)
                for stmt in loop.body
                for n in ast.walk(stmt)
            )
            if not used:
                return
        yield self.finding(
            ctx,
            loop,
            "window-by-window iteration doing per-window geometry; "
            "compute the quantity as one raster pass "
            "(repro.density.raster) or mark the oracle with noqa",
        )

    def _nested_axis_findings(
        self, ctx: ModuleContext, outer: _Loop
    ) -> Iterator[Finding]:
        """``for i in range(g.cols): for j in range(g.rows): ...`` folds."""
        if _range_axis(outer.iter) is None:
            return
        for inner in ast.walk(outer):
            if inner is outer or not isinstance(inner, (ast.For, ast.AsyncFor)):
                continue
            axis = _range_axis(inner.iter)
            if axis is None or not _accumulates(inner):
                continue
            yield self.finding(
                ctx,
                outer,
                "nested range(cols) x range(rows) sweep accumulating "
                "per-window values; use a vectorized map from "
                "repro.density.raster (or noqa a deliberate "
                "reporting loop)",
            )
            return
