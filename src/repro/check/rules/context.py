"""Module-level dataflow context shared by the analysis rules.

:class:`AnalysisContext` is built once per module (lazily, via
:attr:`repro.check.rules.base.ModuleContext.analysis`) and gives rules
a resolved view the raw AST walk cannot:

* a **symbol table** of module-level functions, classes and constants,
  plus every function/class defined *inside* another function (the
  closures REP010 exists to catch);
* **import resolution** mapping each local binding to the dotted path
  it came from, with relative imports (``from ..parallel import
  run_sharded``) resolved against the module's own file path;
* **call-site tracking** for :func:`repro.parallel.run_sharded`: which
  expressions are dispatched as shard workers and which travel as the
  shared state shipped to pool initializers.

Everything here is a conservative, module-local approximation — there
is no whole-program view — but it is exactly the visibility the
REP008–REP012 parallel-safety rules need.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["AnalysisContext", "ShardedCall"]

#: entry points that dispatch shard workers; matched on the resolved
#: dotted name so both ``run_sharded(...)`` and
#: ``parallel.run_sharded(...)`` are found.
_DISPATCH_SUFFIX = "parallel.run_sharded"


@dataclass
class ShardedCall:
    """One ``run_sharded(fn, shared, shards, ...)`` call site."""

    node: ast.Call
    #: the worker-function expression (positional 0 or ``fn=``)
    fn: Optional[ast.expr]
    #: the shared-state expression (positional 1 or ``shared=``)
    shared: Optional[ast.expr]
    #: qualified name of the enclosing function, '' at module level
    enclosing: str = ""


@dataclass
class _Scope:
    """Definitions local to one function body (closures, local classes)."""

    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)


class AnalysisContext:
    """Resolved symbols, imports and parallel call sites of one module."""

    def __init__(self, tree: ast.Module, path: str):
        self.tree = tree
        self.path = path.replace("\\", "/")
        #: local binding -> dotted origin ("run_sharded" ->
        #: "repro.parallel.run_sharded"); plain ``import a.b`` binds "a".
        self.imports: Dict[str, str] = {}
        #: module-level function definitions by name
        self.functions: Dict[str, ast.FunctionDef] = {}
        #: module-level class definitions by name
        self.classes: Dict[str, ast.ClassDef] = {}
        #: module-level simple assignments (name -> value expression)
        self.assignments: Dict[str, ast.expr] = {}
        #: per-enclosing-function local definitions, keyed by qualname
        self.scopes: Dict[str, _Scope] = {}
        #: every run_sharded dispatch found in the module
        self.sharded_calls: List[ShardedCall] = []
        self._module_package = _package_of(self.path)
        self._collect()

    # -- symbol resolution ---------------------------------------------

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted origin of a name/attribute expression, if resolvable.

        ``run_sharded`` (imported from ``repro.parallel``) resolves to
        ``"repro.parallel.run_sharded"``; ``os.fork`` to ``"os.fork"``;
        a local variable resolves to ``None``.
        """
        if isinstance(node, ast.Name):
            if node.id in self.imports:
                return self.imports[node.id]
            if node.id in self.functions or node.id in self.classes:
                return f"{self._module_package}.{node.id}" if self._module_package else node.id
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def resolves_to(self, node: ast.expr, suffix: str) -> bool:
        """True when ``node`` resolves to a dotted name ending ``suffix``."""
        resolved = self.resolve(node)
        if resolved is None:
            return False
        return resolved == suffix or resolved.endswith("." + suffix)

    def local_function(self, name: str) -> Optional[ast.FunctionDef]:
        """A function of this *module* (top level), if defined here."""
        return self.functions.get(name)

    def nested_function(self, name: str) -> Optional[Tuple[str, ast.FunctionDef]]:
        """A function defined inside another function, with its scope."""
        for qualname, scope in self.scopes.items():
            if name in scope.functions:
                return qualname, scope.functions[name]
        return None

    def nested_class(self, name: str) -> Optional[Tuple[str, ast.ClassDef]]:
        """A class defined inside a function, with its scope."""
        for qualname, scope in self.scopes.items():
            if name in scope.classes:
                return qualname, scope.classes[name]
        return None

    # -- construction ---------------------------------------------------

    def _collect(self) -> None:
        # Imports anywhere in the module — top level, TYPE_CHECKING /
        # fallback blocks, *and function bodies* (the engine imports
        # run_sharded lazily inside the functions that dispatch it, and
        # those bindings must still resolve at the call sites).
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._collect_import(node)
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(node, ast.FunctionDef):
                    self.functions[node.name] = node
                self._collect_scope(node, node.name)
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._collect_scope(sub, f"{node.name}.{sub.name}")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.assignments[target.id] = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    self.assignments[node.target.id] = node.value
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                self._maybe_sharded_call(node)

    def _collect_import(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    self.imports[alias.asname] = alias.name
                else:
                    # `import a.b.c` binds only `a`
                    self.imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = self._resolve_from(node)
            for alias in node.names:
                bound = alias.asname or alias.name
                self.imports[bound] = f"{base}.{alias.name}" if base else alias.name

    def _resolve_from(self, node: ast.ImportFrom) -> str:
        """Absolute dotted base of a ``from X import ...`` statement.

        Relative imports resolve against the module's package inferred
        from its path; when the path carries no package information the
        relative dots are dropped and the textual module kept, which is
        still enough for suffix matching (``..parallel`` ->
        ``parallel``).
        """
        module = node.module or ""
        if node.level == 0:
            return module
        parts = self._module_package.split(".") if self._module_package else []
        if parts and not self.path.endswith("/__init__.py"):
            parts = parts[:-1]  # the module's own package
        # level 1 = current package, each further level climbs one
        climbed = parts[: max(0, len(parts) - (node.level - 1))]
        if climbed:
            return ".".join(climbed + ([module] if module else []))
        return module

    def _collect_scope(self, func: ast.stmt, qualname: str) -> None:
        """Record functions/classes defined inside ``func``'s body."""
        scope = _Scope()
        body = getattr(func, "body", [])
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.FunctionDef):
                scope.functions[node.name] = node
                # one qualname level is enough for closure detection
            elif isinstance(node, ast.ClassDef):
                scope.classes[node.name] = node
            elif not isinstance(node, (ast.AsyncFunctionDef, ast.Lambda)):
                stack.extend(ast.iter_child_nodes(node))
        if scope.functions or scope.classes:
            self.scopes[qualname] = scope

    def _maybe_sharded_call(self, node: ast.Call) -> None:
        if not self.resolves_to(node.func, _DISPATCH_SUFFIX):
            return
        fn_arg: Optional[ast.expr] = node.args[0] if node.args else None
        shared_arg: Optional[ast.expr] = node.args[1] if len(node.args) > 1 else None
        for kw in node.keywords:
            if kw.arg == "fn":
                fn_arg = kw.value
            elif kw.arg == "shared":
                shared_arg = kw.value
        self.sharded_calls.append(
            ShardedCall(
                node=node,
                fn=fn_arg,
                shared=shared_arg,
                enclosing=self._enclosing_function(node),
            )
        )

    def _enclosing_function(self, call: ast.Call) -> str:
        for name, func in self.functions.items():
            for sub in ast.walk(func):
                if sub is call:
                    return name
        return ""

    # -- local value tracing -------------------------------------------

    def value_of(self, name: str, enclosing: str = "") -> Optional[ast.expr]:
        """Last assigned value expression of ``name`` in a scope.

        Looks through the enclosing function's body first (textually
        last assignment wins — a linear approximation of dataflow),
        then module level.  Used to trace ``shared = _State(...)`` back
        to its constructor at a ``run_sharded`` call site.
        """
        func = self.functions.get(enclosing) if enclosing else None
        if func is not None:
            value: Optional[ast.expr] = None
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            value = node.value
                elif isinstance(node, ast.AnnAssign):
                    if (
                        isinstance(node.target, ast.Name)
                        and node.target.id == name
                        and node.value is not None
                    ):
                        value = node.value
            if value is not None:
                return value
        return self.assignments.get(name)


def _package_of(path: str) -> str:
    """Dotted package+module of a source path, best effort.

    ``src/repro/core/candidates.py`` -> ``repro.core.candidates``;
    paths outside a recognisable tree yield the bare module name.
    """
    parts = path.split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    else:
        # keep at most the trailing package-ish segments
        parts = [p for p in parts if p and not p.endswith(":")][-3:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)
