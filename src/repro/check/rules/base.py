"""Rule framework core: contexts, the registry, and shared AST helpers.

A rule sees one parsed module at a time through a
:class:`ModuleContext`; rules that need resolved symbols (imports,
module-level functions, ``run_sharded`` call sites) reach the lazily
built :class:`~repro.check.rules.context.AnalysisContext` through
:attr:`ModuleContext.analysis`.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from ..findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import AnalysisContext

__all__ = [
    "ModuleContext",
    "Rule",
    "register",
    "RULE_REGISTRY",
    "all_rule_codes",
    "select_rules",
]


class ModuleContext:
    """Everything a rule may inspect about one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self._analysis: Optional["AnalysisContext"] = None

    @property
    def module_basename(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    @property
    def analysis(self) -> "AnalysisContext":
        """Resolved-symbol view of the module, built on first use.

        Parsing the symbol table and call sites once per module (not
        once per rule) keeps the dataflow rules as cheap as the plain
        AST-walk rules.
        """
        if self._analysis is None:
            from .context import AnalysisContext

            self._analysis = AnalysisContext(self.tree, self.path)
        return self._analysis

    def in_scope(self, fragments: Sequence[str]) -> bool:
        """True when the module path matches any scope fragment."""
        return any(frag in self.path for frag in fragments)


class Rule:
    """Base class for a static-analysis rule.

    Subclasses set :attr:`code`, :attr:`summary` and
    :attr:`default_severity`, optionally restrict themselves with
    :attr:`scopes` (path fragments; empty means every file), and
    implement :meth:`check` yielding :class:`Finding` objects.
    """

    code: str = "REP000"
    summary: str = ""
    default_severity: Severity = Severity.ERROR
    #: path fragments the rule applies to; empty tuple = all files
    scopes: Tuple[str, ...] = ()

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not self.scopes or ctx.in_scope(self.scopes)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        return Finding(
            code=self.code,
            message=message,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            severity=severity if severity is not None else self.default_severity,
        )


RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rule_codes() -> List[str]:
    return sorted(RULE_REGISTRY)


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Instantiate the requested rules (all by default)."""
    codes = list(select) if select else all_rule_codes()
    unknown = [c for c in codes if c not in RULE_REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule code(s): {', '.join(unknown)}")
    ignored = set(ignore or ())
    return [RULE_REGISTRY[c]() for c in codes if c not in ignored]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------

#: wrappers that re-quantise to the integer grid, ending the taint
_INT_CASTS = {"int", "round", "floor", "ceil"}


def _call_name(node: ast.Call) -> Optional[str]:
    """The bare callee name: ``Rect(...)`` -> ``Rect``, ``a.b(...)`` -> ``b``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_int_cast(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _call_name(node) in _INT_CASTS


def _is_numeric_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


def _assigned_names(target: ast.expr) -> Set[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: Set[str] = set()
        for elt in target.elts:
            out.update(_assigned_names(elt))
        return out
    return set()


def _root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any.

    ``shared.cache[k].rects`` -> ``shared``; anything rooted in a call
    or literal (a copy, not an alias) has no root name.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None
