"""Determinism rules: REP011–REP012.

The run-to-run reproducibility contract — same input, same GDSII
bytes, same score — breaks through two quiet channels: iteration over
unordered containers feeding accumulation or output, and float
reduction whose association depends on how work was sharded.  Both
produced real bugs in the fill literature (density scores drifting in
the last ulp between "identical" runs); both are cheap to catch
statically.

* **REP011** — no unordered ``set`` iteration feeding results and no
  unseeded global ``random`` in the deterministic paths (``density/``,
  ``core/``, ``netflow/``, ``gdsii/``); wrap the container in
  ``sorted(...)`` or use a seeded ``random.Random(seed)`` instance.
* **REP012** — no plain ``sum(...)``/``+=`` folding of
  ``run_sharded`` results: each element is a per-shard aggregate, so
  summing them re-associates float addition across shard boundaries
  and ``workers=N`` stops being bit-identical to serial.  Return
  per-item values and reassemble in shard order, or use
  ``math.fsum`` on both sides.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Union

from ..findings import Finding, Severity
from .base import ModuleContext, Rule, _call_name, register

__all__ = [
    "UnorderedIterationRule",
    "ShardFloatMergeRule",
]

_ScopeNode = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def _scopes_of(tree: ast.Module) -> List[_ScopeNode]:
    """The module plus every function, each analyzed as one scope."""
    out: List[_ScopeNode] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(node)
    return out


def _iter_scope(scope: _ScopeNode) -> Iterator[ast.AST]:
    """Walk one scope without descending into nested functions.

    Nested functions are separate entries in :func:`_scopes_of` (with
    their own name tables), so descending here would double-report
    every finding inside them.
    """
    stack: List[ast.AST] = list(scope.body)
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


# ----------------------------------------------------------------------
# REP011 — unordered iteration / unseeded randomness
# ----------------------------------------------------------------------

_SET_CALLS = {"set", "frozenset"}
_SET_METHODS = {"intersection", "union", "difference", "symmetric_difference"}
#: consumers that expose the container's iteration order in results
_ORDER_EXPOSING_CALLS = {"list", "tuple", "sum"}

_RANDOM_FUNCS = {
    "random",
    "randint",
    "randrange",
    "getrandbits",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "paretovariate",
    "vonmisesvariate",
    "weibullvariate",
}
_NP_RANDOM_FUNCS = {
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "choice",
    "shuffle",
    "permutation",
    "uniform",
    "normal",
    "standard_normal",
}


@register
class UnorderedIterationRule(Rule):
    """Unordered iteration / unseeded randomness in deterministic paths.

    Set iteration order is a function of element hashes and insertion
    history — stable within a process, but not across processes (hash
    randomization) or code revisions.  A ``for`` loop over a set that
    accumulates floats or emits output bakes that order into results;
    the fix is an explicit ``sorted(...)``.  The module-level
    ``random``/``numpy.random`` generators are process-global and
    unseeded; stochastic passes must thread an explicit
    ``random.Random(seed)`` so reruns reproduce (the Monte Carlo
    baseline does exactly this).
    """

    code = "REP011"
    summary = "unordered set iteration or unseeded random in deterministic paths"
    default_severity = Severity.WARNING
    scopes = ("density/", "core/", "netflow/", "gdsii/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for scope in _scopes_of(ctx.tree):
            set_names = self._set_names(scope)
            for node in _iter_scope(scope):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    if self._is_unordered(node.iter, set_names):
                        yield self.finding(
                            ctx,
                            node.iter,
                            "iteration over an unordered set; wrap in "
                            "sorted(...) so results do not depend on hash "
                            "order",
                        )
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        if self._is_unordered(gen.iter, set_names):
                            yield self.finding(
                                ctx,
                                gen.iter,
                                "comprehension over an unordered set; wrap "
                                "in sorted(...) so results do not depend on "
                                "hash order",
                            )
                elif isinstance(node, ast.Call):
                    yield from self._call_findings(ctx, node, set_names)

    def _call_findings(
        self, ctx: ModuleContext, node: ast.Call, set_names: Set[str]
    ) -> Iterator[Finding]:
        name = _call_name(node)
        if (
            isinstance(node.func, ast.Name)
            and name in _ORDER_EXPOSING_CALLS
            and node.args
            and self._is_unordered(node.args[0], set_names)
        ):
            yield self.finding(
                ctx,
                node,
                f"{name}() over an unordered set exposes hash order in "
                "results; wrap the set in sorted(...)",
            )
            return
        resolved = ctx.analysis.resolve(node.func)
        if resolved is None:
            return
        if resolved.startswith("random.") and resolved.split(".", 1)[1] in _RANDOM_FUNCS:
            yield self.finding(
                ctx,
                node,
                f"unseeded global {resolved}(); thread an explicit "
                "random.Random(seed) instance through the pass",
            )
        elif resolved.startswith("numpy.random.") and (
            resolved.rsplit(".", 1)[1] in _NP_RANDOM_FUNCS
        ):
            yield self.finding(
                ctx,
                node,
                f"unseeded global {resolved}(); use "
                "numpy.random.default_rng(seed)",
            )

    def _set_names(self, scope: _ScopeNode) -> Set[str]:
        """Names whose every assignment in the scope is set-valued."""
        values: Dict[str, List[ast.expr]] = {}
        for node in _iter_scope(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        values.setdefault(target.id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    values.setdefault(node.target.id, []).append(node.value)
            elif isinstance(node, (ast.For, ast.AsyncFor, ast.AugAssign)):
                # loop targets / augmented writes make the name unknown
                target = node.target
                if isinstance(target, ast.Name):
                    values.setdefault(target.id, []).append(ast.Constant(value=None))
        return {
            name
            for name, exprs in values.items()
            if exprs and all(self._is_set_constructor(e) for e in exprs)
        }

    @staticmethod
    def _is_set_constructor(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in _SET_CALLS
        return False

    def _is_unordered(self, node: ast.expr, set_names: Set[str]) -> bool:
        if self._is_set_constructor(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if _call_name(node) in _SET_METHODS:
                return self._is_unordered(node.func.value, set_names)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_unordered(node.left, set_names) or self._is_unordered(
                node.right, set_names
            )
        return False


# ----------------------------------------------------------------------
# REP012 — float merge order across shard boundaries
# ----------------------------------------------------------------------


@register
class ShardFloatMergeRule(Rule):
    """Plain float folds over ``run_sharded`` results.

    ``run_sharded`` returns one value per *shard*; summing those
    values adds per-shard subtotals, which re-associates float
    addition relative to the serial item-by-item fold — so
    ``workers=2`` and ``workers=4`` can differ in the last ulp and
    the bit-identical contract silently breaks.  Reassemble per-item
    values in shard order and fold once (what the engine stages do),
    or use ``math.fsum`` on both the serial and sharded sides
    (exactly-rounded summation is association-independent).
    """

    code = "REP012"
    summary = "sum()/+= fold over run_sharded results re-associates float addition"
    default_severity = Severity.WARNING

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        analysis = ctx.analysis
        call_nodes = {id(c.node) for c in analysis.sharded_calls}
        if not call_nodes:
            return
        for scope in _scopes_of(ctx.tree):
            result_names = self._result_names(scope, call_nodes)
            for node in _iter_scope(scope):
                if isinstance(node, ast.Call) and self._is_plain_sum(node):
                    arg = node.args[0] if node.args else None
                    if arg is not None and self._is_sharded(arg, call_nodes, result_names):
                        yield self.finding(
                            ctx,
                            node,
                            "sum() over run_sharded results adds per-shard "
                            "subtotals and re-associates float addition; "
                            "reassemble per-item values in shard order or "
                            "use math.fsum on both sides",
                        )
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    yield from self._loop_findings(ctx, node, call_nodes, result_names)

    @staticmethod
    def _is_plain_sum(node: ast.Call) -> bool:
        """``sum(...)`` but not ``math.fsum(...)`` (fsum is exact)."""
        return isinstance(node.func, ast.Name) and node.func.id == "sum"

    def _is_sharded(
        self, node: ast.expr, call_nodes: Set[int], result_names: Set[str]
    ) -> bool:
        if id(node) in call_nodes:
            return True
        if isinstance(node, ast.Name):
            return node.id in result_names
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            return any(
                self._is_sharded(gen.iter, call_nodes, result_names)
                for gen in node.generators
            )
        return False

    @staticmethod
    def _result_names(scope: _ScopeNode, call_nodes: Set[int]) -> Set[str]:
        names: Set[str] = set()
        for node in _iter_scope(scope):
            if isinstance(node, ast.Assign) and id(node.value) in call_nodes:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _loop_findings(
        self,
        ctx: ModuleContext,
        loop: Union[ast.For, ast.AsyncFor],
        call_nodes: Set[int],
        result_names: Set[str],
    ) -> Iterator[Finding]:
        """``for r in results: total += r`` — the manual fold."""
        if not self._is_sharded(loop.iter, call_nodes, result_names):
            return
        loop_vars = _target_names(loop.target)
        for node in ast.walk(loop):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                if any(
                    isinstance(sub, ast.Name) and sub.id in loop_vars
                    for sub in ast.walk(node.value)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "+= fold over run_sharded results adds per-shard "
                        "subtotals and re-associates float addition; "
                        "reassemble per-item values in shard order or use "
                        "math.fsum on both sides",
                    )


def _target_names(target: ast.expr) -> Set[str]:
    out: Set[str] = set()
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
    return out
