"""Observability rule: REP014 — one diagnostics channel.

PR 8 gave the repo a structured event log
(:mod:`repro.obs.events`): JSON lines, level-filtered, correlated to
span ids, bridged from stdlib ``repro.*`` loggers.  A raw ``print()``
in library code bypasses all of that — it cannot be filtered, carries
no span correlation, and corrupts machine-read stdout (the CLI's
summary tables, the NDJSON service protocol).  ``logging.basicConfig``
installs a root handler that double-prints every bridged event, and
``signal.setitimer`` would fight the sampling profiler (which is
thread-based precisely so SIGPROF/SIGALRM stay free and shard workers
can be profiled off the main thread).

The sanctioned surfaces: CLI modules (``cli.py``/``__main__.py``
anywhere — stdout *is* their product), ``repro/obs`` itself, and the
checker's own reporting.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding, Severity
from .base import ModuleContext, Rule, register

__all__ = ["DiagnosticChannelRule"]

#: fully-qualified calls that bypass the events channel
_FORBIDDEN_CALLS = {
    "logging.basicConfig": (
        "logging.basicConfig() outside repro/obs installs a root handler "
        "that double-prints bridged events; configure verbosity through "
        "repro.obs.events.configure(level=...)"
    ),
    "signal.setitimer": (
        "signal.setitimer() collides with the thread-based sampling "
        "profiler and only fires on the main thread; use "
        "repro.obs.profile.SamplingProfiler"
    ),
}


@register
class DiagnosticChannelRule(Rule):
    """Raw ``print()``/``logging.basicConfig``/``signal.setitimer`` in library code.

    All diagnostics flow through :mod:`repro.obs.events` (structured
    JSON lines with span correlation and level filtering); stdout
    belongs to the CLI layer.  Same shape as REP007's one clock and
    REP008's one executor: one diagnostics channel.
    """

    code = "REP014"
    summary = "raw print()/logging.basicConfig/signal.setitimer outside repro/obs and CLI modules"
    default_severity = Severity.ERROR
    #: module paths whose product is text on stdout / the obs package
    allowed = ("repro/obs/", "repro/check/")
    #: basenames that are CLI entry points wherever they live
    allowed_basenames = ("cli.py", "__main__.py")

    def applies_to(self, ctx: ModuleContext) -> bool:
        if ctx.in_scope(self.allowed):
            return False
        return ctx.module_basename not in self.allowed_basenames

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    qualified = f"{module}.{alias.name}"
                    if qualified in _FORBIDDEN_CALLS:
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {qualified} outside repro/obs; "
                            "diagnostics flow through repro.obs.events",
                        )
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id == "print":
                    yield self.finding(
                        ctx,
                        node,
                        "raw print() in library code; emit a structured "
                        "event via repro.obs.events.emit(...) (or return "
                        "the text to the CLI layer)",
                    )
                    continue
                resolved = ctx.analysis.resolve(node.func)
                message = _FORBIDDEN_CALLS.get(resolved or "")
                if message is not None:
                    yield self.finding(ctx, node, message)
