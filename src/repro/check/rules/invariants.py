"""The original invariant pack: REP001–REP007.

Each rule encodes one invariant the paper's algorithms silently rely
on (see ``docs/STATIC_ANALYSIS.md`` for the full rationale):

* **REP001** — integer-dbu discipline: no float literal or true
  division may reach a geometry coordinate argument in ``geometry/``
  or ``layout/``.
* **REP002** — DRC numerals (``sm``/``wm``/``am`` and the fill-size
  caps) must flow from the config/deck modules, never be hard-coded at
  call sites.
* **REP003** — no mutable default arguments.
* **REP004** — no bare ``except:``; no silently swallowed exceptions
  in ``core/`` and ``netflow/``.
* **REP005** — no exact ``==``/``!=`` against float expressions where
  a tolerance is required (density and scoring paths).
* **REP006** — ``__all__`` export consistency: public definitions are
  exported and every exported name exists.
* **REP007** — one clock: raw ``time.perf_counter()`` / ``tracemalloc``
  belong to ``repro/obs`` only; everything else measures through
  spans, :func:`repro.obs.measure` or the RSS sampler.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..findings import Finding, Severity
from .base import (
    ModuleContext,
    Rule,
    _assigned_names,
    _call_name,
    _is_int_cast,
    _is_numeric_literal,
    register,
)

__all__ = [
    "IntegerCoordinateRule",
    "DrcLiteralRule",
    "MutableDefaultRule",
    "ExceptionHygieneRule",
    "FloatEqualityRule",
    "ExportConsistencyRule",
    "RawTimerRule",
]


# ----------------------------------------------------------------------
# REP001 — integer-dbu discipline for geometry coordinates
# ----------------------------------------------------------------------

#: calls that consume dbu coordinates positionally
_COORD_CONSTRUCTORS = {"Rect"}
#: methods whose arguments are dbu distances/coordinates
_COORD_METHODS = {"translated", "expanded", "shrunk", "contains_point"}


def _float_taints(expr: ast.AST) -> Iterator[ast.AST]:
    """Float literals and true divisions inside ``expr``.

    The walk stops at integer re-quantisation points (``int()``,
    ``round()``, ``math.floor``/``ceil``) because their results are
    back on the grid, and does not descend into nested ``Rect`` calls
    (those are checked on their own).
    """
    if _is_int_cast(expr):
        return
    if isinstance(expr, ast.Constant) and isinstance(expr.value, float):
        yield expr
        return
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
        yield expr
        # still descend: `a / b / c` should report each division once
    for child in ast.iter_child_nodes(expr):
        yield from _float_taints(child)


@register
class IntegerCoordinateRule(Rule):
    """Float literals / true division reaching geometry coordinates.

    All layout geometry lives on the integer dbu grid (paper Eqn. (9)
    requires integral fill coordinates).  A float sneaking into a
    ``Rect`` or a coordinate-taking method silently breaks hashing,
    exact area bookkeeping and the sizing ILP's integrality.
    """

    code = "REP001"
    summary = "float literal or true division reaches a dbu coordinate argument"
    default_severity = Severity.ERROR
    scopes = ("geometry/", "layout/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            is_ctor = isinstance(node.func, ast.Name) and name in _COORD_CONSTRUCTORS
            is_method = isinstance(node.func, ast.Attribute) and name in _COORD_METHODS
            if not (is_ctor or is_method):
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                for taint in _float_taints(arg):
                    kind = (
                        "float literal"
                        if isinstance(taint, ast.Constant)
                        else "true division (use // or wrap in int()/round())"
                    )
                    yield self.finding(
                        ctx,
                        taint,
                        f"{kind} in dbu coordinate argument of {name}()",
                    )


# ----------------------------------------------------------------------
# REP002 — DRC numerals must come from the config/deck modules
# ----------------------------------------------------------------------

_DRC_KEYWORDS = {
    "min_spacing",
    "min_width",
    "min_area",
    "max_fill_width",
    "max_fill_height",
    "wm",
    "am",
    "sm",
}


@register
class DrcLiteralRule(Rule):
    """Hard-coded DRC numerals outside the deck/config modules.

    The sizing constraints (Eqn. (9e)-(9g)) are parameterised by the
    rule deck ``sm``/``wm``/``am``; a literal at a call site bypasses
    :class:`repro.layout.drc.DrcRules` validation and desynchronises
    the flow from the deck.  Allowed homes: ``layout/drc.py`` (deck
    defaults), ``core/config.py`` and ``bench/`` (benchmark decks are
    input data).
    """

    code = "REP002"
    summary = "hard-coded DRC numeral outside the config/deck modules"
    default_severity = Severity.WARNING
    allowed = ("layout/drc.py", "core/config.py", "bench/")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.in_scope(self.allowed)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "DrcRules":
                for arg in node.args:
                    if _is_numeric_literal(arg):
                        yield self.finding(
                            ctx, arg, "numeric literal in DrcRules(...) construction"
                        )
            for kw in node.keywords:
                if kw.arg in _DRC_KEYWORDS and _is_numeric_literal(kw.value):
                    yield self.finding(
                        ctx,
                        kw.value,
                        f"numeric literal for DRC parameter {kw.arg!r}; "
                        "take it from the rule deck (DrcRules) instead",
                    )


# ----------------------------------------------------------------------
# REP003 — mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}


@register
class MutableDefaultRule(Rule):
    """Mutable default argument values.

    A shared-between-calls list/dict/set default is a classic source of
    state leaking across engine runs.
    """

    code = "REP003"
    summary = "mutable default argument"
    default_severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(); "
                        "use None (or an immutable tuple) and create inside",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call):
            return _call_name(node) in _MUTABLE_CALLS
        return False


# ----------------------------------------------------------------------
# REP004 — bare / swallowed exceptions
# ----------------------------------------------------------------------


@register
class ExceptionHygieneRule(Rule):
    """Bare ``except:`` anywhere; ``except X: pass`` in solver paths.

    The flow's solvers (``core/``, ``netflow/``) must fail loudly: a
    swallowed infeasibility or numerical error shows up later as a
    silently wrong density score, the exact failure mode static
    analysis exists to prevent.
    """

    code = "REP004"
    summary = "bare except or silently swallowed exception"
    default_severity = Severity.ERROR
    #: where even `except X: pass` is banned
    strict_scopes = ("core/", "netflow/")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        strict = ctx.in_scope(self.strict_scopes)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: catches SystemExit/KeyboardInterrupt; "
                    "name the exception type",
                )
            elif strict and self._swallows(node):
                yield self.finding(
                    ctx,
                    node,
                    "exception silently swallowed in a solver path; "
                    "handle, log or re-raise",
                    severity=Severity.WARNING,
                )

    @staticmethod
    def _swallows(node: ast.ExceptHandler) -> bool:
        if len(node.body) != 1:
            return False
        stmt = node.body[0]
        if isinstance(stmt, ast.Pass):
            return True
        return (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )


# ----------------------------------------------------------------------
# REP005 — exact float equality in density/scoring paths
# ----------------------------------------------------------------------


@register
class FloatEqualityRule(Rule):
    """Exact ``==``/``!=`` against float-valued expressions.

    Densities are ratios of integer areas and live in ``[0, 1]``;
    comparing them (or any derived score) with ``==`` is
    representation-dependent.  Use ``math.isclose``/``np.isclose`` or
    an explicit tolerance; where exact equality is genuinely intended
    (e.g. decoding an all-zero IEEE bit pattern) acknowledge it with
    ``# repro: noqa[REP005]``.
    """

    code = "REP005"
    summary = "exact float equality comparison"
    default_severity = Severity.WARNING

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(self._is_floaty(o) for o in operands):
                yield self.finding(
                    ctx,
                    node,
                    "exact ==/!= on a float expression; compare with a "
                    "tolerance (math.isclose / np.isclose)",
                )

    @staticmethod
    def _is_floaty(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.Call) and _call_name(node) == "float":
            return True
        for sub in ast.walk(node):
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                if not _is_int_cast(sub):
                    return True
        return False


# ----------------------------------------------------------------------
# REP006 — __all__ export consistency
# ----------------------------------------------------------------------


@register
class ExportConsistencyRule(Rule):
    """``__all__`` present, complete, and resolvable.

    Every module exports its public surface explicitly: public
    top-level functions/classes must appear in ``__all__`` and every
    exported name must be defined (or imported) at the top level.
    """

    code = "REP006"
    summary = "__all__ missing, incomplete, or naming undefined symbols"
    default_severity = Severity.WARNING

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.module_basename != "__main__.py"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        exported, all_node = self._exported_names(ctx.tree)
        defined = self._top_level_names(ctx.tree)
        public_defs = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not node.name.startswith("_")
        }
        if exported is None:
            if public_defs:
                first = next(iter(public_defs.values()))
                yield self.finding(
                    ctx,
                    first,
                    "module defines public names but no __all__; "
                    "declare the export surface explicitly",
                )
            return
        assert all_node is not None
        for name in exported:
            if name not in defined:
                yield self.finding(
                    ctx,
                    all_node,
                    f"__all__ exports {name!r} which is not defined at "
                    "module top level",
                )
        for name, node in public_defs.items():
            if name not in exported:
                yield self.finding(
                    ctx,
                    node,
                    f"public definition {name!r} missing from __all__ "
                    "(export it or rename with a leading underscore)",
                )

    @staticmethod
    def _exported_names(
        tree: ast.Module,
    ) -> Tuple[Optional[Set[str]], Optional[ast.AST]]:
        """The static ``__all__`` contents, or ``(None, None)`` when absent.

        Only plain ``__all__ = [...]`` / ``(...)`` of string constants
        is recognised; a dynamic ``__all__`` cannot be checked and is
        treated as absent.
        """
        for node in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(value, (ast.List, ast.Tuple)) and all(
                        isinstance(e, ast.Constant) and isinstance(e.value, str)
                        for e in value.elts
                    ):
                        return (
                            {e.value for e in value.elts},  # type: ignore[union-attr]
                            node,
                        )
                    return None, None
        return None, None

    @staticmethod
    def _top_level_names(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    names.update(_assigned_names(target))
            elif isinstance(node, ast.AnnAssign):
                names.update(_assigned_names(node.target))
            elif isinstance(node, (ast.If, ast.Try)):
                # TYPE_CHECKING / fallback-import blocks: one level deep
                for sub in ast.walk(node):
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        names.add(sub.name)
                    elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            names.add((alias.asname or alias.name).split(".")[0])
                    elif isinstance(sub, ast.Assign):
                        for target in sub.targets:
                            names.update(_assigned_names(target))
        return names


# ----------------------------------------------------------------------
# REP007 — raw timers/tracemalloc outside repro.obs
# ----------------------------------------------------------------------

_TIMER_NAMES = {"perf_counter", "perf_counter_ns"}


@register
class RawTimerRule(Rule):
    """Raw ``time.perf_counter()``/``tracemalloc`` outside ``repro/obs``.

    The contest objective (Eqn. (3), Table 2) scores run time and peak
    memory, so the repo keeps exactly one clock implementation —
    :mod:`repro.obs`.  A hand-rolled ``perf_counter`` pair elsewhere
    produces seconds no run record captures and no perf PR can diff;
    ``tracemalloc`` additionally slows Python ~6x and corrupts any
    concurrently measured runtime.  Use ``obs.span(...)``,
    ``obs.measure(...)`` or ``obs.PeakRssSampler`` instead, or
    acknowledge a deliberate exception with ``# repro: noqa[REP007]``.
    """

    code = "REP007"
    summary = "raw time.perf_counter()/tracemalloc outside repro/obs"
    default_severity = Severity.ERROR
    #: the one sanctioned home of raw clocks and memory tracers
    allowed = ("repro/obs/",)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.in_scope(self.allowed)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "tracemalloc":
                        yield self.finding(
                            ctx,
                            node,
                            "tracemalloc import outside repro/obs; measure "
                            "through repro.obs.measure()/PeakRssSampler",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = (node.module or "").split(".")[0]
                if module == "tracemalloc":
                    yield self.finding(
                        ctx,
                        node,
                        "tracemalloc import outside repro/obs; measure "
                        "through repro.obs.measure()/PeakRssSampler",
                    )
                elif module == "time":
                    for alias in node.names:
                        if alias.name in _TIMER_NAMES:
                            yield self.finding(
                                ctx,
                                node,
                                f"time.{alias.name} import outside repro/obs; "
                                "time through repro.obs spans",
                            )
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in _TIMER_NAMES:
                    yield self.finding(
                        ctx,
                        node,
                        f"raw {name}() call outside repro/obs; wrap the "
                        "region in an obs.span(...) instead",
                    )
