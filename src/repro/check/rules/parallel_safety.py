"""Parallel-safety rules: REP008–REP010 and REP013.

The sharded pipeline's bit-identical GDSII contract (see
``docs/PERFORMANCE.md``) holds only while shard workers are pure,
picklable, module-level functions and all parallelism routes through
the one executor.  These rules enforce that statically, using the
:class:`~repro.check.rules.context.AnalysisContext` to find
``run_sharded`` call sites and trace the worker functions and shared
state dispatched through them:

* **REP008** — one executor: no raw ``multiprocessing``,
  ``concurrent.futures`` or ``os.fork`` outside ``repro/parallel``
  (the same shape as REP007's one clock).
* **REP009** — shard-worker purity: no writes to shared-state
  parameters, no ``global``/``nonlocal`` rebinding, no mutating calls
  (``.append``/``.update``/``setattr``/...) on shared objects in any
  function reachable from a ``run_sharded`` call site.
* **REP010** — picklability: worker functions and shared state must be
  module-level (no lambdas, closures or locally-defined classes), and
  shared dataclasses must not carry file handles, locks, tracers or
  threads.
* **REP013** — thread ownership: long-lived ``threading.Thread`` /
  ``queue.Queue`` machinery lives only in the modules built to
  supervise it — ``repro/parallel`` (executor backends),
  ``repro/service`` (job queue + worker supervisor + socket server)
  and ``repro/obs`` (RSS sampler).  Compute code that wants
  concurrency goes through ``run_sharded`` or the service, where
  spans/metrics are adopted and crashes are supervised.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Set, Tuple

from ..findings import Finding, Severity
from .base import ModuleContext, Rule, _call_name, _root_name, register
from .context import AnalysisContext, ShardedCall

__all__ = [
    "RawExecutorRule",
    "ShardWorkerPurityRule",
    "ShardPicklabilityRule",
    "ThreadOwnershipRule",
]


# ----------------------------------------------------------------------
# REP008 — one executor: no raw pools/forks outside repro/parallel
# ----------------------------------------------------------------------

_EXECUTOR_MODULES = {"multiprocessing", "concurrent"}
_FORK_CALLS = {"os.fork", "os.forkpty", "os.register_at_fork"}


@register
class RawExecutorRule(Rule):
    """Raw process/thread-pool machinery outside ``repro/parallel``.

    The determinism contract lives in one place:
    :func:`repro.parallel.run_sharded` shards an ordered work list
    contiguously and merges results (and worker spans/metrics) in
    shard order.  A raw ``ProcessPoolExecutor`` or ``os.fork``
    elsewhere bypasses the contract — results merge in completion
    order, worker observability is lost, and the serial-fallback and
    sanitizer guarantees do not apply.  Same shape as REP007's one
    clock: one executor.
    """

    code = "REP008"
    summary = "raw multiprocessing/concurrent.futures/os.fork outside repro/parallel"
    default_severity = Severity.ERROR
    #: the one sanctioned home of pools and forks
    allowed = ("repro/parallel/",)

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.in_scope(self.allowed)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _EXECUTOR_MODULES and self._is_executor(alias.name):
                        yield self.finding(
                            ctx,
                            node,
                            f"import of {alias.name} outside repro/parallel; "
                            "dispatch through repro.parallel.run_sharded",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[0] in _EXECUTOR_MODULES and self._is_executor(
                    module if module != "concurrent" else "concurrent.futures"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"import from {module} outside repro/parallel; "
                        "dispatch through repro.parallel.run_sharded",
                    )
                elif module == "os":
                    for alias in node.names:
                        if f"os.{alias.name}" in _FORK_CALLS:
                            yield self.finding(
                                ctx,
                                node,
                                f"os.{alias.name} import outside repro/parallel; "
                                "dispatch through repro.parallel.run_sharded",
                            )
            elif isinstance(node, ast.Call):
                resolved = ctx.analysis.resolve(node.func)
                if resolved in _FORK_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"raw {resolved}() outside repro/parallel; "
                        "dispatch through repro.parallel.run_sharded",
                    )

    @staticmethod
    def _is_executor(module: str) -> bool:
        """True for multiprocessing[.*] and concurrent.futures[.*]."""
        if module.split(".")[0] == "multiprocessing":
            return True
        return module == "concurrent.futures" or module.startswith("concurrent.futures.")


# ----------------------------------------------------------------------
# REP009 — shard-worker purity
# ----------------------------------------------------------------------

#: method calls that mutate their receiver in place
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "sort",
    "reverse",
    "write",
    "writelines",
}

#: maximum call-chain depth followed from a worker function
_MAX_DEPTH = 5


@register
class ShardWorkerPurityRule(Rule):
    """Writes to shared state inside shard workers.

    ``run_sharded`` ships ``shared`` to each pool worker *once* (pool
    initializer) and reuses it across that worker's shards — and under
    the thread/serial backends it is not copied at all.  A worker that
    mutates it therefore sees different state depending on which
    shards ran before it on the same worker, which is exactly the
    nondeterminism class PR 5 fixed by hand.  The rule follows every
    function reachable from a ``run_sharded`` call site (module-local
    calls, shared-state arguments tracked positionally and by
    keyword) and flags writes, in-place mutation, and
    ``global``/``nonlocal`` rebinding.
    """

    code = "REP009"
    summary = "shard worker mutates shared state or rebinds global/nonlocal"
    default_severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        analysis = ctx.analysis
        reported: Set[Tuple[int, int, str]] = set()
        for call in analysis.sharded_calls:
            fn_def = self._worker_def(analysis, call)
            if fn_def is None:
                continue
            shared = self._worker_shared_params(fn_def)
            for node, message in self._violations(
                analysis, fn_def, shared, visited=set(), depth=0
            ):
                key = (getattr(node, "lineno", 0), getattr(node, "col_offset", 0), message)
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(ctx, node, message)

    @staticmethod
    def _worker_def(
        analysis: AnalysisContext, call: ShardedCall
    ) -> Optional[ast.FunctionDef]:
        if isinstance(call.fn, ast.Name):
            return analysis.local_function(call.fn.id)
        return None

    @staticmethod
    def _worker_shared_params(fn_def: ast.FunctionDef) -> Set[str]:
        """The worker's shared-state parameter (``fn(shared, shard)``)."""
        params = [a.arg for a in fn_def.args.args]
        return {params[0]} if params else set()

    def _violations(
        self,
        analysis: AnalysisContext,
        fn_def: ast.FunctionDef,
        shared_params: Set[str],
        visited: Set[Tuple[str, Tuple[str, ...]]],
        depth: int,
    ) -> Iterator[Tuple[ast.AST, str]]:
        """Purity violations in ``fn_def`` and functions it calls."""
        key = (fn_def.name, tuple(sorted(shared_params)))
        if key in visited or depth > _MAX_DEPTH:
            return
        visited.add(key)
        roots = set(shared_params)
        for node in ast.walk(fn_def):
            # aliases: `state = shared` / `cache = shared.cache` share
            # the underlying objects; copies (`list(shared.x)`) do not.
            if isinstance(node, ast.Assign):
                value_root = _root_name(node.value)
                if (
                    value_root in roots
                    and isinstance(node.value, (ast.Name, ast.Attribute, ast.Subscript))
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            roots.add(target.id)
        for node in ast.walk(fn_def):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                yield (
                    node,
                    f"{kind} rebinding in {fn_def.name}() reachable from a "
                    "run_sharded call site; shard workers must not touch "
                    "shared module state",
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets: Sequence[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = node.targets
                else:
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = _root_name(target)
                        if root in roots:
                            yield (
                                node,
                                f"write to shared state {root!r} in "
                                f"{fn_def.name}(); shard workers must treat "
                                "shared state as read-only",
                            )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        root = _root_name(target)
                        if root in roots:
                            yield (
                                node,
                                f"del on shared state {root!r} in "
                                f"{fn_def.name}(); shard workers must treat "
                                "shared state as read-only",
                            )
            elif isinstance(node, ast.Call):
                yield from self._call_violations(analysis, fn_def, node, roots, visited, depth)

    def _call_violations(
        self,
        analysis: AnalysisContext,
        fn_def: ast.FunctionDef,
        node: ast.Call,
        roots: Set[str],
        visited: Set[Tuple[str, Tuple[str, ...]]],
        depth: int,
    ) -> Iterator[Tuple[ast.AST, str]]:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            root = _root_name(func.value)
            if root in roots:
                yield (
                    node,
                    f".{func.attr}() mutates shared state {root!r} in "
                    f"{fn_def.name}(); build results locally and return them",
                )
        elif isinstance(func, ast.Name) and func.id in ("setattr", "delattr"):
            if node.args and _root_name(node.args[0]) in roots:
                yield (
                    node,
                    f"{func.id}() on shared state in {fn_def.name}(); "
                    "shard workers must treat shared state as read-only",
                )
        elif isinstance(func, ast.Name):
            callee = analysis.local_function(func.id)
            if callee is not None:
                passed = self._shared_params_of_callee(callee, node, roots)
                if passed:
                    yield from self._violations(
                        analysis, callee, passed, visited, depth + 1
                    )

    @staticmethod
    def _shared_params_of_callee(
        callee: ast.FunctionDef, call: ast.Call, roots: Set[str]
    ) -> Set[str]:
        """Callee parameters that receive shared-state arguments."""
        params = [a.arg for a in callee.args.args]
        passed: Set[str] = set()
        for pos, arg in enumerate(call.args):
            if _root_name(arg) in roots and isinstance(
                arg, (ast.Name, ast.Attribute, ast.Subscript)
            ):
                if pos < len(params):
                    passed.add(params[pos])
        for kw in call.keywords:
            if kw.arg is not None and _root_name(kw.value) in roots:
                if kw.arg in params:
                    passed.add(kw.arg)
        return passed


# ----------------------------------------------------------------------
# REP010 — picklability of workers and shared state
# ----------------------------------------------------------------------

#: type identifiers that cannot travel to a pool worker
_UNPICKLABLE_TYPES = {
    "IO",
    "TextIO",
    "BinaryIO",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Thread",
    "Tracer",
    "Popen",
    "socket",
}

#: constructor calls whose results cannot travel to a pool worker
_UNPICKLABLE_CTORS = {
    "open",
    "Lock",
    "RLock",
    "Condition",
    "Event",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "Thread",
    "Tracer",
    "Popen",
    "socket",
}


@register
class ShardPicklabilityRule(Rule):
    """Unpicklable workers or shared state at ``run_sharded`` sites.

    The process backend pickles the worker function and shared state
    into every pool worker; lambdas, closures and locally-defined
    classes fail there with an opaque ``PicklingError`` — or worse,
    force a silent serial fallback in code that degrades gracefully.
    Shared dataclasses carrying file handles, locks, tracers or
    threads are pickled but arrive broken (a lock's state does not
    cross a fork boundary meaningfully).  Everything dispatched
    through ``run_sharded`` must be module-level and inert.
    """

    code = "REP010"
    summary = "unpicklable worker fn or shared state passed to run_sharded"
    default_severity = Severity.ERROR

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        analysis = ctx.analysis
        for call in analysis.sharded_calls:
            yield from self._check_fn(ctx, analysis, call)
            yield from self._check_shared(ctx, analysis, call)

    def _check_fn(
        self, ctx: ModuleContext, analysis: AnalysisContext, call: ShardedCall
    ) -> Iterator[Finding]:
        fn = call.fn
        if fn is None:
            return
        if isinstance(fn, ast.Lambda):
            yield self.finding(
                ctx,
                fn,
                "lambda passed as run_sharded worker; workers must be "
                "module-level functions (pickled into pool workers)",
            )
        elif isinstance(fn, ast.Call):
            yield self.finding(
                ctx,
                fn,
                "worker built by a call expression (e.g. functools.partial) "
                "is not a module-level function; ship parameters in the "
                "shared state instead",
            )
        elif isinstance(fn, ast.Name):
            if analysis.local_function(fn.id) is not None:
                return
            nested = analysis.nested_function(fn.id)
            if nested is not None:
                qualname, _ = nested
                yield self.finding(
                    ctx,
                    fn,
                    f"worker {fn.id!r} is defined inside {qualname}() — a "
                    "closure cannot be pickled into pool workers; move it "
                    "to module level",
                )

    def _check_shared(
        self, ctx: ModuleContext, analysis: AnalysisContext, call: ShardedCall
    ) -> Iterator[Finding]:
        shared = call.shared
        if shared is None:
            return
        if isinstance(shared, (ast.Lambda, ast.GeneratorExp)):
            kind = "lambda" if isinstance(shared, ast.Lambda) else "generator"
            yield self.finding(
                ctx,
                shared,
                f"{kind} passed as run_sharded shared state is not "
                "picklable; pass plain data",
            )
            return
        ctor = self._constructor_of(analysis, call, shared)
        if ctor is None:
            return
        cls_name = ctor.func.id if isinstance(ctor.func, ast.Name) else None
        if cls_name is None:
            return
        nested = analysis.nested_class(cls_name)
        if nested is not None:
            qualname, _ = nested
            yield self.finding(
                ctx,
                shared,
                f"shared state is an instance of {cls_name!r} defined "
                f"inside {qualname}(); locally-defined classes cannot be "
                "pickled into pool workers",
            )
            return
        cls = analysis.classes.get(cls_name)
        if cls is not None and _is_dataclass(cls):
            yield from self._check_dataclass_fields(ctx, cls)

    @staticmethod
    def _constructor_of(
        analysis: AnalysisContext, call: ShardedCall, shared: ast.expr
    ) -> Optional[ast.Call]:
        """The ``Cls(...)`` call the shared expression traces back to."""
        if isinstance(shared, ast.Call):
            return shared
        if isinstance(shared, ast.Name):
            value = analysis.value_of(shared.id, call.enclosing)
            if isinstance(value, ast.Call):
                return value
        return None

    def _check_dataclass_fields(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            bad = _annotation_identifiers(stmt.annotation) & _UNPICKLABLE_TYPES
            if bad:
                field_name = (
                    stmt.target.id if isinstance(stmt.target, ast.Name) else "?"
                )
                yield self.finding(
                    ctx,
                    stmt,
                    f"shared dataclass {cls.name!r} field {field_name!r} is "
                    f"typed {sorted(bad)[0]} — file handles, locks, tracers "
                    "and threads must not ride in run_sharded shared state",
                )
                continue
            if stmt.value is not None:
                yield from self._check_field_default(ctx, cls, stmt)

    def _check_field_default(
        self, ctx: ModuleContext, cls: ast.ClassDef, stmt: ast.AnnAssign
    ) -> Iterator[Finding]:
        value = stmt.value
        if not isinstance(value, ast.Call):
            return
        name = _call_name(value)
        if name in _UNPICKLABLE_CTORS:
            yield self.finding(
                ctx,
                value,
                f"shared dataclass {cls.name!r} default calls {name}(); "
                "the result cannot ride in run_sharded shared state",
            )
            return
        if name == "field":
            for kw in value.keywords:
                if kw.arg == "default_factory" and isinstance(kw.value, ast.Name):
                    if kw.value.id in _UNPICKLABLE_CTORS:
                        yield self.finding(
                            ctx,
                            kw.value,
                            f"shared dataclass {cls.name!r} default_factory "
                            f"{kw.value.id!r} builds an unpicklable object",
                        )


# ----------------------------------------------------------------------
# REP013 — thread ownership: threads and queues live with a supervisor
# ----------------------------------------------------------------------

#: constructors that spawn or feed long-lived threads
_THREAD_QUEUE_CALLS = {
    "threading.Thread",
    "threading.Timer",
    "queue.Queue",
    "queue.SimpleQueue",
    "queue.LifoQueue",
    "queue.PriorityQueue",
    "_thread.start_new_thread",
}


@register
class ThreadOwnershipRule(Rule):
    """Raw thread/queue construction outside a supervising module.

    An ad-hoc ``threading.Thread`` in compute code escapes every
    contract the repo's concurrency machinery provides: its spans and
    metrics land on the thread's default tracer instead of the run
    record, nothing respawns it when it dies, and its timing leaks
    into results in completion order.  The supervised homes —
    ``repro/parallel`` (executor backends), ``repro/service`` (job
    queue, worker supervisor, socket server) and ``repro/obs`` (RSS
    sampler) — install tracers/registries on their threads and own
    their lifecycle; everything else dispatches through them.
    Synchronisation primitives (locks, conditions, events) are fine
    anywhere — only thread *spawning* and work *queues* are scoped.
    """

    code = "REP013"
    summary = "threading.Thread/queue.Queue outside repro/parallel, repro/service, repro/obs"
    default_severity = Severity.ERROR
    #: the sanctioned homes of thread supervision
    allowed = ("repro/parallel/", "repro/service/", "repro/obs/")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return not ctx.in_scope(self.allowed)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.analysis.resolve(node.func)
            if resolved in _THREAD_QUEUE_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"raw {resolved}() outside a supervising module; "
                    "dispatch through repro.parallel.run_sharded or the "
                    "repro.service worker pool",
                )


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for deco in cls.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _annotation_identifiers(node: ast.expr) -> Set[str]:
    """Every bare identifier mentioned in a type annotation."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # string annotations: re-parse and recurse
            try:
                inner = ast.parse(sub.value, mode="eval")
            except SyntaxError:
                continue
            out.update(_annotation_identifiers(inner.body))
    return out
