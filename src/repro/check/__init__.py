"""``repro.check`` — codebase-aware static analysis for the fill engine.

An AST-based lint pass enforcing the invariants the paper's algorithms
assume but never state: integer database-unit coordinates, DRC
constants flowing from the rule deck, densities compared with
tolerances, exceptions failing loudly in solver paths, explicit module
export surfaces, and — via the dataflow-aware REP008–REP012 pack —
the parallel-safety and determinism contract of the sharded engine
stages.  Run it with::

    python -m repro.check src/

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the paper
sections each rule is anchored to.
"""

from .baseline import (
    BaselineError,
    apply_baseline,
    baseline_counts,
    load_baseline,
    ratchet_violations,
    write_baseline,
)
from .findings import Finding, Severity, render_github, render_json, render_text
from .rules import (
    RULE_REGISTRY,
    AnalysisContext,
    Rule,
    all_rule_codes,
    register,
    select_rules,
)
from .runner import (
    AnalysisResult,
    analyze_file,
    analyze_paths,
    analyze_source,
    collect_noqa,
)

__all__ = [
    "Finding",
    "Severity",
    "render_github",
    "render_json",
    "render_text",
    "RULE_REGISTRY",
    "AnalysisContext",
    "Rule",
    "all_rule_codes",
    "register",
    "select_rules",
    "AnalysisResult",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "collect_noqa",
    "BaselineError",
    "apply_baseline",
    "baseline_counts",
    "load_baseline",
    "ratchet_violations",
    "write_baseline",
]
