"""repro — dummy fill insertion with coupling and uniformity constraints.

A from-scratch Python reproduction of Lin, Yu & Pan, *High Performance
Dummy Fill Insertion with Coupling and Uniformity Constraints*
(DAC 2015): geometric (tile-free) dummy fill planning, Alg. 1 candidate
generation, and LP / dual-min-cost-flow fill sizing, evaluated with the
ICCAD 2014 contest scoring model.

Quickstart::

    from repro import FillConfig, Layout, Rect, WindowGrid, insert_fills

    layout = Layout(Rect(0, 0, 4000, 4000), num_layers=3)
    layout.layer(1).add_wire(Rect(100, 100, 900, 200))
    grid = WindowGrid(layout.die, cols=4, rows=4)
    report = insert_fills(layout, grid, FillConfig())
    print(report.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .contracts import (
    ContractViolation,
    check_density,
    check_drc_params,
    check_rect,
)
from .core import (
    DensityPlan,
    DummyFillEngine,
    FillConfig,
    FillReport,
    insert_fills,
    plan_targets,
)
from .density import (
    ScoreCard,
    ScoreWeights,
    analyze_layout,
    compute_metrics,
    score_layout,
)
from .geometry import Rect, RectilinearPolygon
from .layout import DrcRules, Layout, WindowGrid

# Extension modules (imported lazily by attribute in docs/examples):
# repro.eco, repro.litho, repro.oasis, repro.report, repro.viz, repro.cli

__version__ = "1.0.0"

__all__ = [
    "ContractViolation",
    "check_density",
    "check_drc_params",
    "check_rect",
    "DensityPlan",
    "DummyFillEngine",
    "FillConfig",
    "FillReport",
    "insert_fills",
    "plan_targets",
    "ScoreCard",
    "ScoreWeights",
    "analyze_layout",
    "compute_metrics",
    "score_layout",
    "Rect",
    "RectilinearPolygon",
    "DrcRules",
    "Layout",
    "WindowGrid",
    "__version__",
]
