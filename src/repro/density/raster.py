"""Vectorized raster density kernel (``FillConfig.kernel = "raster"``).

Array implementations of the per-window density quantities, built on
:class:`repro.geometry.Raster` (coordinate-compressed occupancy grids +
integral images).  Every function here is an exact, bit-identical
replacement for its scanline counterpart in
:mod:`repro.density.analysis` — the rect-set path stays in the tree as
the oracle, and the CI ``kernel-parity`` job ``cmp``'s the GDSII bytes
of both kernels on every PR.

Why this is exact and not an approximation: the raster grid is the
coordinate grid *induced by the shapes themselves* (plus the window cut
lines), so every shape is a union of whole cells and all sums are
int64.  Floats appear only in the final density divisions, which use
the same operand values (and therefore the same IEEE-754 roundings) as
the oracle.

Why it is fast: one die-wide pass per layer replaces thousands of
per-window ``RectSet`` constructions.  To keep memory linear in the
shape count (a single global compressed grid is quadratic: 10k fills
would mean a 20k x 20k cell grid), all passes slice the die into
window-column strips; each strip's grid is small and the per-strip
results land directly in the output map's column.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..contracts import check_density
from ..geometry import IntArray, Raster, Rect
from ..layout import DrcRules, Layer, WindowGrid

if TYPE_CHECKING:  # analysis imports this module lazily; no cycle at runtime
    from .analysis import LayerDensity

__all__ = [
    "window_cuts",
    "raster_area_map",
    "raster_fill_regions",
    "raster_analyze_layer",
    "raster_refresh_layer",
    "raster_overlay_map",
]

_I64 = np.int64


def window_cuts(grid: WindowGrid) -> Tuple[List[int], List[int]]:
    """The grid's window boundary coordinates per axis.

    Matches :meth:`WindowGrid.window` exactly: uniform cuts except the
    last column/row, which absorbs the division remainder.
    """
    die = grid.die
    xs = [die.xl + i * grid.window_width for i in range(grid.cols)] + [die.xh]
    ys = [die.yl + j * grid.window_height for j in range(grid.rows)] + [die.yh]
    return xs, ys


def _coords(rects: Sequence[Rect]) -> Tuple[IntArray, IntArray, IntArray, IntArray]:
    n = len(rects)
    x0: IntArray = np.empty(n, dtype=_I64)
    y0: IntArray = np.empty(n, dtype=_I64)
    x1: IntArray = np.empty(n, dtype=_I64)
    y1: IntArray = np.empty(n, dtype=_I64)
    for k, r in enumerate(rects):
        x0[k] = r.xl
        y0[k] = r.yl
        x1[k] = r.xh
        y1[k] = r.yh
    return x0, y0, x1, y1


def raster_area_map(
    shapes: Sequence[Rect],
    grid: WindowGrid,
    *,
    exact_union: bool,
    cols: Optional[Sequence[int]] = None,
) -> "np.ndarray":
    """Per-window covered area of ``shapes`` — raster twin of
    ``analysis._area_map``.

    ``exact_union=True`` counts each point once however many shapes
    cover it (occupancy x cell area); ``False`` sums per-shape clipped
    areas (multiplicity x cell area).  ``cols`` restricts the work to a
    subset of window columns (the incremental-refresh path); other
    columns stay zero.
    """
    x_cuts, y_cuts = window_cuts(grid)
    out = np.zeros((grid.cols, grid.rows), dtype=_I64)
    if not shapes:
        return out
    x0, y0, x1, y1 = _coords(shapes)
    for i in (range(grid.cols) if cols is None else cols):
        sx0, sx1 = x_cuts[i], x_cuts[i + 1]
        m = (x0 < sx1) & (x1 > sx0)
        if not bool(m.any()):
            continue
        ras = Raster.from_arrays(
            x0[m], y0[m], x1[m], y1[m], extra_x=[sx0, sx1], extra_y=y_cuts
        )
        if exact_union:
            out[i, :] = ras.covered_window_areas([sx0, sx1], y_cuts)[0]
        else:
            weighted = ras.counts * ras.cell_areas()
            out[i, :] = ras.window_sums(weighted, [sx0, sx1], y_cuts)[0]
    return out


def raster_fill_regions(
    layer: Layer,
    grid: WindowGrid,
    rules: DrcRules,
    window_margin: int = 0,
    keys: Optional[Sequence[Tuple[int, int]]] = None,
) -> Dict[Tuple[int, int], List[Rect]]:
    """Feasible fill region per window — raster twin of
    ``analysis.compute_fill_regions``.

    Obstacles are bloated by the minimum spacing once, as coordinate
    arithmetic; per window-column strip the bloated set is rasterized
    with the inner-window boundaries as cut lines, and each window's
    region is recovered from the free cells as maximal horizontal runs
    merged vertically — exactly the canonical rect list
    ``rect_set_subtract([inner], bloated)`` produces, in the same
    order.  ``keys`` restricts the output to those windows.
    """
    margin = rules.min_spacing
    wanted: Dict[int, List[int]] = {}
    for (i, j) in (keys if keys is not None else ((i, j) for i, j, _ in grid)):
        wanted.setdefault(i, []).append(j)
    regions: Dict[Tuple[int, int], List[Rect]] = {}
    wx0, wy0, wx1, wy1 = _coords(layer.wires)
    bx0, by0 = wx0 - margin, wy0 - margin
    bx1, by1 = wx1 + margin, wy1 + margin
    for i, rows in wanted.items():
        inners = {
            j: (grid.window(i, j).shrunk(window_margin) if window_margin else grid.window(i, j))
            for j in rows
        }
        live = {j: inner for j, inner in inners.items() if inner is not None}
        for j in rows:
            regions[(i, j)] = []
        if not live:
            continue
        any_inner = next(iter(live.values()))
        extra_x = [any_inner.xl, any_inner.xh]  # shared by the column
        extra_y = sorted({c for r in live.values() for c in (r.yl, r.yh)})
        m = (bx0 < extra_x[1]) & (bx1 > extra_x[0])
        ras = Raster.from_arrays(bx0[m], by0[m], bx1[m], by1[m], extra_x, extra_y)
        for j, inner in live.items():
            i_lo = int(np.searchsorted(ras.xs, inner.xl))
            i_hi = int(np.searchsorted(ras.xs, inner.xh))
            j_lo = int(np.searchsorted(ras.ys, inner.yl))
            j_hi = int(np.searchsorted(ras.ys, inner.yh))
            regions[(i, j)] = ras.free_rects_in(i_lo, i_hi, j_lo, j_hi)
    return regions


def _usable_map(
    regions: Dict[Tuple[int, int], List[Rect]], grid: WindowGrid, rules: DrcRules
) -> "np.ndarray":
    from .analysis import usable_fill_area

    usable = np.zeros((grid.cols, grid.rows), dtype=_I64)
    for (i, j), region in regions.items():
        usable[i, j] = usable_fill_area(region, rules)
    return usable


def raster_analyze_layer(
    layer: Layer, grid: WindowGrid, rules: DrcRules, window_margin: int = 0
) -> "LayerDensity":
    """Density analysis for one layer on the raster kernel.

    Produces a :class:`~repro.density.analysis.LayerDensity` that is
    bit-identical to ``analyze_layer(..., kernel="rect")``: the int64
    window areas match exactly, and the density divisions use the same
    operand values, hence the same IEEE-754 results.
    """
    from .analysis import LayerDensity, window_area_map

    aw = window_area_map(grid)
    lower = raster_area_map(layer.wires, grid, exact_union=True) / aw
    regions = raster_fill_regions(layer, grid, rules, window_margin)
    upper = np.minimum(1.0, lower + _usable_map(regions, grid, rules) / aw)
    check_density(lower, name=f"layer {layer.number} lower density l(i,j)")
    check_density(upper, name=f"layer {layer.number} upper density u(i,j)")
    return LayerDensity(layer.number, lower, upper, regions)


def raster_refresh_layer(
    layer: Layer,
    grid: WindowGrid,
    rules: DrcRules,
    window_margin: int,
    keys: Sequence[Tuple[int, int]],
    lower: "np.ndarray",
    upper: "np.ndarray",
    regions: Dict[Tuple[int, int], List[Rect]],
) -> None:
    """Sliced raster update of the dirtied windows, in place.

    Only the window-column strips containing dirty windows are
    rasterized, and only the dirty cells of ``lower``/``upper``/
    ``regions`` are written — everything else carries over, which is
    what keeps the incremental result bit-identical to a fresh global
    analysis.
    """
    cols = sorted({i for i, _ in keys})
    areas = raster_area_map(layer.wires, grid, exact_union=True, cols=cols)
    fresh = raster_fill_regions(layer, grid, rules, window_margin, keys=keys)
    from .analysis import usable_fill_area

    for i, j in keys:
        win_area = grid.window_area(i, j)
        lower[i, j] = areas[i, j] / win_area
        region = fresh[(i, j)]
        regions[(i, j)] = region
        upper[i, j] = min(1.0, lower[i, j] + usable_fill_area(region, rules) / win_area)


def raster_overlay_map(lower: Layer, upper: Layer, grid: WindowGrid) -> "np.ndarray":
    """Per-window overlay between adjacent layers — raster twin of
    ``analysis.overlay_map``.

    For each of the three fill-induced pair terms, both rect sets are
    rasterized per window-column strip onto a *shared* edge set (each
    side contributes its clipped coordinates to the other's cut lines),
    so the pairwise intersection is the elementwise AND of the two
    occupancies and the per-window charge is one windowed sum.
    """
    pairs = (
        (lower.fills, upper.wires),
        (lower.wires, upper.fills),
        (lower.fills, upper.fills),
    )
    x_cuts, y_cuts = window_cuts(grid)
    y_cuts_arr = np.asarray(y_cuts, dtype=_I64)
    out = np.zeros((grid.cols, grid.rows), dtype=_I64)
    for shapes_a, shapes_b in pairs:
        if not shapes_a or not shapes_b:
            continue
        ax0, ay0, ax1, ay1 = _coords(shapes_a)
        bx0, by0, bx1, by1 = _coords(shapes_b)
        for i in range(grid.cols):
            sx0, sx1 = x_cuts[i], x_cuts[i + 1]
            ma = (ax0 < sx1) & (ax1 > sx0)
            if not bool(ma.any()):
                continue
            mb = (bx0 < sx1) & (bx1 > sx0)
            if not bool(mb.any()):
                continue
            strip = np.asarray([sx0, sx1], dtype=_I64)
            ex = np.concatenate(
                [
                    strip,
                    np.clip(ax0[ma], sx0, sx1),
                    np.clip(ax1[ma], sx0, sx1),
                    np.clip(bx0[mb], sx0, sx1),
                    np.clip(bx1[mb], sx0, sx1),
                ]
            )
            ey = np.concatenate([y_cuts_arr, ay0[ma], ay1[ma], by0[mb], by1[mb]])
            ras_a = Raster.from_arrays(ax0[ma], ay0[ma], ax1[ma], ay1[ma], ex, ey)
            ras_b = Raster.from_arrays(bx0[mb], by0[mb], bx1[mb], by1[mb], ex, ey)
            both = (ras_a.occupancy() & ras_b.occupancy()).astype(_I64)
            out[i, :] += ras_a.window_sums(both * ras_a.cell_areas(), [sx0, sx1], y_cuts)[0]
    return out
