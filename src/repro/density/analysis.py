"""Density analysis: window density maps, fill regions, density bounds.

This is the "density analysis" phase of the classic two-phase flow the
paper builds on (§1): collect wire density and available fill regions
per window, from which the planner (§3.1) derives per-window density
bounds ``l(i, j)`` (existing wire density) and ``u(i, j)`` (wire density
plus everything the free space could hold).

All maps are numpy arrays of shape ``(cols, rows)`` indexed ``[i, j]``
with ``i`` the column, matching Eqn. (1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..contracts import check_density
from ..geometry import GridIndex, Rect, RectSet, rect_set_subtract
from ..layout import DrcRules, Layer, Layout, WindowGrid

__all__ = [
    "window_area_map",
    "wire_density_map",
    "fill_density_map",
    "metal_density_map",
    "compute_fill_regions",
    "usable_fill_area",
    "LayerDensity",
    "analyze_layer",
    "analyze_layout",
    "refresh_analysis",
    "overlay_area",
    "overlay_map",
    "fill_overlay_area",
]


def _shape_index(shapes: Sequence[Rect], die: Rect) -> GridIndex[int]:
    cell = max(64, min(die.width, die.height) // 16)
    index: GridIndex[int] = GridIndex(cell)
    for k, s in enumerate(shapes):
        index.insert(s, k)
    return index


def _area_map(shapes: Sequence[Rect], grid: WindowGrid, *, exact_union: bool) -> np.ndarray:
    """Per-window covered area of ``shapes``.

    ``exact_union=True`` de-duplicates overlapping shapes (needed for
    wires, which may overlap at connections); fills are disjoint by
    construction so a plain clipped sum suffices.
    """
    areas = np.zeros((grid.cols, grid.rows), dtype=np.int64)
    index = _shape_index(shapes, grid.die)
    for i, j, win in grid:
        hits = index.query_overlapping(win)
        if not hits:
            continue
        if exact_union:
            clipped = [r.intersection(win) for r, _ in hits]
            areas[i, j] = RectSet(c for c in clipped if c is not None).area
        else:
            areas[i, j] = sum(r.intersection_area(win) for r, _ in hits)
    return areas


def _kernel_area_map(
    shapes: Sequence[Rect], grid: WindowGrid, *, exact_union: bool, kernel: str
) -> np.ndarray:
    if kernel == "raster":
        from .raster import raster_area_map

        return raster_area_map(shapes, grid, exact_union=exact_union)
    return _area_map(shapes, grid, exact_union=exact_union)


def wire_density_map(layer: Layer, grid: WindowGrid, *, kernel: str = "rect") -> np.ndarray:
    """Wire density ``d_w(i, j)`` per window — the lower bound l(i, j)."""
    areas = _kernel_area_map(layer.wires, grid, exact_union=True, kernel=kernel)
    return _to_density(areas, grid)


def fill_density_map(layer: Layer, grid: WindowGrid, *, kernel: str = "rect") -> np.ndarray:
    """Dummy-fill density per window."""
    areas = _kernel_area_map(layer.fills, grid, exact_union=False, kernel=kernel)
    return _to_density(areas, grid)


def metal_density_map(layer: Layer, grid: WindowGrid, *, kernel: str = "rect") -> np.ndarray:
    """Total layout density d(i, j): wires plus fills."""
    areas = _kernel_area_map(layer.shapes, grid, exact_union=True, kernel=kernel)
    return _to_density(areas, grid)


def window_area_map(grid: WindowGrid) -> np.ndarray:
    """Window areas ``aw(i, j)`` as a ``(cols, rows)`` int64 array.

    The vectorized form of :meth:`WindowGrid.window_area` — the outer
    product of the column widths and row heights (only the last
    column/row can differ, by the division remainder).
    """
    widths = np.asarray(grid.column_widths(), dtype=np.int64)
    heights = np.asarray(grid.row_heights(), dtype=np.int64)
    return np.outer(widths, heights)


def _to_density(areas: np.ndarray, grid: WindowGrid) -> np.ndarray:
    return areas / window_area_map(grid)


def compute_fill_regions(
    layer: Layer,
    grid: WindowGrid,
    rules: DrcRules,
    blockages: Optional[Sequence[Rect]] = None,
    window_margin: int = 0,
) -> Dict[Tuple[int, int], List[Rect]]:
    """Feasible fill region per window: free space at legal spacing.

    The fill region of a window is the window minus every wire (and
    explicit blockage) bloated by the minimum spacing ``sm`` — exactly
    the space where a fill may legally sit.  Returned as disjoint
    rectangles per window.

    ``window_margin`` additionally insets each window edge; the engine
    passes ``ceil(sm / 2)`` so that fills generated independently in
    adjacent windows still respect the spacing rule across the window
    boundary.
    """
    regions: Dict[Tuple[int, int], List[Rect]] = {}
    obstacles = list(layer.wires) + (list(blockages) if blockages else [])
    index = _shape_index(obstacles, grid.die)
    margin = rules.min_spacing
    for i, j, win in grid:
        inner = win.shrunk(window_margin) if window_margin else win
        if inner is None:
            regions[(i, j)] = []
            continue
        nearby = index.query_within(inner, margin)
        bloated = [r.expanded(margin) for r, _ in nearby]
        regions[(i, j)] = rect_set_subtract([inner], bloated)
    return regions


def usable_fill_area(region: Sequence[Rect], rules: DrcRules) -> int:
    """Area of the region pieces a legal fill could actually occupy.

    Rectangles narrower than the minimum width in either dimension can
    never host a DRC-clean fill, so the density upper bound must not
    count them.
    """
    return sum(
        r.area
        for r in region
        if r.width >= rules.min_width
        and r.height >= rules.min_width
        and r.area >= rules.min_area
    )


def _analyze_window(
    index: GridIndex[int],
    win: Rect,
    win_area: int,
    rules: DrcRules,
    window_margin: int,
) -> Tuple[float, float, List[Rect]]:
    """Density bounds and fill region for one window.

    The single per-window analysis body: ``l`` (wire density), ``u``
    (wire density plus usable free space) and the feasible fill region.
    Both the full analysis (:func:`analyze_layer`) and the incremental
    path (:func:`refresh_analysis`) call this, so the two cannot drift;
    the raster kernel replaces it wholesale with array passes that
    reproduce its results bit for bit.
    """
    hits = index.query_overlapping(win)
    if hits:
        clipped = [r.intersection(win) for r, _ in hits]
        wire_area = RectSet(c for c in clipped if c is not None).area
    else:
        wire_area = 0
    lower = wire_area / win_area
    inner = win.shrunk(window_margin) if window_margin else win
    if inner is None:
        region: List[Rect] = []
    else:
        nearby = index.query_within(inner, rules.min_spacing)
        bloated = [r.expanded(rules.min_spacing) for r, _ in nearby]
        region = rect_set_subtract([inner], bloated)
    upper = min(1.0, lower + usable_fill_area(region, rules) / win_area)
    return lower, upper, region


@dataclass
class LayerDensity:
    """Density-analysis product for one layer.

    ``lower`` is ``l(i, j)`` (wire density) and ``upper`` is ``u(i, j)``
    (wire density plus usable free space) — the bounds that drive target
    density planning (§3.1, Eqn. (5)).
    """

    layer_number: int
    lower: np.ndarray
    upper: np.ndarray
    fill_regions: Dict[Tuple[int, int], List[Rect]]

    @property
    def max_lower(self) -> float:
        """max l(k, n) over all windows — the Case I target (Eqn. (6))."""
        return float(self.lower.max())

    @property
    def min_upper(self) -> float:
        """min u(k, n) over all windows — Case II search ceiling."""
        return float(self.upper.min())

    @property
    def has_constrained_window(self) -> bool:
        """True when some window cannot reach max l(k, n) — Eqn. (7)."""
        return bool((self.upper < self.max_lower - 1e-12).any())


def analyze_layer(
    layer: Layer,
    grid: WindowGrid,
    rules: DrcRules,
    window_margin: int = 0,
    *,
    kernel: str = "rect",
) -> LayerDensity:
    """Run density analysis for one layer.

    ``kernel`` selects the implementation: ``"rect"`` is the scanline
    rect-set oracle (one :func:`_analyze_window` call per window),
    ``"raster"`` the vectorized occupancy-grid kernel
    (:mod:`repro.density.raster`) whose output is bit-identical.
    """
    if kernel == "raster":
        from .raster import raster_analyze_layer

        return raster_analyze_layer(layer, grid, rules, window_margin)
    index = _shape_index(layer.wires, grid.die)
    lower = np.zeros((grid.cols, grid.rows), dtype=np.float64)
    upper = np.zeros((grid.cols, grid.rows), dtype=np.float64)
    regions: Dict[Tuple[int, int], List[Rect]] = {}
    for i, j, win in grid:
        lo, up, region = _analyze_window(
            index, win, grid.window_area(i, j), rules, window_margin
        )
        lower[i, j] = lo
        upper[i, j] = up
        regions[(i, j)] = region
    check_density(lower, name=f"layer {layer.number} lower density l(i,j)")
    check_density(upper, name=f"layer {layer.number} upper density u(i,j)")
    return LayerDensity(layer.number, lower, upper, regions)


@dataclass(frozen=True)
class _AnalysisShared:
    """Read-only inputs every layer of an analysis run shares.

    Built once per :func:`analyze_layout` call and shipped to parallel
    workers once per worker (pool initializer), so the grid and DRC
    rules are pickled exactly once; the layers themselves are the
    shard items.
    """

    grid: WindowGrid
    rules: DrcRules
    window_margin: int
    kernel: str = "rect"


def _analyze_shard(
    shared: _AnalysisShared, layers: Sequence[Layer]
) -> List[LayerDensity]:
    """Worker entry point: density analysis over one shard of layers.

    Raster state never crosses the shard boundary: with
    ``kernel="raster"`` each worker rasterizes its own layers locally,
    so only the plain :class:`_AnalysisShared` inputs and the resulting
    :class:`LayerDensity` values are ever pickled.
    """
    out: List[LayerDensity] = []
    for layer in layers:
        out.append(
            analyze_layer(
                layer,
                shared.grid,
                shared.rules,
                shared.window_margin,
                kernel=shared.kernel,
            )
        )
        obs.metrics.counter("analysis.layers").inc()
    return out


def analyze_layout(
    layout: Layout,
    grid: WindowGrid,
    window_margin: int = 0,
    *,
    workers: int = 1,
    parallel: str = "process",
    sanitize: Optional[bool] = None,
    kernel: str = "rect",
) -> Dict[int, LayerDensity]:
    """Density analysis for every layer of a layout.

    Layers are independent by construction — each window's ``l(i, j)``
    and ``u(i, j)`` read only that layer's wires — so with
    ``workers != 1`` the layer list is sharded contiguously in layer
    order and the shards run on the :mod:`repro.parallel` backend
    named by ``parallel``; per-layer results (and worker
    spans/metrics) merge in shard order, so the returned
    ``{layer_number: LayerDensity}`` dict is bit-identical to the
    serial run for any worker count and backend.  ``workers=0`` means
    one worker per available core.  ``sanitize`` arms the shard
    sanitizer (see :func:`repro.parallel.run_sharded`).  ``kernel``
    selects the per-layer implementation (see :func:`analyze_layer`);
    both produce identical results, so it composes freely with any
    worker count.
    """
    shared = _AnalysisShared(
        grid=grid, rules=layout.rules, window_margin=window_margin, kernel=kernel
    )
    layers = list(layout.layers)
    from ..parallel import resolve_workers, run_sharded, shard_items

    workers = resolve_workers(workers)
    if workers == 1 or len(layers) <= 1:
        densities = _analyze_shard(shared, layers)
    else:
        shards = shard_items(layers, workers)
        densities = [
            ld
            for shard_densities in run_sharded(
                _analyze_shard,
                shared,
                shards,
                workers=workers,
                backend=parallel,
                label="analysis.shard",
                sanitize=sanitize,
            )
            for ld in shard_densities
        ]
    return {ld.layer_number: ld for ld in densities}


def refresh_analysis(
    layout: Layout,
    grid: WindowGrid,
    cached: Dict[int, LayerDensity],
    windows: Sequence[Tuple[int, int]],
    *,
    layers: Optional[Sequence[int]] = None,
    window_margin: int = 0,
    kernel: str = "rect",
) -> Dict[int, LayerDensity]:
    """Recompute a cached analysis for a subset of windows and layers.

    Density bounds and fill regions read only the layer's *wires*
    (never its fills), so a cached :func:`analyze_layout` result stays
    valid until wires change — and a wire change only perturbs the
    windows within spacing reach of the new geometry.  This is the
    incremental path the ECO flow and the fill service use: pass the
    cached per-layer analysis, the dirtied window keys, and the layer
    numbers whose wires changed; every (layer, window) pair outside
    that set is carried over untouched, so the result is bit-identical
    to a fresh global :func:`analyze_layout` of the updated layout.

    ``window_margin`` must match the value the cached analysis was
    built with (the engine's ``config.effective_margin``).  Input
    ``LayerDensity`` objects are never mutated; refreshed layers get
    fresh arrays and region dicts.
    """
    rules = layout.rules
    keys = sorted(set(windows))
    changed = set(layout.layer_numbers if layers is None else layers)
    out: Dict[int, LayerDensity] = {}
    refreshed_layers = 0
    for n in layout.layer_numbers:
        ld = cached[n]
        if n not in changed or not keys:
            out[n] = ld
            continue
        layer = layout.layer(n)
        lower = ld.lower.copy()
        upper = ld.upper.copy()
        regions = dict(ld.fill_regions)
        if kernel == "raster":
            from .raster import raster_refresh_layer

            raster_refresh_layer(
                layer, grid, rules, window_margin, keys, lower, upper, regions
            )
        else:
            index = _shape_index(layer.wires, grid.die)
            for i, j in keys:
                lo, up, region = _analyze_window(
                    index, grid.window(i, j), grid.window_area(i, j), rules, window_margin
                )
                lower[i, j] = lo
                upper[i, j] = up
                regions[(i, j)] = region
        check_density(lower, name=f"layer {n} lower density l(i,j)")
        check_density(upper, name=f"layer {n} upper density u(i,j)")
        refreshed_layers += 1
        out[n] = LayerDensity(n, lower, upper, regions)
    # One refresh = one count of the dirtied windows, however many
    # layers re-read them; the per-layer fan-out is its own metric.
    if refreshed_layers:
        obs.count("analysis.refreshed_windows", len(keys))
        obs.count("analysis.refreshed_layers", refreshed_layers)
    return out


def overlay_area(lower: Layer, upper: Layer) -> int:
    """Fill-induced overlay between two adjacent layers (§2.1).

    Counts the overlap between each layer's *fills* and the other
    layer's full metal (wires and fills); the fill-fill overlap region
    is common to both terms and must not be double counted.
    """
    from ..geometry import intersection_area

    lo_fills, hi_fills = lower.fills, upper.fills
    fills_vs_wires = intersection_area(lo_fills, upper.wires)
    wires_vs_fills = intersection_area(lower.wires, hi_fills)
    fills_vs_fills = intersection_area(lo_fills, hi_fills)
    return fills_vs_wires + wires_vs_fills + fills_vs_fills


def overlay_map(
    lower: Layer, upper: Layer, grid: WindowGrid, *, kernel: str = "rect"
) -> np.ndarray:
    """Per-window fill-induced overlay area between two adjacent layers.

    Splits :func:`overlay_area` over the fixed dissection: each window
    is charged the part of the overlay region it contains.  The grid
    windows partition the die and area is additive over a partition, so
    ``overlay_map(lo, hi, grid).sum() == overlay_area(lo, hi)`` exactly
    — which makes the map usable as an *attribution*: the windows with
    the largest cells are the ones a regressed Overlay* score points
    at.
    """
    if kernel == "raster":
        from .raster import raster_overlay_map

        return raster_overlay_map(lower, upper, grid)
    from ..geometry import intersection_area

    pairs = (
        (lower.fills, upper.wires),
        (lower.wires, upper.fills),
        (lower.fills, upper.fills),
    )
    out = np.zeros((grid.cols, grid.rows), dtype=np.int64)
    for shapes_a, shapes_b in pairs:
        if not shapes_a or not shapes_b:
            continue
        index_a = _shape_index(shapes_a, grid.die)
        index_b = _shape_index(shapes_b, grid.die)
        for i, j, win in grid:
            hits_a = index_a.query_overlapping(win)
            if not hits_a:
                continue
            hits_b = index_b.query_overlapping(win)
            if not hits_b:
                continue
            clipped_a = [r.intersection(win) for r, _ in hits_a]
            clipped_b = [r.intersection(win) for r, _ in hits_b]
            out[i, j] += intersection_area(
                [c for c in clipped_a if c is not None],
                [c for c in clipped_b if c is not None],
            )
    return out


def fill_overlay_area(layout: Layout) -> Dict[Tuple[int, int], int]:
    """Overlay per adjacent layer pair for a whole layout."""
    out: Dict[Tuple[int, int], int] = {}
    for lo, hi in layout.adjacent_pairs():
        out[(lo.number, hi.number)] = overlay_area(lo, hi)
    return out
