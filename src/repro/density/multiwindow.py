"""Multi-window (overlapping-dissection) density analysis.

The fixed dissection of Fig. 2(b) only sees density at one phase; CMP
hotspots that straddle a window boundary are averaged away.  The
multilevel analysis of Kahng et al. [3] (cited in §1) slides the window
over the layout in steps of ``w/r`` — equivalently, evaluates ``r x r``
phase-shifted copies of the window grid — and takes the *worst* window
anywhere.

This module implements that analysis on top of the single-grid
machinery: :class:`MultiWindowGrid` enumerates the phase-shifted grids
(interior windows only — partial boundary windows are excluded, as in
[3]) and :func:`multiwindow_metrics` reports the worst-phase metrics.
The engine itself plans on the base grid (as the paper does); the
multi-window analysis is the *verification* view, and the
``bench_ablation_windows`` sweep shows how much a single-phase score
underestimates the sliding-window extremes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..geometry import Rect
from ..layout import Layer, WindowGrid
from .analysis import metal_density_map, wire_density_map
from .metrics import DensityMetrics, compute_metrics

__all__ = ["MultiWindowGrid", "MultiWindowMetrics", "multiwindow_metrics"]


class MultiWindowGrid:
    """``r^2`` phase-shifted copies of a window dissection.

    Phase ``(a, b)`` shifts the base grid by ``(a·w/r, b·w/r)``; the
    shifted grids drop their partial boundary windows, so every
    evaluated window is a full ``w x w`` square inside the die.
    """

    def __init__(self, base: WindowGrid, r: int = 2):
        if r < 1:
            raise ValueError("phase count r must be at least 1")
        if base.window_width % r or base.window_height % r:
            raise ValueError("window size must be divisible by r")
        self.base = base
        self.r = r

    @property
    def num_phases(self) -> int:
        return self.r * self.r

    def phases(self) -> Iterator[Tuple[int, int, WindowGrid]]:
        """Yield ``(a, b, shifted_grid)`` for every phase."""
        die = self.base.die
        step_x = self.base.window_width // self.r
        step_y = self.base.window_height // self.r
        for a in range(self.r):
            for b in range(self.r):
                xl = die.xl + a * step_x
                yl = die.yl + b * step_y
                cols = (die.xh - xl) // self.base.window_width
                rows = (die.yh - yl) // self.base.window_height
                if cols < 1 or rows < 1:
                    continue
                inner = Rect(
                    xl,
                    yl,
                    xl + cols * self.base.window_width,
                    yl + rows * self.base.window_height,
                )
                yield a, b, WindowGrid(inner, cols, rows)


@dataclass(frozen=True)
class MultiWindowMetrics:
    """Worst-phase view of the sliding-window density."""

    worst_sigma: float
    worst_line: float
    worst_outlier: float
    min_density: float
    max_density: float
    base: DensityMetrics

    @property
    def sigma_underestimate(self) -> float:
        """How much the single-phase σ underestimates the worst phase."""
        if self.worst_sigma <= 0:
            return 0.0
        return 1.0 - self.base.sigma / self.worst_sigma


def multiwindow_metrics(
    layer: Layer,
    grid: MultiWindowGrid,
    *,
    include_fills: bool = True,
) -> MultiWindowMetrics:
    """Evaluate a layer's density on every phase; report the worst.

    ``include_fills=False`` analyses the wire density only (the
    pre-fill view used when auditing inputs).
    """
    density_fn = metal_density_map if include_fills else wire_density_map
    worst_sigma = worst_line = worst_outlier = 0.0
    min_d, max_d = float("inf"), float("-inf")
    base_metrics: DensityMetrics = None  # type: ignore[assignment]
    for a, b, phase_grid in grid.phases():
        d = density_fn(layer, phase_grid)
        m = compute_metrics(d)
        if a == 0 and b == 0:
            base_metrics = m
        worst_sigma = max(worst_sigma, m.sigma)
        worst_line = max(worst_line, m.line)
        worst_outlier = max(worst_outlier, m.outlier)
        min_d = min(min_d, float(d.min()))
        max_d = max(max_d, float(d.max()))
    if base_metrics is None:
        raise ValueError("multi-window grid produced no phases")
    return MultiWindowMetrics(
        worst_sigma=worst_sigma,
        worst_line=worst_line,
        worst_outlier=worst_outlier,
        min_density=min_d,
        max_density=max_d,
        base=base_metrics,
    )
