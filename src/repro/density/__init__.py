"""Density analysis, uniformity metrics, and contest scoring."""

from .analysis import (
    LayerDensity,
    analyze_layer,
    analyze_layout,
    compute_fill_regions,
    fill_density_map,
    fill_overlay_area,
    metal_density_map,
    overlay_area,
    overlay_map,
    usable_fill_area,
    window_area_map,
    wire_density_map,
)
from .multiwindow import (
    MultiWindowGrid,
    MultiWindowMetrics,
    multiwindow_metrics,
)
from .metrics import (
    DensityMetrics,
    compute_metrics,
    line_hotspots,
    outlier_hotspots,
    variation,
)
from .scoring import (
    RawComponents,
    ScoreCard,
    ScoreWeights,
    component_score,
    measure_raw_components,
    score_layout,
    worst_windows,
)

__all__ = [
    "LayerDensity",
    "analyze_layer",
    "analyze_layout",
    "compute_fill_regions",
    "fill_density_map",
    "fill_overlay_area",
    "metal_density_map",
    "overlay_area",
    "overlay_map",
    "usable_fill_area",
    "window_area_map",
    "wire_density_map",
    "DensityMetrics",
    "compute_metrics",
    "line_hotspots",
    "outlier_hotspots",
    "variation",
    "MultiWindowGrid",
    "MultiWindowMetrics",
    "multiwindow_metrics",
    "RawComponents",
    "ScoreCard",
    "ScoreWeights",
    "component_score",
    "measure_raw_components",
    "score_layout",
    "worst_windows",
]
