"""ICCAD 2014 contest scoring (paper §2.3 and §4).

Implements the combined objective of Eqn. (3):

    score = α_ov·s_ov + α_σ·s_σ + α_lh·s_lh + α_oh·s_oh + α_fs·s_fs
            (+ α_rt·s_rt + α_mem·s_mem for the full testcase score)

with every component scored by Eqn. (4):  f(x) = max(0, 1 − x/β).

Raw component values follow the paper exactly:

* overlay   — Σ over adjacent layer pairs of fill overlay area,
* variation — Σ over layers of σ(l),
* line      — Σ over layers of lh(l),
* outlier   — (Σ_l σ(l)) · (Σ_l oh(l))   (the product form in Eqn. (3)),
* file size — bytes of the output GDSII,
* runtime / memory — wall seconds and peak MB (testcase score only).

**Testcase Quality** is the weighted sum of the first five (solution
quality); **Testcase Score** additionally includes runtime and memory —
the two right-most columns of Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List

import numpy as np

from ..layout import Layout, WindowGrid
from .analysis import fill_overlay_area, metal_density_map, overlay_map
from .metrics import compute_metrics

__all__ = [
    "ScoreWeights",
    "RawComponents",
    "ScoreCard",
    "component_score",
    "measure_raw_components",
    "score_layout",
    "worst_windows",
]


def component_score(x: float, beta: float) -> float:
    """Eqn. (4): f(x) = max(0, 1 − x/β)."""
    if beta <= 0:
        raise ValueError("beta must be positive")
    return max(0.0, 1.0 - x / beta)


@dataclass(frozen=True)
class ScoreWeights:
    """α and β coefficients for one benchmark (one row of Table 2).

    The default α values are the contest weights shared by all three
    benchmarks; β values are benchmark-specific and must be supplied.
    """

    beta_overlay: float
    beta_variation: float
    beta_line: float
    beta_outlier: float
    beta_size: float
    beta_runtime: float
    beta_memory: float
    alpha_overlay: float = 0.2
    alpha_variation: float = 0.2
    alpha_line: float = 0.2
    alpha_outlier: float = 0.15
    alpha_size: float = 0.05
    alpha_runtime: float = 0.15
    alpha_memory: float = 0.05

    @property
    def quality_weight(self) -> float:
        """Total α mass of the five quality components."""
        return (
            self.alpha_overlay
            + self.alpha_variation
            + self.alpha_line
            + self.alpha_outlier
            + self.alpha_size
        )


@dataclass(frozen=True)
class RawComponents:
    """Raw (unnormalised) values entering Eqn. (4)."""

    overlay: float
    variation: float
    line: float
    outlier: float
    file_size: float = 0.0
    runtime: float = 0.0
    memory: float = 0.0


@dataclass(frozen=True)
class ScoreCard:
    """Per-component scores plus the Table 3 aggregates."""

    weights: ScoreWeights
    raw: RawComponents
    overlay: float
    variation: float
    line: float
    outlier: float
    size: float
    runtime: float
    memory: float

    @property
    def quality(self) -> float:
        """Testcase Quality: weighted sum excluding runtime and memory."""
        w = self.weights
        return (
            w.alpha_overlay * self.overlay
            + w.alpha_variation * self.variation
            + w.alpha_line * self.line
            + w.alpha_outlier * self.outlier
            + w.alpha_size * self.size
        )

    @property
    def total(self) -> float:
        """Testcase Score: quality plus runtime and memory terms."""
        w = self.weights
        return (
            self.quality
            + w.alpha_runtime * self.runtime
            + w.alpha_memory * self.memory
        )

    def as_row(self) -> Dict[str, float]:
        """Flat dict in Table 3 column order."""
        return {
            "overlay": self.overlay,
            "variation": self.variation,
            "line": self.line,
            "outlier": self.outlier,
            "size": self.size,
            "runtime": self.runtime,
            "memory": self.memory,
            "quality": self.quality,
            "score": self.total,
        }

    def __str__(self) -> str:
        row = self.as_row()
        cells = " ".join(f"{k}={v:.3f}" for k, v in row.items())
        return f"ScoreCard({cells})"


def measure_raw_components(layout: Layout, grid: WindowGrid) -> RawComponents:
    """Measure overlay/variation/line/outlier on a (filled) layout.

    Density metrics are computed on the *total* metal density (wires
    plus fills) per layer; overlay sums the fill overlay of every
    adjacent layer pair (§2.1).
    """
    total_overlay = float(sum(fill_overlay_area(layout).values()))
    sigma_sum = 0.0
    line_sum = 0.0
    outlier_sum = 0.0
    for layer in layout.layers:
        metrics = compute_metrics(metal_density_map(layer, grid))
        sigma_sum += metrics.sigma
        line_sum += metrics.line
        outlier_sum += metrics.outlier
    return RawComponents(
        overlay=total_overlay,
        variation=sigma_sum,
        line=line_sum,
        # Eqn. (3): s_oh = f_oh( Σσ(l) · Σoh(l) )
        outlier=sigma_sum * outlier_sum,
    )


def worst_windows(
    layout: Layout, grid: WindowGrid, k: int = 5
) -> Dict[str, List[Dict[str, Any]]]:
    """The K worst windows by density deviation and overlay contribution.

    A regressed Variation* or Overlay* score is a number; this is the
    pointer that goes with it.  Returns two ranked lists of plain-JSON
    entries:

    * ``by_deviation`` — per (layer, window): total metal density, the
      layer mean, and ``|density - mean|``, worst first.  These are the
      windows dragging σ(l) (and usually the outlier product) up.
    * ``by_overlay`` — per (layer pair, window): the window's share of
      the pair's fill-induced overlay area (:func:`overlay_map`), worst
      first.  Windows with zero overlay are omitted.

    ``k`` bounds each list independently.
    """
    by_deviation: List[Dict[str, Any]] = []
    for layer in layout.layers:
        density = metal_density_map(layer, grid)
        mean = float(density.mean())
        # k-bounded attribution reporting, not a hot path
        for i in range(grid.cols):  # repro: noqa[REP015]
            for j in range(grid.rows):
                value = float(density[i, j])
                by_deviation.append(
                    {
                        "layer": layer.number,
                        "window": [i, j],
                        "density": value,
                        "layer_mean": mean,
                        "deviation": abs(value - mean),
                    }
                )
    by_deviation.sort(key=lambda e: (-e["deviation"], e["layer"], e["window"]))

    by_overlay: List[Dict[str, Any]] = []
    for lo, hi in layout.adjacent_pairs():
        per_window = overlay_map(lo, hi, grid)
        total = int(per_window.sum())
        if total <= 0:
            continue
        for i in range(grid.cols):  # repro: noqa[REP015]
            for j in range(grid.rows):
                area = int(per_window[i, j])
                if area <= 0:
                    continue
                by_overlay.append(
                    {
                        "layers": [lo.number, hi.number],
                        "window": [i, j],
                        "overlay_area": area,
                        "share": area / total,
                    }
                )
    by_overlay.sort(key=lambda e: (-e["overlay_area"], e["layers"], e["window"]))
    return {"by_deviation": by_deviation[:k], "by_overlay": by_overlay[:k]}


def score_layout(
    layout: Layout,
    grid: WindowGrid,
    weights: ScoreWeights,
    *,
    file_size: float = 0.0,
    runtime: float = 0.0,
    memory: float = 0.0,
) -> ScoreCard:
    """Full Eqn. (3) score card for a filled layout.

    ``file_size`` is in the same unit as ``beta_size`` (the contest uses
    megabytes), ``runtime`` in seconds, ``memory`` in MB.
    """
    raw = replace(
        measure_raw_components(layout, grid),
        file_size=file_size,
        runtime=runtime,
        memory=memory,
    )
    return ScoreCard(
        weights=weights,
        raw=raw,
        overlay=component_score(raw.overlay, weights.beta_overlay),
        variation=component_score(raw.variation, weights.beta_variation),
        line=component_score(raw.line, weights.beta_line),
        outlier=component_score(raw.outlier, weights.beta_outlier),
        size=component_score(raw.file_size, weights.beta_size),
        runtime=component_score(raw.runtime, weights.beta_runtime),
        memory=component_score(raw.memory, weights.beta_memory),
    )
