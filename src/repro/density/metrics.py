"""Density-uniformity metrics: variation, line hotspots, outlier hotspots.

Implements the three density scores of paper §2.2 on a window density
map ``d`` of shape ``(N columns, M rows)``:

* **variation** ``σ`` — standard deviation of window densities (population
  std over all N·M windows),
* **line hotspots** ``lh`` — Eqn. (1): sum over columns of the absolute
  deviation of each window from its column mean,
* **outlier hotspots** ``oh`` — Eqn. (2): sum of deviations beyond the
  3σ band around the layout mean.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "variation",
    "line_hotspots",
    "outlier_hotspots",
    "DensityMetrics",
    "compute_metrics",
]


def _as_map(density: np.ndarray) -> np.ndarray:
    d = np.asarray(density, dtype=np.float64)
    if d.ndim != 2:
        raise ValueError("density map must be a 2-D (cols x rows) array")
    if d.size == 0:
        raise ValueError("density map must be non-empty")
    return d


def variation(density: np.ndarray) -> float:
    """σ — population standard deviation of window densities."""
    return float(np.std(_as_map(density)))


def line_hotspots(density: np.ndarray) -> float:
    """lh — Eqn. (1): column-wise absolute deviation sum.

    For each column ``i`` the deviation of every window from that
    column's mean is accumulated; columns with a density gradient along
    the row axis (CMP "lines") score high.
    """
    d = _as_map(density)
    col_means = d.mean(axis=1, keepdims=True)
    return float(np.abs(d - col_means).sum())


def outlier_hotspots(density: np.ndarray) -> float:
    """oh — Eqn. (2): total deviation beyond the 3σ band.

    ``max(0, |d(i,j) - mean| - 3σ)`` summed over all windows; non-zero
    only for windows whose density is an extreme outlier.
    """
    d = _as_map(density)
    mean = d.mean()
    sigma = d.std()
    return float(np.maximum(0.0, np.abs(d - mean) - 3.0 * sigma).sum())


@dataclass(frozen=True)
class DensityMetrics:
    """The three uniformity metrics for one density map."""

    sigma: float
    line: float
    outlier: float
    mean: float

    def __str__(self) -> str:
        return (
            f"sigma={self.sigma:.6f} line={self.line:.4f} "
            f"outlier={self.outlier:.6f} mean={self.mean:.4f}"
        )


def compute_metrics(density: np.ndarray) -> DensityMetrics:
    """All three metrics (plus the mean) in one pass."""
    d = _as_map(density)
    return DensityMetrics(
        sigma=variation(d),
        line=line_hotspots(d),
        outlier=outlier_hotspots(d),
        mean=float(d.mean()),
    )
