"""OASIS (SEMI P39) subset writer/reader for fill layouts.

The paper's introduction names the two interchange formats whose data
volume the file-size score protects: "current layout file standard like
GDSII and OASIS can achieve good reduction in data volume" (§1).
GDSII spends ~58 bytes per rectangle no matter what; OASIS was designed
to exploit exactly the redundancy dummy fill creates — thousands of
equal-sized rectangles on a regular pitch — through three mechanisms,
all implemented here:

* **variable-length integers** — coordinates cost what they need,
* **modal variables** — layer, datatype, width and height are sticky;
  a run of equal-size fills pays for its dimensions once,
* **repetitions** — a row of N equally spaced rectangles is ONE record
  (type-3 horizontal repetition), which is how a fill grid collapses to
  a handful of bytes per window.

The subset is self-consistent (what the writer emits the reader parses
back exactly) and covers rectangles only — wires and fills, the same
universe as the GDSII module.  The ``bench_ablation_fileformat``
benchmark measures the resulting size advantage on a filled layout.

Layout of an emitted file::

    %SEMI-OASIS\\r\\n
    START  (version "1.0", unit, offset-flag 0)
    CELL   (name)
    RECTANGLE*  (with modal reuse and row repetitions)
    END    (padded to 256 bytes, validation scheme 0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .geometry import Rect, bounding_box
from .layout import DrcRules, Layout

__all__ = [
    "oasis_bytes",
    "read_oasis",
    "layout_from_oasis",
    "OasisCell",
    "write_uint",
    "write_sint",
    "write_string",
]

MAGIC = b"%SEMI-OASIS\r\n"

_START = 1
_END = 2
_CELL_NAME = 14
_RECTANGLE = 25

#: Datatype conventions shared with the GDSII module.
WIRE_DATATYPE = 0
FILL_DATATYPE = 1
DIE_LAYER = 0


# ----------------------------------------------------------------------
# primitive encodings
# ----------------------------------------------------------------------
def write_uint(out: bytearray, value: int) -> None:
    """OASIS unsigned integer: 7-bit groups, little-endian, MSB=more."""
    if value < 0:
        raise ValueError("unsigned integer cannot be negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def write_sint(out: bytearray, value: int) -> None:
    """OASIS signed integer: sign in the LSB, magnitude above."""
    if value < 0:
        write_uint(out, ((-value) << 1) | 1)
    else:
        write_uint(out, value << 1)


def write_string(out: bytearray, text: str) -> None:
    raw = text.encode("ascii")
    write_uint(out, len(raw))
    out.extend(raw)


class _Cursor:
    """Byte cursor for parsing."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def byte(self) -> int:
        b = self.data[self.pos]
        self.pos += 1
        return b

    def uint(self) -> int:
        shift = 0
        value = 0
        while True:
            b = self.byte()
            value |= (b & 0x7F) << shift
            if not b & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise ValueError("runaway OASIS integer")

    def sint(self) -> int:
        raw = self.uint()
        magnitude = raw >> 1
        return -magnitude if raw & 1 else magnitude

    def string(self) -> str:
        length = self.uint()
        raw = self.data[self.pos : self.pos + length]
        self.pos += length
        return raw.decode("ascii")


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
@dataclass
class _Modal:
    layer: Optional[int] = None
    datatype: Optional[int] = None
    width: Optional[int] = None
    height: Optional[int] = None


def _emit_rectangle(
    out: bytearray,
    modal: _Modal,
    layer: int,
    datatype: int,
    rect: Rect,
    repeat: Optional[Tuple[int, int]] = None,
) -> None:
    """One RECTANGLE record, reusing modal state where possible.

    ``repeat=(count, pitch)`` attaches a type-3 horizontal repetition:
    the rectangle plus ``count - 1`` copies spaced ``pitch`` apart.
    """
    # Info byte: S W H X Y R D L  (bit 7 .. bit 0).
    info = 0x18  # X and Y always explicit
    square = rect.width == rect.height
    if square:
        info |= 0x80
    if layer != modal.layer:
        info |= 0x01
    if datatype != modal.datatype:
        info |= 0x02
    if rect.width != modal.width:
        info |= 0x40
    if not square and rect.height != modal.height:
        info |= 0x20
    if repeat is not None:
        info |= 0x04
    out.append(_RECTANGLE)
    out.append(info)
    if info & 0x01:
        write_uint(out, layer)
        modal.layer = layer
    if info & 0x02:
        write_uint(out, datatype)
        modal.datatype = datatype
    if info & 0x40:
        write_uint(out, rect.width)
        modal.width = rect.width
        if square:
            modal.height = rect.width
    if info & 0x20:
        write_uint(out, rect.height)
        modal.height = rect.height
    if square:
        modal.height = rect.width
    write_sint(out, rect.xl)
    write_sint(out, rect.yl)
    if repeat is not None:
        count, pitch = repeat
        write_uint(out, 3)  # repetition type 3: horizontal row
        write_uint(out, count - 2)  # stored as count minus two
        write_uint(out, pitch)


def _rows(rects: List[Rect]) -> List[Tuple[Rect, Optional[Tuple[int, int]]]]:
    """Group same-size rectangles into horizontal rows at equal pitch.

    Returns (anchor rectangle, optional (count, pitch)) items covering
    every input rectangle exactly once.  Input must all share one
    (width, height).
    """
    by_row: Dict[int, List[Rect]] = {}
    for r in rects:
        by_row.setdefault(r.yl, []).append(r)
    out: List[Tuple[Rect, Optional[Tuple[int, int]]]] = []
    for yl in sorted(by_row):
        row = sorted(by_row[yl], key=lambda r: r.xl)
        start = 0
        while start < len(row):
            # Longest run of constant pitch from `start`.
            end = start + 1
            pitch = None
            while end < len(row):
                step = row[end].xl - row[end - 1].xl
                if pitch is None:
                    pitch = step
                elif step != pitch:
                    break
                end += 1
            count = end - start
            if count >= 2 and pitch is not None and pitch > 0:
                out.append((row[start], (count, pitch)))
            else:
                out.append((row[start], None))
                end = start + 1
            start = end
    return out


def oasis_bytes(
    layout: Layout,
    *,
    cell_name: str = "TOP",
    include_wires: bool = True,
) -> bytes:
    """Serialise a layout as an OASIS-subset byte stream."""
    out = bytearray()
    out.extend(MAGIC)
    out.append(_START)
    write_string(out, "1.0")
    # unit (real type 0: positive integer): grid units per micron.
    out.append(0)
    write_uint(out, 1000)
    write_uint(out, 0)  # offset-flag: table offsets in the END record
    out.append(_CELL_NAME)
    write_string(out, cell_name)

    modal = _Modal()
    # Die outline first (layer 0), mirroring the GDSII writer.
    _emit_rectangle(out, modal, DIE_LAYER, WIRE_DATATYPE, layout.die)
    for layer in layout.layers:
        shape_sets = []
        if include_wires:
            shape_sets.append((WIRE_DATATYPE, layer.wires))
        shape_sets.append((FILL_DATATYPE, layer.fills))
        for datatype, shapes in shape_sets:
            by_size: Dict[Tuple[int, int], List[Rect]] = {}
            for r in shapes:
                by_size.setdefault((r.width, r.height), []).append(r)
            for size in sorted(by_size):
                for anchor, repeat in _rows(by_size[size]):
                    _emit_rectangle(
                        out, modal, layer.number, datatype, anchor, repeat
                    )

    # END record padded so the END record itself spans 256 bytes.
    out.append(_END)
    pad = 256 - 1 - 1  # minus record byte and validation-scheme byte
    out.extend(b"\x00" * pad)
    write_uint(out, 0)  # validation scheme 0: none
    return bytes(out)


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
@dataclass
class OasisCell:
    """Parse result: cell name plus rectangles per (layer, datatype)."""

    name: str = ""
    unit: int = 1000
    rects: Dict[Tuple[int, int], List[Rect]] = field(default_factory=dict)


def read_oasis(data: bytes) -> OasisCell:
    """Parse an OASIS-subset stream back into rectangles."""
    if not data.startswith(MAGIC):
        raise ValueError("not an OASIS stream (bad magic)")
    cur = _Cursor(data, len(MAGIC))
    cell = OasisCell()
    modal = _Modal()
    while cur.pos < len(data):
        record = cur.byte()
        if record == _START:
            version = cur.string()
            if version != "1.0":
                raise ValueError(f"unsupported OASIS version {version!r}")
            real_type = cur.byte()
            if real_type != 0:
                raise ValueError("unsupported unit real type")
            cell.unit = cur.uint()
            cur.uint()  # offset-flag
        elif record == _CELL_NAME:
            cell.name = cur.string()
        elif record == _RECTANGLE:
            info = cur.byte()
            if info & 0x01:
                modal.layer = cur.uint()
            if info & 0x02:
                modal.datatype = cur.uint()
            if info & 0x40:
                modal.width = cur.uint()
            if info & 0x80:  # square
                modal.height = modal.width
            elif info & 0x20:
                modal.height = cur.uint()
            if not info & 0x08 or not info & 0x10:
                raise ValueError("subset requires explicit x and y")
            x = cur.sint()
            y = cur.sint()
            if (
                modal.layer is None
                or modal.datatype is None
                or modal.width is None
                or modal.height is None
            ):
                raise ValueError("RECTANGLE before modal state established")
            positions = [(x, y)]
            if info & 0x04:
                rep_type = cur.uint()
                if rep_type != 3:
                    raise ValueError(f"unsupported repetition type {rep_type}")
                count = cur.uint() + 2
                pitch = cur.uint()
                positions = [(x + k * pitch, y) for k in range(count)]
            key = (modal.layer, modal.datatype)
            bucket = cell.rects.setdefault(key, [])
            for px, py in positions:
                bucket.append(
                    Rect(px, py, px + modal.width, py + modal.height)
                )
        elif record == _END:
            break
        else:
            raise ValueError(f"unsupported OASIS record {record}")
    return cell


def layout_from_oasis(
    data: bytes, rules: Optional[DrcRules] = None
) -> Layout:
    """Reconstruct a :class:`Layout` from an OASIS-subset stream."""
    cell = read_oasis(data)
    die_rects = cell.rects.get((DIE_LAYER, WIRE_DATATYPE), [])
    if die_rects:
        die = die_rects[0]
    else:
        everything = [r for rects in cell.rects.values() for r in rects]
        die = bounding_box(everything)
        if die is None:
            raise ValueError("OASIS stream contains no geometry")
    layer_numbers = sorted(
        {layer for layer, _ in cell.rects if layer != DIE_LAYER}
    )
    num_layers = max(layer_numbers) if layer_numbers else 1
    layout = Layout(die, num_layers, rules, name=cell.name or "oasis")
    for number in layer_numbers:
        layout.layer(number).add_wires(
            cell.rects.get((number, WIRE_DATATYPE), [])
        )
        layout.layer(number).add_fills(
            cell.rects.get((number, FILL_DATATYPE), [])
        )
    return layout
