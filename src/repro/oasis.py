"""OASIS (SEMI P39) subset writer/reader for fill layouts.

The paper's introduction names the two interchange formats whose data
volume the file-size score protects: "current layout file standard like
GDSII and OASIS can achieve good reduction in data volume" (§1).
GDSII spends ~58 bytes per rectangle no matter what; OASIS was designed
to exploit exactly the redundancy dummy fill creates — thousands of
equal-sized rectangles on a regular pitch — through three mechanisms,
all implemented here:

* **variable-length integers** — coordinates cost what they need,
* **modal variables** — layer, datatype, width and height are sticky;
  a run of equal-size fills pays for its dimensions once,
* **repetitions** — a row of N equally spaced rectangles is ONE record,
  a lattice of N x M is one grid record.  Three repetition shapes are
  emitted (subset-local type numbering):

  - type 3: horizontal row — ``count``, x-pitch,
  - type 2: vertical column — ``count``, y-pitch,
  - type 1: grid — ``nx x ny`` copies on an (x-pitch, y-pitch) lattice,
    which is how the fill arrays of a full window collapse to a
    handful of bytes.

The subset is self-consistent (what the writer emits the reader parses
back exactly) and covers rectangles only — wires and fills, the same
universe as the GDSII module.  The ``bench_ablation_fileformat``
benchmark measures the resulting size advantage on a filled layout.

:class:`OasisStreamWriter` is the incremental form used by the
out-of-core pipeline: header on construction, one
:meth:`~OasisStreamWriter.rectangles` call per (layer, datatype) shape
group, END record on :meth:`~OasisStreamWriter.close`.  Repetition
compression needs the whole group visible at once, so the writer
buffers one group's rectangles at a time — bounded by the largest
single (layer, datatype) population, not the whole layout.

Layout of an emitted file::

    %SEMI-OASIS\\r\\n
    START  (version "1.0", unit, offset-flag 0)
    CELL   (name)
    RECTANGLE*  (with modal reuse and row/column/grid repetitions)
    END    (padded to 256 bytes, validation scheme 0)
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, Iterable, List, Optional, Tuple, Union

from .geometry import Rect, bounding_box
from .layout import DrcRules, Layout

__all__ = [
    "OasisStreamWriter",
    "oasis_bytes",
    "read_oasis",
    "layout_from_oasis",
    "OasisCell",
    "write_uint",
    "write_sint",
    "write_string",
]

MAGIC = b"%SEMI-OASIS\r\n"

_START = 1
_END = 2
_CELL_NAME = 14
_RECTANGLE = 25

#: Datatype conventions shared with the GDSII module.
WIRE_DATATYPE = 0
FILL_DATATYPE = 1
DIE_LAYER = 0

#: Repetition shapes (subset-local type numbering, see module docstring).
_REP_GRID = 1
_REP_VERTICAL = 2
_REP_HORIZONTAL = 3

#: ``("x", count, pitch)`` | ``("y", count, pitch)`` |
#: ``("grid", nx, ny, px, py)``
Repeat = Union[Tuple[str, int, int], Tuple[str, int, int, int, int]]


# ----------------------------------------------------------------------
# primitive encodings
# ----------------------------------------------------------------------
def write_uint(out: bytearray, value: int) -> None:
    """OASIS unsigned integer: 7-bit groups, little-endian, MSB=more."""
    if value < 0:
        raise ValueError("unsigned integer cannot be negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def write_sint(out: bytearray, value: int) -> None:
    """OASIS signed integer: sign in the LSB, magnitude above."""
    if value < 0:
        write_uint(out, ((-value) << 1) | 1)
    else:
        write_uint(out, value << 1)


def write_string(out: bytearray, text: str) -> None:
    raw = text.encode("ascii")
    write_uint(out, len(raw))
    out.extend(raw)


class _Cursor:
    """Byte cursor for parsing.

    Every read is bounds-checked: running past the end of the buffer
    raises a ``ValueError`` naming the offset, never a bare
    ``IndexError`` (for single bytes) or a silently truncated slice
    (for strings) — the streaming pipeline relies on malformed input
    being loudly attributable.
    """

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0):
        self.data = data
        self.pos = pos

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise ValueError(f"truncated OASIS stream at byte {self.pos}")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def uint(self) -> int:
        shift = 0
        value = 0
        while True:
            b = self.byte()
            value |= (b & 0x7F) << shift
            if not b & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise ValueError("runaway OASIS integer")

    def sint(self) -> int:
        raw = self.uint()
        magnitude = raw >> 1
        return -magnitude if raw & 1 else magnitude

    def string(self) -> str:
        start = self.pos
        length = self.uint()
        if self.pos + length > len(self.data):
            raise ValueError(
                f"truncated OASIS string at byte {start}: needs {length} "
                f"bytes, stream ends at {len(self.data)}"
            )
        raw = self.data[self.pos : self.pos + length]
        self.pos += length
        return raw.decode("ascii")


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
@dataclass
class _Modal:
    layer: Optional[int] = None
    datatype: Optional[int] = None
    width: Optional[int] = None
    height: Optional[int] = None


def _emit_rectangle(
    out: bytearray,
    modal: _Modal,
    layer: int,
    datatype: int,
    rect: Rect,
    repeat: Optional[Repeat] = None,
) -> None:
    """One RECTANGLE record, reusing modal state where possible.

    ``repeat`` attaches a repetition: ``("x", count, pitch)`` is a
    horizontal row (type 3), ``("y", count, pitch)`` a vertical column
    (type 2), ``("grid", nx, ny, px, py)`` an ``nx x ny`` lattice
    (type 1).  Counts are stored minus two, per OASIS convention.
    """
    # Info byte: S W H X Y R D L  (bit 7 .. bit 0).
    info = 0x18  # X and Y always explicit
    square = rect.width == rect.height
    if square:
        info |= 0x80
    if layer != modal.layer:
        info |= 0x01
    if datatype != modal.datatype:
        info |= 0x02
    if rect.width != modal.width:
        info |= 0x40
    if not square and rect.height != modal.height:
        info |= 0x20
    if repeat is not None:
        info |= 0x04
    out.append(_RECTANGLE)
    out.append(info)
    if info & 0x01:
        write_uint(out, layer)
        modal.layer = layer
    if info & 0x02:
        write_uint(out, datatype)
        modal.datatype = datatype
    if info & 0x40:
        write_uint(out, rect.width)
        modal.width = rect.width
        if square:
            modal.height = rect.width
    if info & 0x20:
        write_uint(out, rect.height)
        modal.height = rect.height
    if square:
        modal.height = rect.width
    write_sint(out, rect.xl)
    write_sint(out, rect.yl)
    if repeat is not None:
        if repeat[0] == "grid":
            _, nx, ny, px, py = repeat
            write_uint(out, _REP_GRID)
            write_uint(out, nx - 2)
            write_uint(out, ny - 2)
            write_uint(out, px)
            write_uint(out, py)
        else:
            axis, count, pitch = repeat
            write_uint(out, _REP_HORIZONTAL if axis == "x" else _REP_VERTICAL)
            write_uint(out, count - 2)
            write_uint(out, pitch)


def _runs(rects: List[Rect]) -> List[Tuple[Rect, int, int]]:
    """Greedy constant-pitch horizontal runs per row.

    Returns ``(anchor, count, pitch)`` items covering every input
    rectangle exactly once, rows in ascending ``yl``, runs
    left-to-right; single rectangles carry ``count=1, pitch=0``.
    Input must all share one (width, height).
    """
    by_row: Dict[int, List[Rect]] = {}
    for r in rects:
        by_row.setdefault(r.yl, []).append(r)
    out: List[Tuple[Rect, int, int]] = []
    for yl in sorted(by_row):
        row = sorted(by_row[yl], key=lambda r: r.xl)
        start = 0
        while start < len(row):
            # Longest run of constant pitch from `start`.
            end = start + 1
            pitch = None
            while end < len(row):
                step = row[end].xl - row[end - 1].xl
                if pitch is None:
                    pitch = step
                elif step != pitch:
                    break
                end += 1
            count = end - start
            if count >= 2 and pitch is not None and pitch > 0:
                out.append((row[start], count, pitch))
            else:
                out.append((row[start], 1, 0))
                end = start + 1
            start = end
    return out


def _repetitions(rects: List[Rect]) -> List[Tuple[Rect, Optional[Repeat]]]:
    """Collapse same-size rectangles into row/column/grid repetitions.

    Two greedy passes: horizontal constant-pitch runs per row
    (:func:`_runs`), then rows whose runs share (xl, count, x-pitch)
    and repeat at a constant y-pitch stack into grids (or vertical
    columns when the run is a single rectangle).  Every input
    rectangle is covered exactly once; output blocks are sorted by
    (anchor yl, anchor xl) so the emission is order-independent of
    the input.
    """
    runs = _runs(rects)
    by_signature: Dict[Tuple[int, int, int], List[Tuple[Rect, int, int]]] = {}
    for anchor, count, pitch in runs:
        by_signature.setdefault((anchor.xl, count, pitch), []).append(
            (anchor, count, pitch)
        )
    blocks: List[Tuple[Rect, Optional[Repeat]]] = []
    for signature in sorted(by_signature):
        column = sorted(by_signature[signature], key=lambda item: item[0].yl)
        start = 0
        while start < len(column):
            # Longest stack of rows at constant y-pitch from `start`.
            end = start + 1
            y_pitch = None
            while end < len(column):
                step = column[end][0].yl - column[end - 1][0].yl
                if y_pitch is None:
                    y_pitch = step
                elif step != y_pitch:
                    break
                end += 1
            rows = end - start
            anchor, count, pitch = column[start]
            if rows >= 2 and y_pitch is not None and y_pitch > 0:
                if count >= 2:
                    blocks.append(
                        (anchor, ("grid", count, rows, pitch, y_pitch))
                    )
                else:
                    blocks.append((anchor, ("y", rows, y_pitch)))
            else:
                if count >= 2:
                    blocks.append((anchor, ("x", count, pitch)))
                else:
                    blocks.append((anchor, None))
                end = start + 1
            start = end
    blocks.sort(key=lambda item: (item[0].yl, item[0].xl))
    return blocks


class OasisStreamWriter:
    """Incremental OASIS-subset emitter.

    Writes the header on construction, shape groups as they are
    handed over, and the END record on :meth:`close`.  Emitting the
    same (layer, datatype) groups in the same order as
    :func:`oasis_bytes` produces the same bytes: repetition extraction
    (:func:`_repetitions`) canonicalizes each group regardless of the
    order its rectangles arrive in, and modal state carries across
    calls exactly as it does in the one-shot writer.
    """

    def __init__(self, stream: BinaryIO, *, cell_name: str = "TOP"):
        self._stream = stream
        self._modal = _Modal()
        self._bytes_written = 0
        self._closed = False
        head = bytearray()
        head.extend(MAGIC)
        head.append(_START)
        write_string(head, "1.0")
        # unit (real type 0: positive integer): grid units per micron.
        head.append(0)
        write_uint(head, 1000)
        write_uint(head, 0)  # offset-flag: table offsets in the END record
        head.append(_CELL_NAME)
        write_string(head, cell_name)
        self._write(head)

    def _write(self, data: Union[bytes, bytearray]) -> None:
        self._stream.write(bytes(data))
        self._bytes_written += len(data)

    @property
    def bytes_written(self) -> int:
        return self._bytes_written

    def rectangle(self, layer: int, datatype: int, rect: Rect) -> None:
        """Emit one rectangle with no repetition (e.g. the die outline)."""
        if self._closed:
            raise ValueError("writer is closed")
        out = bytearray()
        _emit_rectangle(out, self._modal, layer, datatype, rect)
        self._write(out)

    def rectangles(
        self, layer: int, datatype: int, rects: Iterable[Rect]
    ) -> None:
        """Emit one (layer, datatype) shape group, repetition-compressed.

        The group is buffered in full (coordinates only) so equal-size
        runs can collapse into row/column/grid repetitions; this is
        the writer's only unbounded-in-theory allocation and is noted
        in docs/PERFORMANCE.md.
        """
        if self._closed:
            raise ValueError("writer is closed")
        by_size: Dict[Tuple[int, int], List[Rect]] = {}
        for r in rects:
            by_size.setdefault((r.width, r.height), []).append(r)
        out = bytearray()
        for size in sorted(by_size):
            for anchor, repeat in _repetitions(by_size[size]):
                _emit_rectangle(out, self._modal, layer, datatype, anchor, repeat)
        self._write(out)

    def close(self) -> int:
        """Write the padded END record; returns total bytes written."""
        if not self._closed:
            tail = bytearray()
            # END record padded so the END record itself spans 256 bytes.
            tail.append(_END)
            pad = 256 - 1 - 1  # minus record byte and validation-scheme byte
            tail.extend(b"\x00" * pad)
            write_uint(tail, 0)  # validation scheme 0: none
            self._write(tail)
            self._closed = True
        return self._bytes_written

    def __enter__(self) -> "OasisStreamWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def oasis_bytes(
    layout: Layout,
    *,
    cell_name: str = "TOP",
    include_wires: bool = True,
) -> bytes:
    """Serialise a layout as an OASIS-subset byte stream."""
    buf = io.BytesIO()
    writer = OasisStreamWriter(buf, cell_name=cell_name)
    # Die outline first (layer 0), mirroring the GDSII writer.
    writer.rectangle(DIE_LAYER, WIRE_DATATYPE, layout.die)
    for layer in layout.layers:
        if include_wires:
            writer.rectangles(layer.number, WIRE_DATATYPE, layer.wires)
        writer.rectangles(layer.number, FILL_DATATYPE, layer.fills)
    writer.close()
    return buf.getvalue()


# ----------------------------------------------------------------------
# reader
# ----------------------------------------------------------------------
@dataclass
class OasisCell:
    """Parse result: cell name plus rectangles per (layer, datatype)."""

    name: str = ""
    unit: int = 1000
    rects: Dict[Tuple[int, int], List[Rect]] = field(default_factory=dict)


def _repetition_positions(
    cur: _Cursor, x: int, y: int
) -> List[Tuple[int, int]]:
    """Expand a repetition spec into anchor positions (reader side).

    Grid copies enumerate rows-outer, columns-inner — matching the
    writer, which anchors every grid at its lowest-leftmost member.
    """
    rep_type = cur.uint()
    if rep_type == _REP_GRID:
        nx = cur.uint() + 2
        ny = cur.uint() + 2
        px = cur.uint()
        py = cur.uint()
        return [(x + a * px, y + b * py) for b in range(ny) for a in range(nx)]
    if rep_type == _REP_VERTICAL:
        count = cur.uint() + 2
        pitch = cur.uint()
        return [(x, y + k * pitch) for k in range(count)]
    if rep_type == _REP_HORIZONTAL:
        count = cur.uint() + 2
        pitch = cur.uint()
        return [(x + k * pitch, y) for k in range(count)]
    raise ValueError(f"unsupported repetition type {rep_type}")


def read_oasis(data: bytes) -> OasisCell:
    """Parse an OASIS-subset stream back into rectangles."""
    if not data.startswith(MAGIC):
        raise ValueError("not an OASIS stream (bad magic)")
    cur = _Cursor(data, len(MAGIC))
    cell = OasisCell()
    modal = _Modal()
    while cur.pos < len(data):
        record = cur.byte()
        if record == _START:
            version = cur.string()
            if version != "1.0":
                raise ValueError(f"unsupported OASIS version {version!r}")
            real_type = cur.byte()
            if real_type != 0:
                raise ValueError("unsupported unit real type")
            cell.unit = cur.uint()
            cur.uint()  # offset-flag
        elif record == _CELL_NAME:
            cell.name = cur.string()
        elif record == _RECTANGLE:
            info = cur.byte()
            if info & 0x01:
                modal.layer = cur.uint()
            if info & 0x02:
                modal.datatype = cur.uint()
            if info & 0x40:
                modal.width = cur.uint()
            if info & 0x80:  # square
                modal.height = modal.width
            elif info & 0x20:
                modal.height = cur.uint()
            if not info & 0x08 or not info & 0x10:
                raise ValueError("subset requires explicit x and y")
            x = cur.sint()
            y = cur.sint()
            if (
                modal.layer is None
                or modal.datatype is None
                or modal.width is None
                or modal.height is None
            ):
                raise ValueError("RECTANGLE before modal state established")
            positions = [(x, y)]
            if info & 0x04:
                positions = _repetition_positions(cur, x, y)
            key = (modal.layer, modal.datatype)
            bucket = cell.rects.setdefault(key, [])
            for px, py in positions:
                bucket.append(
                    Rect(px, py, px + modal.width, py + modal.height)
                )
        elif record == _END:
            break
        else:
            raise ValueError(f"unsupported OASIS record {record}")
    return cell


def layout_from_oasis(
    data: bytes, rules: Optional[DrcRules] = None
) -> Layout:
    """Reconstruct a :class:`Layout` from an OASIS-subset stream."""
    cell = read_oasis(data)
    die_rects = cell.rects.get((DIE_LAYER, WIRE_DATATYPE), [])
    if die_rects:
        # Multiple outlines merge into their bounding box, matching
        # repro.gdsii.reader: element order must not pick the die.
        die = die_rects[0] if len(die_rects) == 1 else bounding_box(die_rects)
        assert die is not None
    else:
        everything = [r for rects in cell.rects.values() for r in rects]
        die = bounding_box(everything)
        if die is None:
            raise ValueError("OASIS stream contains no geometry")
    layer_numbers = sorted(
        {layer for layer, _ in cell.rects if layer != DIE_LAYER}
    )
    num_layers = max(layer_numbers) if layer_numbers else 1
    layout = Layout(die, num_layers, rules, name=cell.name or "oasis")
    for number in layer_numbers:
        layout.layer(number).add_wires(
            cell.rects.get((number, WIRE_DATATYPE), [])
        )
        layout.layer(number).add_fills(
            cell.rects.get((number, FILL_DATATYPE), [])
        )
    return layout
