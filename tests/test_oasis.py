"""Tests for the OASIS-subset writer/reader."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdsii import gdsii_bytes
from repro.geometry import Rect
from repro.layout import Layout
from repro.oasis import (
    MAGIC,
    layout_from_oasis,
    oasis_bytes,
    read_oasis,
    write_sint,
    write_uint,
    _Cursor,
)


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**20, 2**40])
    def test_uint_roundtrip(self, value):
        out = bytearray()
        write_uint(out, value)
        assert _Cursor(bytes(out)).uint() == value

    def test_uint_small_is_one_byte(self):
        out = bytearray()
        write_uint(out, 100)
        assert len(out) == 1

    def test_uint_negative_rejected(self):
        with pytest.raises(ValueError):
            write_uint(bytearray(), -1)

    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 1000, -123456])
    def test_sint_roundtrip(self, value):
        out = bytearray()
        write_sint(out, value)
        assert _Cursor(bytes(out)).sint() == value

    @given(st.integers(min_value=0, max_value=2**50))
    @settings(max_examples=50)
    def test_uint_roundtrip_property(self, value):
        out = bytearray()
        write_uint(out, value)
        assert _Cursor(bytes(out)).uint() == value

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    @settings(max_examples=50)
    def test_sint_roundtrip_property(self, value):
        out = bytearray()
        write_sint(out, value)
        assert _Cursor(bytes(out)).sint() == value


def sample_layout():
    layout = Layout(Rect(0, 0, 2000, 2000), num_layers=2, name="oas")
    layout.layer(1).add_wire(Rect(0, 0, 120, 40))
    layout.layer(1).add_wire(Rect(0, 100, 350, 130))
    layout.layer(2).add_wire(Rect(500, 0, 540, 700))
    # A regular fill grid (the case OASIS compresses).
    for i in range(10):
        for j in range(4):
            layout.layer(1).add_fill(
                Rect(600 + i * 110, 600 + j * 110, 700 + i * 110, 700 + j * 110)
            )
    layout.layer(2).add_fill(Rect(30, 1500, 90, 1590))
    return layout


class TestRoundTrip:
    def test_magic(self):
        assert oasis_bytes(sample_layout()).startswith(MAGIC)

    def test_layout_roundtrip(self):
        layout = sample_layout()
        back = layout_from_oasis(oasis_bytes(layout))
        assert back.die == layout.die
        for n in layout.layer_numbers:
            assert sorted(back.layer(n).wires) == sorted(layout.layer(n).wires)
            assert sorted(back.layer(n).fills) == sorted(layout.layer(n).fills)

    def test_cell_metadata(self):
        cell = read_oasis(oasis_bytes(sample_layout(), cell_name="CHIP"))
        assert cell.name == "CHIP"
        assert cell.unit == 1000

    def test_fill_only_stream(self):
        layout = sample_layout()
        back = layout_from_oasis(oasis_bytes(layout, include_wires=False))
        assert back.num_wires == 0
        assert back.num_fills == layout.num_fills

    def test_deterministic(self):
        assert oasis_bytes(sample_layout()) == oasis_bytes(sample_layout())

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_oasis(b"GARBAGE" * 10)

    def test_empty_layout(self):
        layout = Layout(Rect(0, 0, 100, 100), num_layers=1)
        back = layout_from_oasis(oasis_bytes(layout))
        assert back.die == layout.die


class TestCompression:
    def test_repetitions_beat_gdsii_on_fill_grids(self):
        layout = sample_layout()
        oasis_size = len(oasis_bytes(layout))
        gdsii_size = len(gdsii_bytes(layout))
        # 40-cell fill grid: OASIS collapses rows to repetitions.
        assert oasis_size < gdsii_size / 3

    def test_grid_collapses_to_rows(self):
        layout = Layout(Rect(0, 0, 3000, 3000), num_layers=1)
        for i in range(20):
            layout.layer(1).add_fill(
                Rect(i * 120, 500, i * 120 + 100, 600)
            )
        single_row = len(oasis_bytes(layout, include_wires=False))
        layout2 = Layout(Rect(0, 0, 3000, 3000), num_layers=1)
        layout2.layer(1).add_fill(Rect(0, 500, 100, 600))
        one_fill = len(oasis_bytes(layout2, include_wires=False))
        # 20 fills in a row cost only a few bytes more than one fill.
        assert single_row - one_fill < 8

    def test_irregular_fills_still_roundtrip(self):
        layout = Layout(Rect(0, 0, 1000, 1000), num_layers=1)
        import random

        rng = random.Random(3)
        for _ in range(30):
            x, y = rng.randrange(0, 900), rng.randrange(0, 900)
            w, h = rng.randrange(10, 90), rng.randrange(10, 90)
            layout.layer(1).add_fill(Rect(x, y, x + w, y + h))
        back = layout_from_oasis(oasis_bytes(layout))
        assert sorted(back.layer(1).fills) == sorted(layout.layer(1).fills)


class TestPropertyBased:
    rects = st.builds(
        lambda x, y, w, h: Rect(x, y, x + w, y + h),
        st.integers(min_value=0, max_value=900),
        st.integers(min_value=0, max_value=900),
        st.integers(min_value=1, max_value=100),
        st.integers(min_value=1, max_value=100),
    )

    @given(st.lists(rects, max_size=12), st.lists(rects, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_roundtrip(self, wires, fills):
        layout = Layout(Rect(0, 0, 1000, 1000), num_layers=1)
        layout.layer(1).add_wires(wires)
        layout.layer(1).add_fills(fills)
        back = layout_from_oasis(oasis_bytes(layout))
        assert sorted(back.layer(1).wires) == sorted(wires)
        assert sorted(back.layer(1).fills) == sorted(fills)
