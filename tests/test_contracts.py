"""Runtime contract helpers: rectangle, density and rule-deck guards."""

import numpy as np
import pytest

from repro import (
    ContractViolation,
    DrcRules,
    Rect,
    check_density,
    check_drc_params,
    check_rect,
)


class TestCheckRect:
    def test_valid_rect_passes_through(self):
        r = Rect(0, 0, 10, 10)
        assert check_rect(r) is r

    def test_float_coordinate_rejected(self):
        # a frozen dataclass happily constructs with floats; the
        # contract is the guard that catches it at the boundary
        bad = Rect(0.5, 0, 10.5, 10)
        with pytest.raises(ContractViolation, match="not an integer"):
            check_rect(bad)

    def test_numpy_integer_accepted(self):
        r = Rect(np.int64(0), np.int64(0), np.int64(5), np.int64(5))
        assert check_rect(r) is r

    def test_name_appears_in_message(self):
        with pytest.raises(ContractViolation, match="fill.xl"):
            check_rect(Rect(1.5, 0, 2.5, 1), name="fill")


class TestCheckDensity:
    def test_scalar_in_range(self):
        assert check_density(0.5) == 0.5
        assert check_density(0.0) == 0.0
        assert check_density(1.0) == 1.0

    def test_map_in_range(self):
        arr = np.array([[0.0, 0.25], [0.5, 1.0]])
        assert check_density(arr) is arr

    def test_roundoff_slack(self):
        # assembled from integer-area ratios, 1.0 + 1 ulp must pass
        assert check_density(np.nextafter(1.0, 2.0)) is not None

    def test_above_one_rejected(self):
        with pytest.raises(ContractViolation, match="outside"):
            check_density(np.array([0.2, 1.2]))

    def test_negative_rejected(self):
        with pytest.raises(ContractViolation):
            check_density(-0.01)

    def test_nan_rejected(self):
        with pytest.raises(ContractViolation, match="non-finite"):
            check_density(np.array([0.5, np.nan]))

    def test_empty_map_passes(self):
        check_density(np.zeros((0, 0)))


class TestCheckDrcParams:
    def test_default_deck_passes(self):
        rules = DrcRules()
        assert check_drc_params(rules) is rules

    def test_float_parameter_rejected(self):
        # bypass __post_init__ validation the way a deserialiser could
        rules = DrcRules()
        object.__setattr__(rules, "min_spacing", 10.5)
        with pytest.raises(ContractViolation, match="min_spacing"):
            check_drc_params(rules)

    def test_nonpositive_rejected(self):
        rules = DrcRules()
        object.__setattr__(rules, "min_area", 0)
        with pytest.raises(ContractViolation, match="positive"):
            check_drc_params(rules)

    def test_inconsistent_caps_rejected(self):
        rules = DrcRules()
        object.__setattr__(rules, "max_fill_width", 5)
        with pytest.raises(ContractViolation, match="max_fill_width"):
            check_drc_params(rules)


class TestEngineWiring:
    def test_engine_rejects_corrupt_deck(self):
        from repro import FillConfig, Layout, WindowGrid, insert_fills

        layout = Layout(Rect(0, 0, 2000, 2000), num_layers=1)
        layout.layer(1).add_wire(Rect(100, 100, 900, 200))
        object.__setattr__(layout.rules, "min_width", 10.0)
        grid = WindowGrid(layout.die, cols=2, rows=2)
        with pytest.raises(ContractViolation):
            insert_fills(layout, grid, FillConfig())
