"""Cross-module integration tests: the full pipeline on one layout.

These tests exercise the complete paper flow — generation, analysis,
planning, candidates, sizing, insertion, scoring, GDSII round-trip —
and assert the *invariants* a solution must satisfy regardless of
tuning: DRC cleanliness, density improvement, score consistency and
format fidelity.
"""

import numpy as np
import pytest

from repro.bench.generator import LayoutSpec, generate_layout
from repro.core import DummyFillEngine, FillConfig
from repro.density import (
    ScoreWeights,
    compute_metrics,
    measure_raw_components,
    metal_density_map,
    score_layout,
    wire_density_map,
)
from repro.gdsii import gdsii_bytes, layout_from_gdsii
from repro.layout import DrcRules, WindowGrid

RULES = DrcRules(
    min_spacing=10, min_width=10, min_area=400, max_fill_width=150, max_fill_height=150
)


@pytest.fixture(scope="module")
def filled():
    spec = LayoutSpec(
        name="integration",
        die_size=2400,
        seed=77,
        num_cell_rects=250,
        num_bus_bundles=2,
        num_macros=1,
        hotspot_columns=(0.4,),
        cold_windows=1,
        rules=RULES,
    )
    layout = generate_layout(spec)
    grid = WindowGrid(layout.die, 6, 6)
    unfilled = layout.copy_without_fills()
    report = DummyFillEngine(FillConfig(eta=0.2)).run(layout, grid)
    return layout, unfilled, grid, report


class TestSolutionInvariants:
    def test_drc_clean(self, filled):
        layout, _, _, _ = filled
        assert layout.check_drc() == []

    def test_fills_inside_die(self, filled):
        layout, _, _, _ = filled
        for layer in layout.layers:
            for f in layer.fills:
                assert layout.die.contains(f)

    def test_fills_never_touch_wires(self, filled):
        layout, _, _, _ = filled
        for layer in layout.layers:
            for f in layer.fills:
                for w in layer.wires:
                    assert not f.overlaps(w)

    def test_variation_improves_every_layer(self, filled):
        layout, unfilled, grid, _ = filled
        for n in layout.layer_numbers:
            before = compute_metrics(
                wire_density_map(unfilled.layer(n), grid)
            ).sigma
            after = compute_metrics(
                metal_density_map(layout.layer(n), grid)
            ).sigma
            assert after < before

    def test_line_hotspots_improve_in_total(self, filled):
        layout, unfilled, grid, _ = filled
        before = sum(
            compute_metrics(wire_density_map(unfilled.layer(n), grid)).line
            for n in layout.layer_numbers
        )
        after = sum(
            compute_metrics(metal_density_map(layout.layer(n), grid)).line
            for n in layout.layer_numbers
        )
        assert after < before

    def test_density_monotone_nondecreasing(self, filled):
        layout, unfilled, grid, _ = filled
        for n in layout.layer_numbers:
            before = wire_density_map(unfilled.layer(n), grid)
            after = metal_density_map(layout.layer(n), grid)
            assert np.all(after >= before - 1e-12)

    def test_report_consistent_with_layout(self, filled):
        layout, _, _, report = filled
        assert layout.num_fills == report.num_fills
        assert report.num_candidates >= report.num_fills


class TestScoringIntegration:
    def test_score_card_in_range(self, filled):
        layout, unfilled, grid, _ = filled
        from repro.bench.suite import calibrate_weights

        weights = calibrate_weights(unfilled, grid, 60.0, 1024.0)
        card = score_layout(layout, grid, weights, file_size=0.1, runtime=1.0,
                            memory=50.0)
        for name, value in card.as_row().items():
            assert 0.0 <= value <= 1.0, name

    def test_filled_beats_unfilled_on_density(self, filled):
        layout, unfilled, grid, _ = filled
        raw_filled = measure_raw_components(layout, grid)
        raw_unfilled = measure_raw_components(unfilled, grid)
        assert raw_filled.variation < raw_unfilled.variation
        assert raw_filled.line < raw_unfilled.line


class TestGdsiiIntegration:
    def test_solution_roundtrip_preserves_fills(self, filled):
        layout, _, _, _ = filled
        back = layout_from_gdsii(gdsii_bytes(layout))
        for n in layout.layer_numbers:
            assert sorted(back.layer(n).fills) == sorted(layout.layer(n).fills)
            assert sorted(back.layer(n).wires) == sorted(layout.layer(n).wires)

    def test_roundtrip_scores_identical(self, filled):
        layout, _, grid, _ = filled
        weights = ScoreWeights(
            beta_overlay=1e7,
            beta_variation=1.0,
            beta_line=100.0,
            beta_outlier=1.0,
            beta_size=10.0,
            beta_runtime=60.0,
            beta_memory=1024.0,
        )
        back = layout_from_gdsii(gdsii_bytes(layout))
        a = measure_raw_components(layout, grid)
        b = measure_raw_components(back, grid)
        assert a.overlay == b.overlay
        assert a.variation == pytest.approx(b.variation)
        assert a.line == pytest.approx(b.line)


class TestRobustness:
    def test_wire_dense_layout(self):
        # Nearly saturated layout: hardly any room, engine must not
        # crash and must stay legal.
        layout = generate_layout(
            LayoutSpec(
                name="dense",
                die_size=1200,
                seed=13,
                num_cell_rects=2500,
                num_bus_bundles=4,
                num_macros=2,
                rules=RULES,
            )
        )
        grid = WindowGrid(layout.die, 3, 3)
        report = DummyFillEngine(FillConfig()).run(layout, grid)
        assert layout.check_drc() == []

    def test_sparse_layout(self):
        layout = generate_layout(
            LayoutSpec(
                name="sparse",
                die_size=1200,
                seed=14,
                num_cell_rects=3,
                num_bus_bundles=0,
                num_macros=0,
                hotspot_columns=(),
                cold_windows=0,
                rules=RULES,
            )
        )
        grid = WindowGrid(layout.die, 3, 3)
        report = DummyFillEngine(FillConfig()).run(layout, grid)
        assert layout.check_drc() == []
        # Sparse wires still induce a positive target.
        assert report.num_fills > 0

    def test_many_layers(self):
        layout = generate_layout(
            LayoutSpec(
                name="tall",
                die_size=1200,
                seed=15,
                num_layers=5,
                num_cell_rects=120,
                num_bus_bundles=1,
                num_macros=0,
                rules=RULES,
            )
        )
        grid = WindowGrid(layout.die, 3, 3)
        report = DummyFillEngine(FillConfig()).run(layout, grid)
        assert layout.check_drc() == []
        filled_layers = {
            n for n in layout.layer_numbers if layout.layer(n).num_fills
        }
        assert len(filled_layers) >= 4
