"""Tests for the lithography-friendliness extension (paper future work)."""

import pytest

from repro.geometry import Rect
from repro.layout import DrcRules, Layout
from repro.litho import LithoRules, check_litho, repair_litho

DRC = DrcRules(
    min_spacing=10, min_width=10, min_area=200, max_fill_width=100, max_fill_height=100
)


def layout_with_fills(fills, num_layers=1):
    layout = Layout(Rect(0, 0, 1000, 1000), num_layers=num_layers, rules=DRC)
    for rect in fills:
        layout.layer(1).add_fill(rect)
    return layout


class TestRules:
    def test_malformed_range_rejected(self):
        with pytest.raises(ValueError):
            LithoRules(forbidden_pitches=((50, 40),))

    def test_gap_is_forbidden(self):
        rules = LithoRules(forbidden_pitches=((45, 55), (80, 90)))
        assert rules.gap_is_forbidden(45)
        assert rules.gap_is_forbidden(55)
        assert rules.gap_is_forbidden(85)
        assert not rules.gap_is_forbidden(44)
        assert not rules.gap_is_forbidden(70)

    def test_next_legal_gap(self):
        rules = LithoRules(forbidden_pitches=((45, 55),))
        assert rules.next_legal_gap(40) == 40
        assert rules.next_legal_gap(45) == 56
        assert rules.next_legal_gap(55) == 56

    def test_next_legal_gap_chained_ranges(self):
        rules = LithoRules(forbidden_pitches=((45, 55), (56, 60)))
        assert rules.next_legal_gap(50) == 61


class TestCheck:
    def test_clean_layout(self):
        layout = layout_with_fills(
            [Rect(0, 0, 50, 50), Rect(120, 0, 170, 50)]  # gap 70, legal
        )
        assert check_litho(layout, LithoRules()) == []

    def test_forbidden_horizontal_pitch(self):
        layout = layout_with_fills(
            [Rect(0, 0, 50, 50), Rect(100, 0, 150, 50)]  # gap 50, forbidden
        )
        violations = check_litho(layout, LithoRules())
        assert len(violations) == 1
        assert violations[0].kind == "forbidden_pitch"
        assert violations[0].measured == 50

    def test_forbidden_vertical_pitch(self):
        layout = layout_with_fills(
            [Rect(0, 0, 50, 50), Rect(0, 100, 50, 150)]
        )
        violations = check_litho(layout, LithoRules())
        assert len(violations) == 1

    def test_diagonal_pairs_not_lateral(self):
        # Diagonal neighbours have no facing parallel edges: no pitch
        # effect, no violation.
        layout = layout_with_fills(
            [Rect(0, 0, 50, 50), Rect(100, 100, 150, 150)]
        )
        assert check_litho(layout, LithoRules()) == []

    def test_min_edge(self):
        layout = layout_with_fills([Rect(0, 0, 12, 40)])
        violations = check_litho(layout, LithoRules(min_edge=15))
        assert violations[0].kind == "min_edge"
        assert violations[0].measured == 12

    def test_wires_ignored(self):
        layout = layout_with_fills([])
        layout.layer(1).add_wire(Rect(0, 0, 50, 50))
        layout.layer(1).add_wire(Rect(100, 0, 150, 50))  # wire pair at 50
        assert check_litho(layout, LithoRules()) == []


class TestRepair:
    def test_repair_by_shrinking(self):
        layout = layout_with_fills(
            [Rect(0, 0, 80, 50), Rect(130, 0, 170, 50)]  # gap 50
        )
        touched = repair_litho(layout, LithoRules())
        assert touched == 1
        assert check_litho(layout, LithoRules()) == []
        # The smaller fill (the right one) was pulled back.
        fills = sorted(layout.layer(1).fills)
        assert fills[0] == Rect(0, 0, 80, 50)  # big one untouched
        assert fills[1].xl == 136  # gap now 56 (next legal)

    def test_repair_drops_unshrinkable(self):
        tight = LithoRules(forbidden_pitches=((10, 200),))
        layout = layout_with_fills(
            [Rect(0, 0, 100, 20), Rect(0, 30, 100, 50)]  # gap 10; fills
            # cannot shrink 190 more
        )
        repair_litho(layout, tight)
        assert check_litho(layout, tight) == []
        assert len(layout.layer(1).fills) == 1

    def test_repair_min_edge_drops(self):
        layout = layout_with_fills([Rect(0, 0, 12, 40), Rect(200, 200, 260, 260)])
        repair_litho(layout, LithoRules(min_edge=15))
        assert layout.layer(1).fills == [Rect(200, 200, 260, 260)]

    def test_repair_preserves_drc(self):
        layout = layout_with_fills(
            [Rect(0, 0, 80, 50), Rect(130, 0, 180, 50), Rect(0, 100, 80, 150)]
        )
        repair_litho(layout, LithoRules())
        assert layout.check_drc() == []

    def test_repair_clean_layout_noop(self):
        layout = layout_with_fills(
            [Rect(0, 0, 50, 50), Rect(120, 0, 170, 50)]
        )
        assert repair_litho(layout, LithoRules()) == 0
        assert len(layout.layer(1).fills) == 2

    def test_repair_after_engine(self):
        # Integration: run the engine, then enforce litho rules on top.
        import random

        from repro.core import FillConfig, insert_fills
        from repro.layout import WindowGrid

        rng = random.Random(21)
        layout = Layout(Rect(0, 0, 1200, 1200), num_layers=2, rules=DRC)
        for n in layout.layer_numbers:
            for _ in range(40):
                x, y = rng.randrange(0, 1100), rng.randrange(0, 1150)
                layout.layer(n).add_wire(
                    Rect(x, y, min(1200, x + 90), min(1200, y + 30))
                )
        grid = WindowGrid(layout.die, 3, 3)
        insert_fills(layout, grid, FillConfig(eta=0.2))
        rules = LithoRules(forbidden_pitches=((9, 12),))
        repair_litho(layout, rules)
        assert check_litho(layout, rules) == []
        assert layout.check_drc() == []
