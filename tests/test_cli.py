"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.gdsii import layout_from_gdsii


@pytest.fixture()
def demo_gds(tmp_path):
    path = tmp_path / "demo.gds"
    code = main(
        ["generate", str(path), "--die", "1600", "--wires", "120", "--seed", "7"]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["polish"])

    def test_fill_defaults(self):
        args = build_parser().parse_args(["fill", "a.gds", "b.gds"])
        assert args.eta == 0.2
        assert args.solver == "mcf-ssp"
        assert args.windows == 8
        assert args.workers == 1
        assert args.parallel == "process"

    def test_fill_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fill", "a.gds", "b.gds", "--parallel", "gpu"]
            )


class TestGenerate:
    def test_creates_gdsii(self, demo_gds):
        layout = layout_from_gdsii(demo_gds.read_bytes())
        assert layout.num_wires > 0
        assert layout.num_fills == 0

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.gds"
        b = tmp_path / "b.gds"
        main(["generate", str(a), "--die", "1600", "--seed", "3"])
        main(["generate", str(b), "--die", "1600", "--seed", "3"])
        assert a.read_bytes() == b.read_bytes()


class TestInfo:
    def test_prints_layers(self, demo_gds, capsys):
        assert main(["info", str(demo_gds), "--windows", "4"]) == 0
        out = capsys.readouterr().out
        assert "layer 1" in out
        assert "wire density" in out


class TestFill:
    def test_fill_roundtrip(self, demo_gds, tmp_path, capsys):
        out_path = tmp_path / "filled.gds"
        code = main(
            ["fill", str(demo_gds), str(out_path), "--windows", "4"]
        )
        assert code == 0
        filled = layout_from_gdsii(out_path.read_bytes())
        assert filled.num_fills > 0
        assert "fills=" in capsys.readouterr().out

    def test_fill_workers_bit_identical_output(self, demo_gds, tmp_path):
        serial = tmp_path / "serial.gds"
        parallel = tmp_path / "parallel.gds"
        assert main(["fill", str(demo_gds), str(serial), "--windows", "4"]) == 0
        assert (
            main(
                [
                    "fill",
                    str(demo_gds),
                    str(parallel),
                    "--windows",
                    "4",
                    "--workers",
                    "4",
                ]
            )
            == 0
        )
        assert parallel.read_bytes() == serial.read_bytes()

    def test_fill_solver_choice(self, demo_gds, tmp_path):
        out_path = tmp_path / "filled.gds"
        code = main(
            [
                "fill",
                str(demo_gds),
                str(out_path),
                "--windows",
                "4",
                "--solver",
                "lp",
            ]
        )
        assert code == 0


class TestScoreAndDrc:
    def test_score_self_calibrated(self, demo_gds, tmp_path, capsys):
        out_path = tmp_path / "filled.gds"
        main(["fill", str(demo_gds), str(out_path), "--windows", "4"])
        capsys.readouterr()
        assert main(["score", str(out_path), "--windows", "4"]) == 0
        out = capsys.readouterr().out
        assert "quality" in out
        assert "score" in out

    def test_score_with_reference(self, demo_gds, tmp_path, capsys):
        out_path = tmp_path / "filled.gds"
        main(["fill", str(demo_gds), str(out_path), "--windows", "4"])
        code = main(
            [
                "score",
                str(out_path),
                "--reference",
                str(demo_gds),
                "--windows",
                "4",
            ]
        )
        assert code == 0

    def test_drc_clean_exit_zero(self, demo_gds, tmp_path, capsys):
        out_path = tmp_path / "filled.gds"
        main(["fill", str(demo_gds), str(out_path), "--windows", "4"])
        capsys.readouterr()
        assert main(["drc", str(out_path)]) == 0
        assert "0 violations" in capsys.readouterr().out


class TestObservability:
    def test_obs_defaults(self):
        args = build_parser().parse_args(["fill", "a.gds", "b.gds"])
        assert args.trace_out is None
        assert args.log_level == "warning"
        args = build_parser().parse_args(
            ["score", "a.gds", "--log-level", "debug"]
        )
        assert args.log_level == "debug"

    def test_fill_trace_out_writes_run_record(self, demo_gds, tmp_path, capsys):
        import json

        out_path = tmp_path / "filled.gds"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "fill",
                str(demo_gds),
                str(out_path),
                "--windows",
                "4",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        assert "wrote run record" in capsys.readouterr().out
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "meta" and kinds[-1] == "summary"
        span_names = {e["name"] for e in events if e["event"] == "span"}
        assert {"io.read", "engine.run", "drc", "io.write"} <= span_names
        # the record parses through the reader and carries the stage table
        from repro.obs import read_record

        record = read_record(trace_path)
        assert record.label == "repro fill"
        assert set(record.stage_seconds("engine.run")) == {
            "analysis",
            "planning",
            "candidates",
            "replanning",
            "sizing",
            "insertion",
        }
        assert record.metrics["sizing.lp_solves"]["value"] > 0

    def test_trace_summarize_subcommand(self, demo_gds, tmp_path, capsys):
        out_path = tmp_path / "filled.gds"
        trace_path = tmp_path / "trace.jsonl"
        main(
            [
                "fill",
                str(demo_gds),
                str(out_path),
                "--windows",
                "4",
                "--trace-out",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "run record: repro fill" in out
        assert "engine.run" in out

    def test_generate_trace_out_writes_run_record(self, tmp_path, capsys):
        from repro.obs import read_record

        trace_path = tmp_path / "gen.jsonl"
        code = main(
            [
                "generate",
                str(tmp_path / "demo.gds"),
                "--die",
                "1600",
                "--wires",
                "120",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        assert "wrote run record" in capsys.readouterr().out
        record = read_record(trace_path)
        assert record.label == "repro generate"
        assert {"generate", "io.write"} <= set(record.stage_seconds())

    def test_drc_trace_out_writes_run_record(self, demo_gds, tmp_path, capsys):
        from repro.obs import read_record

        trace_path = tmp_path / "drc.jsonl"
        code = main(["drc", str(demo_gds), "--trace-out", str(trace_path)])
        assert code == 0
        assert "wrote run record" in capsys.readouterr().out
        record = read_record(trace_path)
        assert record.label == "repro drc"
        assert {"io.read", "drc"} <= set(record.stage_seconds())

    def test_generate_drc_obs_defaults(self):
        args = build_parser().parse_args(["generate", "a.gds"])
        assert args.trace_out is None and args.log_level == "warning"
        args = build_parser().parse_args(["drc", "a.gds", "--log-level", "debug"])
        assert args.trace_out is None and args.log_level == "debug"

    def test_trace_diff_fail_on_flag(self, demo_gds, tmp_path, capsys):
        out_path = tmp_path / "filled.gds"
        traces = []
        for name in ("a.jsonl", "b.jsonl"):
            trace_path = tmp_path / name
            main(
                [
                    "fill",
                    str(demo_gds),
                    str(out_path),
                    "--windows",
                    "4",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            traces.append(trace_path)
        capsys.readouterr()
        # Two identical runs differ by noise only: a huge threshold passes.
        code = main(
            ["trace", "diff", str(traces[0]), str(traces[1]), "--fail-on", "10000"]
        )
        assert code == 0


class TestBenchSubcommand:
    def test_bench_run_and_gate_forwarded(self, tmp_path, capsys):
        out = str(tmp_path)
        assert main(["bench", "run", "--set", "smoke", "--out", out]) == 0
        assert main(["bench", "run", "--set", "smoke", "--out", out]) == 0
        traj = tmp_path / "BENCH_smoke.json"
        assert traj.exists()
        capsys.readouterr()
        assert main(["bench", "gate", str(traj)]) == 0
        assert "bench gate: smoke" in capsys.readouterr().out


class TestEcoCommand:
    def _filled(self, demo_gds, tmp_path):
        filled = tmp_path / "filled.gds"
        assert main(["fill", str(demo_gds), str(filled), "--windows", "4"]) == 0
        return filled

    def test_eco_roundtrip(self, demo_gds, tmp_path, capsys):
        import json

        filled = self._filled(demo_gds, tmp_path)
        wires = tmp_path / "wires.json"
        wires.write_text(json.dumps({"1": [[100, 100, 400, 140]]}))
        patched = tmp_path / "patched.gds"
        code = main(
            ["eco", str(filled), str(wires), str(patched), "--windows", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ECO:" in out
        assert "0 DRC violations" in out
        before = layout_from_gdsii(filled.read_bytes())
        after = layout_from_gdsii(patched.read_bytes())
        assert after.num_wires == before.num_wires + 1

    def test_eco_trace_out_writes_run_record(self, demo_gds, tmp_path, capsys):
        import json

        from repro.obs import read_record

        filled = self._filled(demo_gds, tmp_path)
        wires = tmp_path / "wires.json"
        wires.write_text(json.dumps({"1": [[100, 100, 400, 140]]}))
        patched = tmp_path / "patched.gds"
        record_path = tmp_path / "eco.jsonl"
        code = main(
            [
                "eco", str(filled), str(wires), str(patched),
                "--windows", "4", "--trace-out", str(record_path),
            ]
        )
        assert code == 0
        record = read_record(record_path)
        assert record.label == "repro eco"
        assert "eco.apply" in record.stage_seconds()

    def test_eco_rejects_bad_wires(self, demo_gds, tmp_path):
        filled = self._filled(demo_gds, tmp_path)
        wires = tmp_path / "wires.json"
        wires.write_text('{"metal1": [[0, 0, 10, 10]]}')
        with pytest.raises(ValueError, match="not an integer"):
            main(["eco", str(filled), str(wires), str(tmp_path / "out.gds")])


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.socket is None and args.port is None
        assert args.serve_workers == 2
        assert args.queue_size == 64
        assert args.max_sessions == 8

    def test_serve_rejects_both_transports(self):
        from repro.service.cli import run_serve

        args = build_parser().parse_args(
            ["serve", "--socket", "a.sock", "--port", "1"]
        )
        with pytest.raises(SystemExit, match="only one"):
            run_serve(args)


class TestTraceExport:
    def test_trace_export_chrome(self, demo_gds, tmp_path, capsys):
        import json

        record_path = tmp_path / "run.jsonl"
        out = tmp_path / "filled.gds"
        main(
            [
                "fill", str(demo_gds), str(out),
                "--windows", "4", "--trace-out", str(record_path),
            ]
        )
        capsys.readouterr()
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "trace", "export", str(record_path),
                "--format", "chrome", "-o", str(trace_path),
            ]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert "engine.run" in names


class TestTelemetryFlags:
    def test_profile_defaults(self):
        args = build_parser().parse_args(["fill", "a.gds", "b.gds"])
        assert args.profile is False
        assert args.profile_ms == 10.0
        args = build_parser().parse_args(
            ["fill", "a.gds", "b.gds", "--profile", "--profile-ms", "2.5"]
        )
        assert args.profile is True
        assert args.profile_ms == 2.5

    def test_profiled_parallel_fill_byte_identical(self, demo_gds, tmp_path):
        """Arming the profiler never changes engine output."""
        plain = tmp_path / "plain.gds"
        profiled = tmp_path / "profiled.gds"
        assert main(["fill", str(demo_gds), str(plain), "--windows", "4"]) == 0
        assert (
            main(
                [
                    "fill", str(demo_gds), str(profiled),
                    "--windows", "4", "--workers", "4",
                    "--profile", "--profile-ms", "10",
                ]
            )
            == 0
        )
        assert profiled.read_bytes() == plain.read_bytes()

    def test_profiled_fill_records_profile_event(self, demo_gds, tmp_path):
        import json

        out = tmp_path / "filled.gds"
        trace_path = tmp_path / "run.jsonl"
        code = main(
            [
                "fill", str(demo_gds), str(out),
                "--windows", "4", "--trace-out", str(trace_path),
                "--profile", "--profile-ms", "1",
            ]
        )
        assert code == 0
        events = [
            json.loads(line) for line in trace_path.read_text().splitlines()
        ]
        profiles = [e for e in events if e.get("event") == "profile"]
        assert len(profiles) == 1
        assert profiles[0]["period_ms"] == 1.0
        assert profiles[0]["samples"] >= 0
        # every folded stack is rooted at a span the record knows about
        root_spans = {
            e["name"] for e in events if e.get("event") == "span" and e["depth"] == 0
        }
        for key in profiles[0]["folded"]:
            assert key.split(";", 1)[0] in root_spans

    def test_trace_export_folded_offline(self, demo_gds, tmp_path, capsys):
        record_path = tmp_path / "run.jsonl"
        out = tmp_path / "filled.gds"
        main(
            [
                "fill", str(demo_gds), str(out),
                "--windows", "4", "--trace-out", str(record_path),
            ]
        )
        capsys.readouterr()
        folded_path = tmp_path / "stacks.folded"
        code = main(
            [
                "trace", "export", str(record_path),
                "--format", "folded", "-o", str(folded_path),
            ]
        )
        assert code == 0
        lines = folded_path.read_text().splitlines()
        assert lines
        paths = [line.rsplit(" ", 1)[0] for line in lines]
        weights = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert all(w >= 1 for w in weights)
        # top frames name the engine stages
        assert any(p.startswith("engine.run;") for p in paths)

    def test_events_flag_writes_jsonl(self, demo_gds, tmp_path):
        import json

        out = tmp_path / "filled.gds"
        events_path = tmp_path / "events.jsonl"
        code = main(
            [
                "fill", str(demo_gds), str(out),
                "--windows", "4",
                "--events", str(events_path), "--log-level", "debug",
            ]
        )
        assert code == 0
        assert events_path.exists()
        for line in events_path.read_text().splitlines():
            json.loads(line)
