"""Property-based tests on the ECO flow invariants."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DummyFillEngine, FillConfig
from repro.eco import apply_eco
from repro.geometry import Rect
from repro.layout import DrcRules, Layout, WindowGrid

RULES = DrcRules(
    min_spacing=10, min_width=10, min_area=200, max_fill_width=100, max_fill_height=100
)


def base_filled_layout():
    rng = random.Random(77)
    layout = Layout(Rect(0, 0, 1000, 1000), num_layers=2, rules=RULES)
    for n in layout.layer_numbers:
        for _ in range(25):
            x, y = rng.randrange(0, 900), rng.randrange(0, 950)
            layout.layer(n).add_wire(
                Rect(x, y, min(1000, x + 80), min(1000, y + 30))
            )
    grid = WindowGrid(layout.die, 4, 4)
    DummyFillEngine(FillConfig()).run(layout, grid)
    return layout, grid


change_rects = st.builds(
    lambda x, y, w, h: Rect(x, y, x + w, y + h),
    st.integers(min_value=0, max_value=800),
    st.integers(min_value=0, max_value=800),
    st.integers(min_value=20, max_value=200),
    st.integers(min_value=20, max_value=150),
)


class TestEcoProperties:
    @given(
        st.lists(change_rects, min_size=1, max_size=3),
        st.sampled_from([1, 2]),
    )
    @settings(max_examples=15, deadline=None)
    def test_always_drc_clean(self, changes, layer):
        layout, grid = base_filled_layout()
        report = apply_eco(layout, grid, {layer: changes})
        assert layout.check_drc() == []
        assert report.new_wires == len(changes)

    @given(change_rects, st.sampled_from([1, 2]))
    @settings(max_examples=15, deadline=None)
    def test_untouched_fills_identical(self, change, layer):
        layout, grid = base_filled_layout()
        reference, _ = base_filled_layout()
        report = apply_eco(layout, grid, {layer: [change]})
        affected = {grid.window(i, j) for i, j in report.affected_windows}
        for n in layout.layer_numbers:
            ref_fills = set(reference.layer(n).fills)
            for fill in layout.layer(n).fills:
                if not any(fill.touches(w) for w in affected):
                    assert fill in ref_fills

    @given(change_rects)
    @settings(max_examples=10, deadline=None)
    def test_affected_set_covers_change(self, change):
        layout, grid = base_filled_layout()
        report = apply_eco(layout, grid, {1: [change]})
        covered = {key for key in report.affected_windows}
        assert set(grid.windows_touching(change)) <= covered
