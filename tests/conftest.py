"""Shared test configuration for the suite.

``REPRO_TEST_BACKEND`` (used by the CI process-pool pass) narrows the
backend-parametrized parallel suites to a single backend.  When it
names ``process``, an autouse fixture additionally turns the
executor's pool-startup fallback into a hard test failure: the point
of that CI pass is to exercise the *real* process pool, so silently
degrading to the serial path would make the pass vacuous.
"""

import os

import pytest

FORCED_BACKEND = os.environ.get("REPRO_TEST_BACKEND")


@pytest.fixture(autouse=True)
def _no_silent_pool_fallback(monkeypatch):
    if FORCED_BACKEND != "process":
        yield
        return
    from repro.parallel import executor

    real_start = executor._start_pool

    def strict_start(fn, shared, workers):
        try:
            return real_start(fn, shared, workers)
        except (OSError, PermissionError) as exc:  # pragma: no cover
            pytest.fail(
                "process pool failed to start under "
                f"REPRO_TEST_BACKEND=process: {exc!r}"
            )

    monkeypatch.setattr(executor, "_start_pool", strict_start)
    yield
