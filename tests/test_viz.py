"""Tests for the SVG/ASCII visualisation helpers."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.geometry import Rect
from repro.layout import Layout, WindowGrid
from repro.viz import density_to_ascii, density_to_svg, layout_to_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def sample_layout():
    layout = Layout(Rect(0, 0, 1000, 1000), num_layers=2)
    layout.layer(1).add_wire(Rect(0, 0, 100, 40))
    layout.layer(1).add_wire(Rect(0, 100, 100, 140))
    layout.layer(2).add_wire(Rect(200, 0, 240, 300))
    layout.layer(1).add_fill(Rect(500, 500, 560, 560))
    return layout


class TestLayoutSvg:
    def test_valid_xml(self):
        root = ET.fromstring(layout_to_svg(sample_layout()))
        assert root.tag == f"{SVG_NS}svg"

    def test_rect_count(self):
        root = ET.fromstring(layout_to_svg(sample_layout()))
        rects = root.findall(f".//{SVG_NS}rect")
        # 1 background + 3 wires + 1 fill.
        assert len(rects) == 5

    def test_layer_filter(self):
        svg = layout_to_svg(sample_layout(), layers=[2])
        root = ET.fromstring(svg)
        groups = [g.get("id") for g in root.findall(f".//{SVG_NS}g")]
        assert "layer2-wires" in groups
        assert "layer1-wires" not in groups

    def test_hide_fills(self):
        svg = layout_to_svg(sample_layout(), show_fills=False)
        assert "stroke-dasharray" not in svg

    def test_grid_overlay(self):
        layout = sample_layout()
        grid = WindowGrid(layout.die, 4, 4)
        root = ET.fromstring(layout_to_svg(layout, grid=grid))
        lines = root.findall(f".//{SVG_NS}line")
        assert len(lines) == 3 + 3  # interior grid lines only

    def test_title_escaped(self):
        svg = layout_to_svg(sample_layout(), title="a <b> & c")
        assert "a &lt;b&gt; &amp; c" in svg

    def test_y_axis_flipped(self):
        # A shape at the layout's bottom must render near the SVG's
        # bottom (large y).
        layout = Layout(Rect(0, 0, 1000, 1000), num_layers=1)
        layout.layer(1).add_wire(Rect(0, 0, 100, 100))
        root = ET.fromstring(layout_to_svg(layout, width=1000))
        wire = root.findall(f".//{SVG_NS}g/{SVG_NS}rect")[0]
        assert float(wire.get("y")) == 900.0


class TestDensitySvg:
    def test_valid_xml_and_cells(self):
        d = np.array([[0.1, 0.9], [0.5, 0.3]])
        root = ET.fromstring(density_to_svg(d))
        rects = root.findall(f".//{SVG_NS}rect")
        assert len(rects) == 4

    def test_annotations(self):
        d = np.array([[0.25]])
        svg = density_to_svg(d)
        assert "0.25" in svg

    def test_no_annotations(self):
        d = np.array([[0.25]])
        assert "0.25" not in density_to_svg(d, annotate=False)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            density_to_svg(np.zeros(3))


class TestDensityAscii:
    def test_shape(self):
        d = np.zeros((4, 3))
        art = density_to_ascii(d)
        lines = art.splitlines()
        assert len(lines) == 3
        assert all(len(line) == 4 * 2 + 2 for line in lines)

    def test_shading_monotone(self):
        d = np.array([[0.0, 1.0]])
        art = density_to_ascii(d)
        bottom, top = art.splitlines()[1], art.splitlines()[0]
        assert bottom.strip("|") == "  "
        assert top.strip("|") == "@@"

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            density_to_ascii(np.zeros((0, 3)))
