"""Tests for the in-process fill service: ops, ordering, determinism."""

import threading

import pytest

from repro import obs
from repro.service import FillService, JobError, ServiceClient, rules_from_mapping

from .conftest import CONFIG_MAPPING, RULES_MAPPING


@pytest.fixture
def service():
    with FillService(workers=2, queue_size=16) as svc:
        yield svc


@pytest.fixture
def client(service):
    return ServiceClient(service)


def open_session(client, gds_bytes, **overrides):
    params = {
        "gds": gds_bytes,
        "windows": 4,
        "rules": RULES_MAPPING,
        "config": CONFIG_MAPPING,
    }
    params.update(overrides)
    return client.request("open_session", **params)["session"]


class TestControlOps:
    def test_ping(self, client):
        result = client.request("ping")
        assert result["pong"] is True
        assert result["workers"] == 2

    def test_open_and_describe(self, client, gds_bytes):
        sid = open_session(client, gds_bytes)
        listing = client.request("sessions")["sessions"]
        assert [s["session"] for s in listing] == [sid]
        assert listing[0]["layers"] == 2

    def test_close_session(self, client, gds_bytes):
        sid = open_session(client, gds_bytes)
        assert client.request("close_session", session=sid) == {"closed": sid}
        with pytest.raises(JobError) as exc_info:
            client.request("fill", session=sid)
        assert exc_info.value.error_type == "UnknownSessionError"

    def test_open_needs_exactly_one_source(self, client):
        with pytest.raises(JobError, match="exactly one"):
            client.request("open_session")

    def test_unknown_rules_key_rejected(self, client, gds_bytes):
        with pytest.raises(JobError, match="unknown rules keys"):
            open_session(client, gds_bytes, rules={"min_gap": 3})

    def test_rules_from_mapping_defaults(self):
        rules = rules_from_mapping({})
        assert rules.min_spacing == 10
        assert rules.max_fill_width == 150


class TestComputeOps:
    def test_fill_reports_and_commits(self, client, gds_bytes):
        sid = open_session(client, gds_bytes)
        result = client.request("fill", session=sid)
        assert result["num_fills"] > 0
        assert result["drc_violations"] == 0
        assert result["gds"][:2] == b"\x00\x06"
        # the session now holds the filled layout
        listing = client.request("sessions")["sessions"]
        assert listing[0]["fills"] == result["num_fills"]

    def test_fill_is_replayable(self, client, gds_bytes):
        sid = open_session(client, gds_bytes)
        first = client.request("fill", session=sid)
        second = client.request("fill", session=sid)
        assert first["gds"] == second["gds"]

    def test_score_and_drc_audit(self, client, gds_bytes):
        sid = open_session(client, gds_bytes)
        client.request("fill", session=sid)
        scores = client.request("score", session=sid)["scores"]
        assert scores["score"] > 0
        audit = client.request("drc_audit", session=sid)
        assert audit["count"] == 0 and audit["violations"] == []

    def test_eco_delta_refills_dirtied_windows(self, client, gds_bytes):
        sid = open_session(client, gds_bytes)
        client.request("fill", session=sid)
        result = client.request(
            "eco_delta", session=sid, wires={"1": [[50, 50, 250, 90]]}
        )
        assert result["new_wires"] == 1
        assert result["removed_fills"] > 0
        assert result["new_fills"] > 0
        assert 0 < result["affected_windows"] < 16
        assert client.request("drc_audit", session=sid)["count"] == 0

    def test_eco_delta_needs_wires(self, client, gds_bytes):
        sid = open_session(client, gds_bytes)
        with pytest.raises(JobError, match="non-empty"):
            client.request("eco_delta", session=sid, wires={})

    def test_unknown_op(self, client):
        with pytest.raises(JobError, match="unknown compute op"):
            client.request("prophesy", session="s1")

    def test_unknown_session(self, client):
        with pytest.raises(JobError) as exc_info:
            client.request("fill", session="s999")
        assert exc_info.value.error_type == "UnknownSessionError"


class TestBatch:
    def test_mixed_batch_in_order(self, client, gds_bytes):
        sid = open_session(client, gds_bytes)
        responses = client.batch(
            [
                {"op": "fill", "session": sid},
                {"op": "score", "session": sid},
                {"op": "drc_audit", "session": sid},
            ]
        )
        assert [r["ok"] for r in responses] == [True, True, True]
        assert responses[0]["result"]["num_fills"] > 0
        assert responses[2]["result"]["count"] == 0

    def test_empty_batch_rejected(self, client):
        with pytest.raises(JobError, match="non-empty"):
            client.request("batch", requests=[])

    def test_bad_op_fails_whole_batch_before_queueing(self, client, gds_bytes):
        sid = open_session(client, gds_bytes)
        with pytest.raises(JobError, match="unknown compute op"):
            client.batch(
                [{"op": "fill", "session": sid}, {"op": "nope", "session": sid}]
            )


class TestBackpressureAndEviction:
    def test_queue_full_rejects_batch(self, gds_bytes):
        with FillService(workers=1, queue_size=2) as svc:
            client = ServiceClient(svc)
            sid = open_session(client, gds_bytes)
            with pytest.raises(JobError) as exc_info:
                client.batch([{"op": "drc_audit", "session": sid}] * 3)
            assert exc_info.value.error_type == "QueueFullError"

    def test_eviction_invalidates_old_session(self, gds_bytes):
        with FillService(workers=1, max_sessions=1) as svc:
            client = ServiceClient(svc)
            first = open_session(client, gds_bytes)
            open_session(client, gds_bytes)
            with pytest.raises(JobError) as exc_info:
                client.request("drc_audit", session=first)
            assert exc_info.value.error_type == "UnknownSessionError"

    def test_stopped_service_rejects_work(self, gds_bytes):
        svc = FillService(workers=1)
        svc.start()
        client = ServiceClient(svc)
        sid = open_session(client, gds_bytes)
        svc.stop()
        with pytest.raises(JobError):
            client.request("fill", session=sid)


class TestConcurrentDeterminism:
    def test_concurrent_identical_fills_are_byte_identical(
        self, service, client, gds_bytes
    ):
        sid = open_session(client, gds_bytes)
        results = [None] * 6
        errors = []

        def run(i):
            try:
                results[i] = client.request("fill", session=sid)["gds"]
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120.0)
        assert errors == []
        assert all(r is not None for r in results)
        assert len({bytes(r) for r in results}) == 1


class TestObservability:
    def test_latency_histograms_in_run_record(self, gds_bytes, tmp_path):
        record_path = tmp_path / "service.jsonl"
        with obs.record_run(record_path, label="service test") as rec:
            with FillService(workers=2) as svc:
                client = ServiceClient(svc)
                sid = open_session(client, gds_bytes)
                client.request("fill", session=sid)
                client.request("score", session=sid)
                client.request(
                    "eco_delta", session=sid, wires={"1": [[50, 50, 250, 90]]}
                )
        record = rec.record
        for op in ("fill", "score", "eco_delta"):
            hist = record.metrics[f"service.latency.{op}"]
            assert hist["kind"] == "histogram"
            assert hist["count"] == 1
            assert hist["p95"] >= 0.0
        assert record.metrics["service.queue.wait_s"]["count"] == 3
        assert record.metrics["service.requests.fill"]["value"] == 1

        request_spans = [
            s for s in record.spans if s["name"] == "service.request"
        ]
        assert [s["attrs"]["op"] for s in request_spans] == [
            "fill",
            "score",
            "eco_delta",
        ]
        assert all(s["depth"] == 0 for s in request_spans)
        assert all("queue_wait_s" in s["attrs"] for s in request_spans)

    def test_error_paths_counted(self, gds_bytes):
        with obs.record_run(label="errors") as rec:
            with FillService(workers=1) as svc:
                client = ServiceClient(svc)
                sid = open_session(client, gds_bytes)
                with pytest.raises(JobError):
                    client.request("eco_delta", session=sid, wires={})
        assert rec.record.metrics["service.errors"]["value"] == 1
