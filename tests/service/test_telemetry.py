"""Tests for the service telemetry surface: stats/metrics ops, slow
requests, per-request profiling."""

import contextlib
import io
import json
import re

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Tracer
from repro.service import FillService, ServiceClient

from .conftest import CONFIG_MAPPING, RULES_MAPPING


@pytest.fixture(autouse=True)
def fresh_obs():
    """Isolate each test's instruments from the process-wide registry."""
    restore_reg = obs.set_registry(MetricsRegistry())
    restore_tr = obs.set_tracer(Tracer())
    yield
    restore_tr()
    restore_reg()


def open_session(client, gds_bytes, **overrides):
    params = {
        "gds": gds_bytes,
        "windows": 4,
        "rules": RULES_MAPPING,
        "config": CONFIG_MAPPING,
    }
    params.update(overrides)
    return client.request("open_session", **params)["session"]


@contextlib.contextmanager
def captured_events(level="info"):
    """Route the process-wide event log into a buffer for one block."""
    buf = io.StringIO()
    obs.events.configure(level=level, stream=buf)
    try:
        yield buf
    finally:
        obs.events.configure(level="warning", stream=io.StringIO())


def events_of(buf, name):
    return [
        rec
        for rec in (json.loads(line) for line in buf.getvalue().splitlines())
        if rec["event"] == name
    ]


class TestStatsOp:
    def test_fresh_service_stats(self, gds_bytes):
        with FillService(workers=2) as svc:
            client = ServiceClient(svc)
            stats = client.request("stats")
        assert stats["workers"] == 2
        assert stats["sessions"] == 0
        assert stats["queue_depth"] == 0
        assert stats["requests"] == {}
        assert stats["errors"] == 0.0
        assert stats["latency"] == {}
        assert stats["profiling"] is None
        assert stats["uptime_s"] >= 0.0

    def test_stats_after_requests(self, gds_bytes):
        with FillService(workers=1) as svc:
            client = ServiceClient(svc)
            sid = open_session(client, gds_bytes)
            client.request("fill", session=sid)
            client.request("fill", session=sid)
            client.request("score", session=sid)
            stats = client.request("stats")
        assert stats["sessions"] == 1
        assert stats["requests"]["fill"] == 2
        assert stats["requests"]["score"] == 1
        lat = stats["latency"]
        assert lat["fill"]["window"] == 2
        assert lat["fill"]["p50"] > 0.0
        assert lat["score"]["window"] == 1

    def test_stats_does_not_mint_instruments(self, gds_bytes):
        with FillService(workers=1) as svc:
            client = ServiceClient(svc)
            before = set(svc._registry.names())
            client.request("stats")
            client.request("stats")
            assert set(svc._registry.names()) == before


class TestMetricsOp:
    def test_metrics_op_returns_exposition_text(self, gds_bytes):
        with FillService(workers=1) as svc:
            client = ServiceClient(svc)
            sid = open_session(client, gds_bytes)
            client.request("fill", session=sid)
            text = client.request("metrics")["text"]
        assert text.endswith("\n")
        assert "repro_service_requests_fill_total 1" in text
        assert "# TYPE repro_service_latency_fill histogram" in text
        assert re.search(
            r'repro_service_latency_fill_bucket\{le="\+Inf"\} 1', text
        )
        # rolling-window gauges ride along
        assert 'repro_fill_window{quantile="0.5"}' in text

    def test_render_matches_op(self, gds_bytes):
        with FillService(workers=1) as svc:
            client = ServiceClient(svc)
            sid = open_session(client, gds_bytes)
            client.request("score", session=sid)
            assert client.request("metrics")["text"] == svc.render_metrics()


class TestHealth:
    def test_health_tracks_lifecycle(self, gds_bytes):
        svc = FillService(workers=1)
        with svc:
            client = ServiceClient(svc)
            open_session(client, gds_bytes)
            live = svc.health()
        assert live == {
            "status": "ok",
            "workers": 1,
            "queue_depth": 0,
            "sessions": 1,
        }
        assert svc.health()["status"] == "stopped"


class TestSlowRequests:
    def test_slow_request_event_carries_span_tree(self, gds_bytes):
        with captured_events(level="info") as buf:
            with FillService(workers=1, slow_ms=0.0) as svc:
                client = ServiceClient(svc)
                sid = open_session(client, gds_bytes)
                client.request("fill", session=sid)
        (slow,) = events_of(buf, "slow_request")
        assert slow["level"] == "warning"
        assert slow["op"] == "fill"
        assert slow["threshold_ms"] == 0.0
        assert slow["failed"] is False
        tree = slow["span_tree"]
        assert tree[0]["name"] == "service.request"
        assert any(node["name"] == "engine.run" for node in tree)

    def test_fast_requests_emit_info_only(self, gds_bytes):
        with captured_events(level="info") as buf:
            with FillService(workers=1, slow_ms=60000.0) as svc:
                client = ServiceClient(svc)
                sid = open_session(client, gds_bytes)
                client.request("fill", session=sid)
        assert events_of(buf, "slow_request") == []
        (req,) = events_of(buf, "request")
        assert req["op"] == "fill" and req["failed"] is False

    def test_slow_counter_increments(self, gds_bytes):
        with FillService(workers=1, slow_ms=0.0) as svc:
            client = ServiceClient(svc)
            sid = open_session(client, gds_bytes)
            client.request("fill", session=sid)
            client.request("score", session=sid)
            stats = client.request("stats")
        assert stats["requests"]["slow"] == 2

    def test_no_threshold_no_slow_accounting(self, gds_bytes):
        with FillService(workers=1) as svc:
            client = ServiceClient(svc)
            sid = open_session(client, gds_bytes)
            client.request("fill", session=sid)
            stats = client.request("stats")
        assert "slow" not in stats["requests"]


class TestRequestProfiling:
    def test_stats_reports_arming(self, gds_bytes):
        with FillService(workers=1, profile_ms=5.0) as svc:
            client = ServiceClient(svc)
            stats = client.request("stats")
        assert stats["profiling"] == {"period_ms": 5.0, "samples": 0}

    def test_profile_published_to_service_tracer(self, gds_bytes):
        with obs.record_run(label="profiled service") as rec:
            svc = FillService(workers=1, profile_ms=1.0)
            with svc:
                client = ServiceClient(svc)
                sid = open_session(client, gds_bytes)
                # repeat until the sampler lands at least one hit; each
                # fill runs for a few ms against the 1 ms period
                for _ in range(50):
                    client.request("fill", session=sid)
                    if svc._profile.samples:
                        break
        record = rec.record
        if not svc._profile.samples:
            pytest.skip("sampler never fired on this machine")
        assert record.profile is not None
        assert record.profile["period_ms"] == 1.0
        assert record.profile["samples"] >= 1
        assert all(
            key.startswith("service.request")
            for key in record.profile["folded"]
        )

    def test_disarmed_service_records_no_profile(self, gds_bytes):
        with obs.record_run(label="plain service") as rec:
            with FillService(workers=1) as svc:
                client = ServiceClient(svc)
                sid = open_session(client, gds_bytes)
                client.request("fill", session=sid)
        assert rec.record.profile is None
