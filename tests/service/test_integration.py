"""Service acceptance tests: CLI-path byte-equality and incrementality.

The issue's bar: a batch of >= 8 mixed requests against one session must
produce byte-identical GDSII to fresh one-shot engine invocations on the
same inputs, at one worker and at four, and ``eco_delta`` must provably
re-process only the windows its wire change dirtied (asserted via the
per-request span counters in a run record).
"""

import pytest

from repro import obs
from repro.core import DummyFillEngine, FillConfig
from repro.eco import apply_eco
from repro.gdsii import gdsii_bytes, layout_from_gdsii
from repro.geometry import Rect
from repro.layout import WindowGrid
from repro.service import FillService, ServiceClient

from .conftest import CONFIG_MAPPING, RULES, RULES_MAPPING

ECO_1 = {"1": [[50, 50, 250, 90]]}
ECO_2 = {"1": [[700, 700, 800, 760]], "2": [[100, 700, 200, 760]]}


def _reference_chain(gds_bytes):
    """The serial one-shot path: fill, then two cold ECOs, no caches."""
    config = FillConfig.from_mapping(CONFIG_MAPPING)
    layout = layout_from_gdsii(gds_bytes, RULES)
    grid = WindowGrid(layout.die, 4, 4)
    DummyFillEngine(config).run(layout, grid)
    fill_gds = gdsii_bytes(layout)
    apply_eco(
        layout, grid, {1: [Rect(50, 50, 250, 90)]}, config
    )
    eco1_gds = gdsii_bytes(layout)
    apply_eco(
        layout,
        grid,
        {1: [Rect(700, 700, 800, 760)], 2: [Rect(100, 700, 200, 760)]},
        config,
    )
    eco2_gds = gdsii_bytes(layout)
    return fill_gds, eco1_gds, eco2_gds


@pytest.mark.parametrize("workers", [1, 4])
def test_mixed_batch_matches_serial_cli_path(gds_bytes, workers):
    fill_ref, eco1_ref, eco2_ref = _reference_chain(gds_bytes)

    with FillService(workers=workers, queue_size=32) as svc:
        client = ServiceClient(svc)
        sid = client.request(
            "open_session",
            gds=gds_bytes,
            windows=4,
            rules=RULES_MAPPING,
            config=CONFIG_MAPPING,
        )["session"]
        responses = client.batch(
            [
                {"op": "fill", "session": sid},
                {"op": "score", "session": sid},
                {"op": "drc_audit", "session": sid},
                {"op": "eco_delta", "session": sid, "wires": ECO_1},
                {"op": "score", "session": sid},
                {"op": "drc_audit", "session": sid},
                {"op": "eco_delta", "session": sid, "wires": ECO_2},
                {"op": "drc_audit", "session": sid},
            ]
        )

    assert len(responses) == 8
    assert all(r["ok"] for r in responses)
    results = [r["result"] for r in responses]

    assert results[0]["gds"] == fill_ref
    assert results[3]["gds"] == eco1_ref
    assert results[6]["gds"] == eco2_ref
    # DRC stays clean through the whole chain
    assert results[2]["count"] == 0
    assert results[5]["count"] == 0
    assert results[7]["count"] == 0
    # scores moved (the ECO changed the layout) but both computed fine
    assert results[1]["scores"]["score"] > 0
    assert results[4]["scores"]["score"] > 0


def _request_span_counters(record, op):
    """Summed counters of the subtree under the op's request span."""
    spans = record.spans
    start = next(
        i
        for i, s in enumerate(spans)
        if s["name"] == "service.request" and s.get("attrs", {}).get("op") == op
    )
    totals = {}
    for span in spans[start + 1 :]:
        if span.get("depth", 0) == 0:
            break
        for name, value in span.get("counters", {}).items():
            totals[name] = totals.get(name, 0.0) + value
    for name, value in spans[start].get("counters", {}).items():
        totals[name] = totals.get(name, 0.0) + value
    return totals


def test_eco_delta_reprocesses_only_dirtied_windows(gds_bytes):
    with obs.record_run(label="eco incrementality") as rec:
        with FillService(workers=1) as svc:
            client = ServiceClient(svc)
            sid = client.request(
                "open_session",
                gds=gds_bytes,
                windows=4,
                rules=RULES_MAPPING,
                config=CONFIG_MAPPING,
            )["session"]
            client.request("fill", session=sid)
            eco = client.request("eco_delta", session=sid, wires=ECO_1)

    record = rec.record
    fill_counters = _request_span_counters(record, "fill")
    eco_counters = _request_span_counters(record, "eco_delta")

    affected = eco["affected_windows"]
    assert 0 < affected < 16  # the change did not dirty the whole grid

    # candidate generation only visited the dirtied windows
    assert fill_counters["candidates.windows_selected"] > affected
    assert eco_counters["candidates.windows_selected"] <= affected * 2
    assert (
        eco_counters["candidates.windows_selected"]
        < fill_counters["candidates.windows_selected"]
    )

    # the cached analysis was refreshed per window, not recomputed:
    # only the one changed layer's dirtied windows were touched
    assert eco_counters["analysis.refreshed_windows"] == affected
    assert eco_counters["eco.affected_windows"] == affected

    # and the fill request reused the session's analysis outright
    fill_span = next(
        s
        for s in record.spans
        if s["name"] == "service.request" and s["attrs"]["op"] == "fill"
    )
    spans_after = record.spans[record.spans.index(fill_span) + 1 :]
    analysis_spans = [
        s
        for s in spans_after
        if s["name"] == "analysis" and s.get("attrs", {}).get("reused")
    ]
    assert analysis_spans, "fill did not reuse the session's cached analysis"
