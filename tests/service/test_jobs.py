"""Tests for the job queue and worker supervisor."""

import threading
import time

import pytest

from repro.service import (
    Job,
    JobError,
    JobQueue,
    QueueClosedError,
    QueueFullError,
    WorkerSupervisor,
)


def _job(n, op="fill"):
    return Job(f"j{n}", op, {})


class TestJob:
    def test_wait_returns_result(self):
        job = _job(1)
        job.succeed({"answer": 42})
        assert job.wait(1.0) == {"answer": 42}
        assert job.done and job.error is None

    def test_wait_raises_job_error(self):
        job = _job(1)
        job.fail(ValueError("bad wires"))
        with pytest.raises(JobError) as exc_info:
            job.wait(1.0)
        assert exc_info.value.error_type == "ValueError"
        assert "bad wires" in exc_info.value.message

    def test_wait_times_out(self):
        with pytest.raises(TimeoutError):
            _job(1).wait(0.01)


class TestJobQueue:
    def test_fifo_order(self):
        queue = JobQueue(maxsize=8)
        jobs = [_job(n) for n in range(3)]
        queue.submit_many(jobs)
        assert [queue.pop(0.1) for _ in range(3)] == jobs

    def test_backpressure_rejects_whole_batch(self):
        queue = JobQueue(maxsize=2)
        queue.submit(_job(0))
        with pytest.raises(QueueFullError):
            queue.submit_many([_job(1), _job(2)])
        # atomic: nothing from the rejected batch was admitted
        assert len(queue) == 1

    def test_closed_queue_rejects_submissions(self):
        queue = JobQueue(maxsize=2)
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.submit(_job(0))

    def test_close_returns_undrained_jobs(self):
        queue = JobQueue(maxsize=8)
        jobs = [_job(n) for n in range(2)]
        queue.submit_many(jobs)
        assert queue.close() == jobs
        assert queue.pop(0.1) is None  # closed and drained

    def test_pop_timeout_returns_none(self):
        assert JobQueue().pop(0.01) is None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            JobQueue(maxsize=0)


class _WorkerCrash(BaseException):
    """Escapes run_job's job handling to kill the worker thread."""


class TestWorkerSupervisor:
    def test_runs_jobs(self):
        queue = JobQueue()
        done = []
        supervisor = WorkerSupervisor(
            queue, lambda job: done.append(job.id) or job.succeed({}), workers=2
        )
        supervisor.start()
        try:
            jobs = [_job(n) for n in range(4)]
            queue.submit_many(jobs)
            for job in jobs:
                job.wait(10.0)
            assert sorted(done) == sorted(j.id for j in jobs)
        finally:
            queue.close()
            supervisor.stop()

    @pytest.mark.filterwarnings(
        # the crash intentionally escapes the worker thread
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_crashed_worker_is_respawned(self):
        queue = JobQueue()

        def run_job(job):
            if job.op == "crash":
                raise _WorkerCrash("worker dies here")
            job.succeed({"ran": True})

        supervisor = WorkerSupervisor(queue, run_job, workers=1)
        supervisor.start()
        try:
            crash = Job("j1", "crash", {})
            queue.submit(crash)
            with pytest.raises(JobError) as exc_info:
                crash.wait(10.0)
            assert exc_info.value.error_type == "_WorkerCrash"

            # the single worker died with the crash; only a respawned
            # replacement can serve this follow-up job
            follow_up = _job(2)
            queue.submit(follow_up)
            assert follow_up.wait(10.0) == {"ran": True}
            assert supervisor.respawns >= 1
            assert supervisor.alive() >= 1
        finally:
            queue.close()
            supervisor.stop()

    def test_on_worker_start_runs_per_thread(self):
        queue = JobQueue()
        started = []
        supervisor = WorkerSupervisor(
            queue,
            lambda job: job.succeed({}),
            workers=3,
            on_worker_start=lambda: started.append(threading.current_thread().name),
        )
        supervisor.start()
        try:
            deadline = time.monotonic() + 10.0
            while len(started) < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert len(started) == 3
            assert len(set(started)) == 3
        finally:
            queue.close()
            supervisor.stop()

    def test_stop_joins_workers(self):
        queue = JobQueue()
        supervisor = WorkerSupervisor(queue, lambda job: job.succeed({}), workers=2)
        supervisor.start()
        queue.close()
        supervisor.stop()
        assert supervisor.alive() == 0

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(JobQueue(), lambda job: None, workers=0)
