"""Shared fixtures for the fill-service suite.

One small two-layer layout (the same shape the ECO tests use) serialized
to GDSII bytes, plus the rules/config mappings every test passes to
``open_session`` so service runs and reference CLI-path runs agree on
every parameter.
"""

import random

import pytest

from repro.gdsii import gdsii_bytes
from repro.geometry import Rect
from repro.layout import DrcRules, Layout

#: mirrors the rules mapping below — used by reference (non-service) runs
RULES = DrcRules(
    min_spacing=10, min_width=10, min_area=200, max_fill_width=100, max_fill_height=100
)

#: request-side rules for open_session, equal to RULES
RULES_MAPPING = {"min_spacing": 10, "min_width": 10, "min_area": 200, "max_fill": 100}

#: request-side engine config; workers=1 keeps the suite fast and serial
CONFIG_MAPPING = {"workers": 1, "parallel": "serial"}


def make_layout(seed=9):
    rng = random.Random(seed)
    layout = Layout(Rect(0, 0, 1200, 1200), num_layers=2, rules=RULES, name="svc")
    for n in layout.layer_numbers:
        for _ in range(40):
            x, y = rng.randrange(0, 1100), rng.randrange(0, 1150)
            layout.layer(n).add_wire(Rect(x, y, min(1200, x + 90), min(1200, y + 30)))
    return layout


@pytest.fixture(scope="session")
def gds_bytes():
    return gdsii_bytes(make_layout())
